//! Synthetic P2P/botnet flow traces (the FlowLens BD application).
//!
//! The paper's botnet-detection dataset "consists of P2P applications that
//! include traces from botnets (such as Storm and Waledac) as well as
//! benign traces from uTorrent, Vuze, eMule, and Frostwire" (§5). Botnets
//! are separable because they "communicate via low-volume and
//! high-duration flows compared to benign P2P applications" (§5.1.1) —
//! their packet-size and inter-arrival-time histograms look different
//! *early*, with few packets observed, which is the paper's motivation for
//! per-packet (partial-histogram) inference.
//!
//! This generator produces whole conversations ([`FlowTrace`]) so the
//! benchmarks can build:
//!
//! - Figure 6's averaged PL/IPT histograms,
//! - full-flow flowmarker datasets (training),
//! - per-packet *partial* histogram datasets (evaluation), and
//! - streaming reaction-time experiments.

use crate::dataset::Dataset;
use crate::sampling::{categorical, log_normal, normal};
use homunculus_dataplane::histogram::{Flowmarker, FlowmarkerConfig};
use homunculus_dataplane::packet::{Packet, Protocol};
use homunculus_ml::tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// The six P2P applications in the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum P2pApp {
    /// Storm botnet.
    Storm,
    /// Waledac botnet.
    Waledac,
    /// uTorrent file sharing.
    UTorrent,
    /// Vuze file sharing.
    Vuze,
    /// eMule file sharing.
    EMule,
    /// FrostWire file sharing.
    FrostWire,
}

impl P2pApp {
    /// All applications, botnets first.
    pub const ALL: [P2pApp; 6] = [
        P2pApp::Storm,
        P2pApp::Waledac,
        P2pApp::UTorrent,
        P2pApp::Vuze,
        P2pApp::EMule,
        P2pApp::FrostWire,
    ];

    /// Whether the application is a botnet.
    pub fn is_botnet(self) -> bool {
        matches!(self, P2pApp::Storm | P2pApp::Waledac)
    }

    /// Binary label: benign = 0, botnet = 1.
    pub fn label(self) -> usize {
        usize::from(self.is_botnet())
    }

    /// Lowercase application name.
    pub fn name(self) -> &'static str {
        match self {
            P2pApp::Storm => "storm",
            P2pApp::Waledac => "waledac",
            P2pApp::UTorrent => "utorrent",
            P2pApp::Vuze => "vuze",
            P2pApp::EMule => "emule",
            P2pApp::FrostWire => "frostwire",
        }
    }
}

/// One conversation: the application, its label, and its packet train.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowTrace {
    /// Which P2P application produced the flow.
    pub app: P2pApp,
    /// Binary label (1 = botnet).
    pub label: usize,
    /// The packets, in timestamp order.
    pub packets: Vec<Packet>,
}

impl FlowTrace {
    /// Builds the full-flow flowmarker of this trace.
    pub fn flowmarker(&self, config: FlowmarkerConfig) -> Flowmarker {
        let mut marker = Flowmarker::new(config).expect("valid shape");
        for pkt in &self.packets {
            marker.observe(pkt);
        }
        marker
    }

    /// Builds the *partial* flowmarker after only `packets_seen` packets.
    pub fn partial_flowmarker(&self, config: FlowmarkerConfig, packets_seen: usize) -> Flowmarker {
        let mut marker = Flowmarker::new(config).expect("valid shape");
        for pkt in self.packets.iter().take(packets_seen) {
            marker.observe(pkt);
        }
        marker
    }

    /// Flow duration in seconds.
    pub fn duration_seconds(&self) -> f64 {
        match (self.packets.first(), self.packets.last()) {
            (Some(a), Some(b)) => (b.timestamp_ns - a.timestamp_ns) as f64 / 1e9,
            _ => 0.0,
        }
    }
}

/// Knobs for the P2P generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct P2pConfig {
    /// Fraction of botnet conversations.
    pub botnet_fraction: f64,
    /// Mean packets per benign flow (botnet flows are ~10x sparser).
    pub benign_mean_packets: f64,
    /// Probability a label is corrupted.
    pub label_noise: f64,
}

impl Default for P2pConfig {
    fn default() -> Self {
        P2pConfig {
            botnet_fraction: 0.4,
            benign_mean_packets: 160.0,
            label_noise: 0.03,
        }
    }
}

/// Deterministic generator for the synthetic P2P/botnet corpus.
///
/// # Example
///
/// ```
/// use homunculus_datasets::p2p::P2pTrafficGenerator;
///
/// let flows = P2pTrafficGenerator::new(3).generate_flows(50);
/// assert_eq!(flows.len(), 50);
/// assert!(flows.iter().any(|f| f.label == 1));
/// assert!(flows.iter().any(|f| f.label == 0));
/// ```
#[derive(Debug, Clone)]
pub struct P2pTrafficGenerator {
    seed: u64,
    config: P2pConfig,
}

impl P2pTrafficGenerator {
    /// Creates a generator with default knobs.
    pub fn new(seed: u64) -> Self {
        P2pTrafficGenerator {
            seed,
            config: P2pConfig::default(),
        }
    }

    /// Creates a generator with explicit knobs.
    pub fn with_config(seed: u64, config: P2pConfig) -> Self {
        P2pTrafficGenerator { seed, config }
    }

    /// Generates `n` conversations.
    pub fn generate_flows(&self, n: usize) -> Vec<FlowTrace> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..n).map(|i| self.generate_flow(&mut rng, i)).collect()
    }

    fn generate_flow(&self, rng: &mut StdRng, index: usize) -> FlowTrace {
        let botnet = rng.gen_bool(self.config.botnet_fraction);
        let app = if botnet {
            [P2pApp::Storm, P2pApp::Waledac][categorical(rng, &[0.5, 0.5])]
        } else {
            [
                P2pApp::UTorrent,
                P2pApp::Vuze,
                P2pApp::EMule,
                P2pApp::FrostWire,
            ][categorical(rng, &[0.3, 0.25, 0.25, 0.2])]
        };

        let packets = if botnet {
            self.botnet_packets(rng, app, index)
        } else {
            self.benign_packets(rng, app, index)
        };

        let mut label = app.label();
        if rng.gen_bool(self.config.label_noise) {
            label = 1 - label;
        }
        FlowTrace {
            app,
            label,
            packets,
        }
    }

    /// Botnet C&C: low volume (tens of packets), high duration (~1 h),
    /// small keepalive-sized packets with a couple of command modes, long
    /// inter-arrival gaps (minutes) — so PL mass sits in the low bins and
    /// IPT mass pushes into the *high* bins.
    fn botnet_packets(&self, rng: &mut StdRng, app: P2pApp, index: usize) -> Vec<Packet> {
        let n = (normal(rng, 38.0, 10.0).max(8.0)) as usize;
        // Per-app size modes: keepalive + small command payload.
        let modes: &[(f64, f64)] = match app {
            P2pApp::Storm => &[(76.0, 6.0), (180.0, 18.0)],
            _ => &[(92.0, 8.0), (240.0, 24.0)],
        };
        let (src, dst) = self.endpoints(rng, index, true);
        let mut t_ns = rng.gen_range(0..1_000_000_000u64);
        let mut packets = Vec::with_capacity(n);
        for _ in 0..n {
            let (mean, std) = modes[categorical(rng, &[0.8, 0.2])];
            let size = normal(rng, mean, std).clamp(60.0, 1500.0) as u32;
            packets.push(self.packet(rng, src, dst, size, t_ns));
            // Long gaps: log-normal centered around ~90 s, heavy tail into
            // the 512 s+ bins.
            let gap_s = log_normal(rng, 4.5, 0.9).clamp(2.0, 3_000.0);
            t_ns += (gap_s * 1e9) as u64;
        }
        packets
    }

    /// Benign P2P: bursty, high volume, full range of packet sizes
    /// (requests + maximum-size data pieces), sub-second gaps with
    /// occasional idle periods.
    fn benign_packets(&self, rng: &mut StdRng, app: P2pApp, index: usize) -> Vec<Packet> {
        let n = (normal(rng, self.config.benign_mean_packets, 40.0).max(20.0)) as usize;
        let data_bias: f64 = match app {
            P2pApp::UTorrent | P2pApp::Vuze => 0.55,
            _ => 0.4,
        };
        let (src, dst) = self.endpoints(rng, index, false);
        let mut t_ns = rng.gen_range(0..1_000_000_000u64);
        let mut packets = Vec::with_capacity(n);
        for _ in 0..n {
            // Modes: control (small), mid-chunks, full data pieces.
            let mode = categorical(rng, &[1.0 - data_bias, 0.25, data_bias]);
            let size = match mode {
                0 => normal(rng, 120.0, 40.0),
                1 => normal(rng, 700.0, 180.0),
                _ => normal(rng, 1_380.0, 60.0),
            }
            .clamp(60.0, 1500.0) as u32;
            packets.push(self.packet(rng, src, dst, size, t_ns));
            // Mostly sub-second bursts; occasional think-time gaps.
            let gap_s = if rng.gen_bool(0.9) {
                log_normal(rng, -2.5, 0.8).clamp(0.0005, 2.0)
            } else {
                log_normal(rng, 3.0, 1.0).clamp(2.0, 1_200.0)
            };
            t_ns += (gap_s * 1e9) as u64;
        }
        packets
    }

    fn endpoints(&self, rng: &mut StdRng, index: usize, botnet: bool) -> (Ipv4Addr, Ipv4Addr) {
        let subnet = if botnet { 66 } else { 99 };
        let src = Ipv4Addr::new(10, subnet, (index >> 8) as u8, (index & 0xFF) as u8);
        let dst = Ipv4Addr::new(172, 16, rng.gen_range(0..16), rng.gen_range(1..255));
        (src, dst)
    }

    fn packet(
        &self,
        rng: &mut StdRng,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        size: u32,
        t_ns: u64,
    ) -> Packet {
        Packet::builder()
            .timestamp_ns(t_ns)
            .size_bytes(size)
            .src_ip(src)
            .dst_ip(dst)
            .src_port(rng.gen_range(32_768..61_000))
            .dst_port(rng.gen_range(32_768..61_000))
            .protocol(Protocol::Udp)
            .build()
    }
}

/// Feature names for an `n`-bin flowmarker dataset: `pl_0.., ipt_0..`.
pub fn flowmarker_feature_names(config: FlowmarkerConfig) -> Vec<String> {
    let mut names: Vec<String> = (0..config.pl_bins).map(|i| format!("pl_{i}")).collect();
    names.extend((0..config.ipt_bins).map(|i| format!("ipt_{i}")));
    names
}

/// Builds a dataset of **full-flow** flowmarkers (the training view:
/// "training was done on full flow-level histograms", §5.1.2).
pub fn flowmarker_dataset(flows: &[FlowTrace], config: FlowmarkerConfig) -> Dataset {
    dataset_from_markers(
        flows
            .iter()
            .map(|f| (f.flowmarker(config).feature_vector(), f.label)),
        config,
    )
}

/// Builds a dataset of **partial** flowmarkers after `packets_seen`
/// packets per flow (the evaluation view: "F1 scores are reported on the
/// per-packet-level partial histograms", §5.1.2).
pub fn partial_histogram_dataset(
    flows: &[FlowTrace],
    config: FlowmarkerConfig,
    packets_seen: usize,
) -> Dataset {
    dataset_from_markers(
        flows.iter().map(|f| {
            (
                f.partial_flowmarker(config, packets_seen).feature_vector(),
                f.label,
            )
        }),
        config,
    )
}

/// Builds a **per-packet training corpus**: every flow contributes one
/// sample per horizon (prefix length), so a model trained on it learns to
/// classify *partial* histograms directly — the "per-packet model" the
/// paper's intro highlights (F1 86.5 without waiting for the flow).
pub fn mixed_partial_histogram_dataset(
    flows: &[FlowTrace],
    config: FlowmarkerConfig,
    horizons: &[usize],
) -> Dataset {
    dataset_from_markers(
        flows.iter().flat_map(|f| {
            horizons.iter().map(move |&h| {
                let seen = h.min(f.packets.len());
                (f.partial_flowmarker(config, seen).feature_vector(), f.label)
            })
        }),
        config,
    )
}

fn dataset_from_markers(
    rows: impl Iterator<Item = (Vec<f32>, usize)>,
    config: FlowmarkerConfig,
) -> Dataset {
    let mut features = Vec::new();
    let mut labels = Vec::new();
    for (row, label) in rows {
        features.push(row);
        labels.push(label);
    }
    let matrix = Matrix::from_rows(&features).expect("uniform marker length");
    Dataset::new(matrix, labels, 2, flowmarker_feature_names(config)).expect("consistent")
}

/// Average (per-flow mean) PL and IPT histograms for each class — the data
/// behind Figure 6. Returns `(benign_pl, botnet_pl, benign_ipt, botnet_ipt)`
/// as per-bin mean counts.
pub fn averaged_class_histograms(
    flows: &[FlowTrace],
    config: FlowmarkerConfig,
) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut benign_pl = vec![0.0f64; config.pl_bins];
    let mut botnet_pl = vec![0.0f64; config.pl_bins];
    let mut benign_ipt = vec![0.0f64; config.ipt_bins];
    let mut botnet_ipt = vec![0.0f64; config.ipt_bins];
    let mut benign_count = 0usize;
    let mut botnet_count = 0usize;
    for flow in flows {
        let marker = flow.flowmarker(config);
        let (pl_acc, ipt_acc) = if flow.app.is_botnet() {
            botnet_count += 1;
            (&mut botnet_pl, &mut botnet_ipt)
        } else {
            benign_count += 1;
            (&mut benign_pl, &mut benign_ipt)
        };
        for (acc, &c) in pl_acc.iter_mut().zip(marker.packet_length().counts()) {
            *acc += c as f64;
        }
        for (acc, &c) in ipt_acc.iter_mut().zip(marker.inter_packet_time().counts()) {
            *acc += c as f64;
        }
    }
    let norm = |acc: &mut [f64], n: usize| {
        if n > 0 {
            for v in acc.iter_mut() {
                *v /= n as f64;
            }
        }
    };
    norm(&mut benign_pl, benign_count);
    norm(&mut botnet_pl, botnet_count);
    norm(&mut benign_ipt, benign_count);
    norm(&mut botnet_ipt, botnet_count);
    (benign_pl, botnet_pl, benign_ipt, botnet_ipt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_and_labels() {
        let g = P2pTrafficGenerator::new(5);
        let a = g.generate_flows(40);
        let b = g.generate_flows(40);
        assert_eq!(a, b);
        for f in &a {
            assert_eq!(f.app.is_botnet(), f.app.label() == 1);
        }
    }

    #[test]
    fn botnet_flows_are_low_volume_high_duration() {
        let flows = P2pTrafficGenerator::new(1).generate_flows(120);
        let bot: Vec<&FlowTrace> = flows.iter().filter(|f| f.app.is_botnet()).collect();
        let ben: Vec<&FlowTrace> = flows.iter().filter(|f| !f.app.is_botnet()).collect();
        assert!(!bot.is_empty() && !ben.is_empty());
        let bot_pkts: f64 =
            bot.iter().map(|f| f.packets.len() as f64).sum::<f64>() / bot.len() as f64;
        let ben_pkts: f64 =
            ben.iter().map(|f| f.packets.len() as f64).sum::<f64>() / ben.len() as f64;
        assert!(
            ben_pkts > bot_pkts * 2.0,
            "benign {ben_pkts} pkts vs botnet {bot_pkts}"
        );
        let bot_dur: f64 = bot.iter().map(|f| f.duration_seconds()).sum::<f64>() / bot.len() as f64;
        let ben_dur: f64 = ben.iter().map(|f| f.duration_seconds()).sum::<f64>() / ben.len() as f64;
        assert!(
            bot_dur > ben_dur,
            "botnet duration {bot_dur}s vs benign {ben_dur}s"
        );
    }

    #[test]
    fn timestamps_are_monotonic() {
        let flows = P2pTrafficGenerator::new(2).generate_flows(20);
        for f in &flows {
            for w in f.packets.windows(2) {
                assert!(w[0].timestamp_ns <= w[1].timestamp_ns);
            }
        }
    }

    /// The Figure 6 shape: botnets leave most high PL bins empty while
    /// benign P2P fills them; botnet IPT mass sits in higher bins.
    #[test]
    fn class_histograms_differ_like_figure6() {
        let flows = P2pTrafficGenerator::new(3).generate_flows(200);
        let config = FlowmarkerConfig::figure6();
        let (ben_pl, bot_pl, ben_ipt, bot_ipt) = averaged_class_histograms(&flows, config);

        // Benign fills the high PL bins (data pieces ~1380 B => bin 21),
        // botnets do not.
        let high_bins = 15..config.pl_bins;
        let ben_high: f64 = high_bins.clone().map(|i| ben_pl[i]).sum();
        let bot_high: f64 = high_bins.map(|i| bot_pl[i]).sum();
        assert!(
            ben_high > bot_high * 5.0 + 1.0,
            "benign high-bin mass {ben_high} vs botnet {bot_high}"
        );

        // Botnet IPT mass beyond the first bin (>512 s gaps accumulated
        // relative to their low packet count) exceeds benign's tail share.
        let ben_total: f64 = ben_ipt.iter().sum();
        let bot_total: f64 = bot_ipt.iter().sum();
        let ben_tail = ben_ipt[1..].iter().sum::<f64>() / ben_total.max(1e-9);
        let bot_tail = bot_ipt[1..].iter().sum::<f64>() / bot_total.max(1e-9);
        assert!(
            bot_tail > ben_tail,
            "botnet IPT tail share {bot_tail} vs benign {ben_tail}"
        );
    }

    #[test]
    fn flowmarker_datasets_have_expected_shapes() {
        let flows = P2pTrafficGenerator::new(4).generate_flows(60);
        let config = FlowmarkerConfig::paper_reduced();
        let full = flowmarker_dataset(&flows, config);
        assert_eq!(full.len(), 60);
        assert_eq!(full.n_features(), 30);
        let partial = partial_histogram_dataset(&flows, config, 5);
        assert_eq!(partial.n_features(), 30);
        // Partial markers only saw 5 packets: feature rows still normalized.
        for r in 0..partial.len() {
            let row_sum: f32 = (0..30).map(|c| partial.features()[(r, c)]).sum();
            assert!(row_sum > 0.0 && row_sum < 2.1, "row sum {row_sum}");
        }
    }

    #[test]
    fn partial_converges_to_full() {
        let flows = P2pTrafficGenerator::new(6).generate_flows(10);
        let config = FlowmarkerConfig::paper_reduced();
        for f in &flows {
            let full = f.flowmarker(config);
            let partial = f.partial_flowmarker(config, f.packets.len());
            assert_eq!(full, partial);
        }
    }

    #[test]
    fn feature_names_match_bins() {
        let config = FlowmarkerConfig::paper_reduced();
        let names = flowmarker_feature_names(config);
        assert_eq!(names.len(), 30);
        assert_eq!(names[0], "pl_0");
        assert_eq!(names[23], "ipt_0");
    }
}

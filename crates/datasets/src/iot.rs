//! Synthetic IoT traffic-classification dataset (the IIsy TC application).
//!
//! The paper's TC application "is built from IoT device traces in a data
//! center and requires that an application correctly identifies the device
//! type from packet-header features (packet size, Ethernet and IPv4
//! headers)" (§5). IIsy's original models are statistical (SVM, KMeans,
//! decision trees); the paper additionally hand-writes a DNN baseline with
//! 3 hidden layers (10, 10, 5 neurons).
//!
//! This generator emits actual [`Packet`]s per device archetype and runs
//! them through the real header-feature extractor, so the dataset exercises
//! the same code path a switch pipeline would.

use crate::dataset::Dataset;
use crate::sampling::{categorical, normal};
use homunculus_dataplane::features::{header_features, HEADER_FEATURE_NAMES};
use homunculus_dataplane::packet::{Packet, Protocol};
use homunculus_ml::tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// The five IoT device classes to identify (one per traffic cluster;
/// Figure 7 builds KMeans models with up to 5 clusters for them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// IP camera: large steady UDP video packets.
    Camera,
    /// Thermostat: rare tiny TLS posts.
    Thermostat,
    /// Smart speaker: mid-size audio streaming.
    Speaker,
    /// Smart bulb: tiny CoAP keepalives.
    Bulb,
    /// Home hub: mixed control-plane chatter.
    Hub,
}

impl DeviceClass {
    /// All five classes, in label order.
    pub const ALL: [DeviceClass; 5] = [
        DeviceClass::Camera,
        DeviceClass::Thermostat,
        DeviceClass::Speaker,
        DeviceClass::Bulb,
        DeviceClass::Hub,
    ];

    /// The class label (index into [`DeviceClass::ALL`]).
    pub fn label(self) -> usize {
        DeviceClass::ALL
            .iter()
            .position(|&c| c == self)
            .expect("member of ALL")
    }

    /// Lowercase device name.
    pub fn name(self) -> &'static str {
        match self {
            DeviceClass::Camera => "camera",
            DeviceClass::Thermostat => "thermostat",
            DeviceClass::Speaker => "speaker",
            DeviceClass::Bulb => "bulb",
            DeviceClass::Hub => "hub",
        }
    }
}

/// Difficulty knobs for the IoT generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IotConfig {
    /// Global multiplier on per-class spreads (>1 = more class overlap).
    pub spread_scale: f64,
    /// Probability a label is corrupted.
    pub label_noise: f64,
    /// Fraction of packets drawn from the *hard* regime: ambiguous
    /// mid-size traffic whose device identity alternates in fine stripes
    /// along a (packet size, source port) projection — firmware-specific
    /// MTU/port-allocation patterns. A first hidden layer needs roughly
    /// one unit per stripe boundary, so narrow hand-tuned nets underfit
    /// (Table 2's Base-TC vs Hom-TC gap).
    pub hard_fraction: f64,
    /// Number of class stripes across the hard regime's span.
    pub hard_stripes: usize,
}

impl Default for IotConfig {
    fn default() -> Self {
        IotConfig {
            spread_scale: 1.0,
            label_noise: 0.04,
            hard_fraction: 0.45,
            hard_stripes: 15,
        }
    }
}

/// Deterministic generator for the synthetic IoT TC corpus.
///
/// # Example
///
/// ```
/// use homunculus_datasets::iot::IotTrafficGenerator;
///
/// let ds = IotTrafficGenerator::new(1).generate(500);
/// assert_eq!(ds.n_classes(), 5);
/// assert_eq!(ds.n_features(), 7);
/// ```
#[derive(Debug, Clone)]
pub struct IotTrafficGenerator {
    seed: u64,
    config: IotConfig,
}

impl IotTrafficGenerator {
    /// Creates a generator with default difficulty.
    pub fn new(seed: u64) -> Self {
        IotTrafficGenerator {
            seed,
            config: IotConfig::default(),
        }
    }

    /// Creates a generator with explicit knobs.
    pub fn with_config(seed: u64, config: IotConfig) -> Self {
        IotTrafficGenerator { seed, config }
    }

    /// Generates one synthetic packet from the given device class.
    pub fn sample_packet(&self, rng: &mut StdRng, class: DeviceClass, timestamp_ns: u64) -> Packet {
        let s = self.config.spread_scale;
        // (size mean, size std, protocol, dst port choices, subnet)
        let (mean, std, protocol, ports, subnet): (f64, f64, Protocol, &[u16], u8) = match class {
            DeviceClass::Camera => (1_100.0, 160.0 * s, Protocol::Udp, &[554, 8554], 10),
            DeviceClass::Thermostat => (140.0, 30.0 * s, Protocol::Tcp, &[443], 20),
            DeviceClass::Speaker => (620.0, 110.0 * s, Protocol::Udp, &[443, 4070], 30),
            DeviceClass::Bulb => (70.0, 10.0 * s, Protocol::Udp, &[5683], 40),
            DeviceClass::Hub => (320.0, 180.0 * s, Protocol::Tcp, &[8080, 1883, 443], 50),
        };
        let size = normal(rng, mean, std).clamp(60.0, 1500.0) as u32;
        let port = ports[rng.gen_range(0..ports.len())];
        let host = rng.gen_range(1..=30u8);
        Packet::builder()
            .timestamp_ns(timestamp_ns)
            .size_bytes(size)
            .src_ip(Ipv4Addr::new(10, 0, subnet, host))
            .dst_ip(Ipv4Addr::new(10, 0, 0, 1))
            .src_port(rng.gen_range(32_768..61_000))
            .dst_port(port)
            .protocol(protocol)
            .build()
    }

    /// One hard-regime packet: uniform mid-range (size, src-port) traffic
    /// whose device class is the stripe its size+port projection lands
    /// in, cycling through the five classes. Only a model with enough
    /// first-layer width can carve per-stripe decision regions.
    fn hard_sample(&self, rng: &mut StdRng, timestamp_ns: u64) -> (Packet, usize) {
        let size = rng.gen_range(80.0..1_400.0f64);
        let sport = rng.gen_range(32_768..61_000u16);
        let dports = [443u16, 8080, 554, 5683, 1883];
        let dport = dports[rng.gen_range(0..dports.len())];
        let pkt = Packet::builder()
            .timestamp_ns(timestamp_ns)
            .size_bytes(size as u32)
            .src_ip(Ipv4Addr::new(10, 0, 60, rng.gen_range(1..=30)))
            .dst_ip(Ipv4Addr::new(10, 0, 0, 1))
            .src_port(sport)
            .dst_port(dport)
            .protocol(if rng.gen_bool(0.5) {
                Protocol::Udp
            } else {
                Protocol::Tcp
            })
            .build();
        // Projection in *feature* units (size/256 + sport/8192 as in
        // `header_features`), striped into `hard_stripes` cells cycling
        // through the device classes.
        let u = size / 256.0 + f64::from(sport) / 8_192.0;
        let (u_min, u_max) = (80.0 / 256.0 + 4.0, 1_400.0 / 256.0 + 61_000.0 / 8_192.0);
        let stripe_width = (u_max - u_min) / self.config.hard_stripes as f64;
        let stripe = ((u - u_min) / stripe_width).floor().max(0.0) as usize;
        (pkt, stripe % 5)
    }

    /// Generates `n` labeled samples with balanced classes.
    pub fn generate(&self, n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        let weights = [1.0f64; 5];
        for i in 0..n {
            let (pkt, mut label) = if rng.gen_bool(self.config.hard_fraction) {
                self.hard_sample(&mut rng, i as u64 * 1_000)
            } else {
                let class = DeviceClass::ALL[categorical(&mut rng, &weights)];
                let pkt = self.sample_packet(&mut rng, class, i as u64 * 1_000);
                (pkt, class.label())
            };
            rows.push(header_features(&pkt).to_vec());
            if rng.gen_bool(self.config.label_noise) {
                label = (label + rng.gen_range(1..5)) % 5;
            }
            labels.push(label);
        }
        let features = Matrix::from_rows(&rows).expect("uniform rows");
        let names = HEADER_FEATURE_NAMES.iter().map(|s| s.to_string()).collect();
        Dataset::new(features, labels, 5, names).expect("generator is consistent")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homunculus_ml::kmeans::{KMeans, KMeansConfig};
    use homunculus_ml::metrics::v_measure;

    #[test]
    fn shapes_and_determinism() {
        let g = IotTrafficGenerator::new(11);
        let a = g.generate(400);
        let b = g.generate(400);
        assert_eq!(a, b);
        assert_eq!(a.n_classes(), 5);
        assert_eq!(a.n_features(), 7);
    }

    #[test]
    fn all_classes_present_and_roughly_balanced() {
        let ds = IotTrafficGenerator::new(1).generate(2_000);
        for (c, &count) in ds.class_counts().iter().enumerate() {
            assert!(count > 250, "class {c} has only {count} samples");
        }
    }

    #[test]
    fn device_labels_stable() {
        assert_eq!(DeviceClass::Camera.label(), 0);
        assert_eq!(DeviceClass::Hub.label(), 4);
        assert_eq!(DeviceClass::Bulb.name(), "bulb");
    }

    #[test]
    fn packet_sizes_respect_archetypes() {
        let g = IotTrafficGenerator::new(2);
        let mut rng = StdRng::seed_from_u64(3);
        let cam: f64 = (0..200)
            .map(|i| g.sample_packet(&mut rng, DeviceClass::Camera, i).size_bytes as f64)
            .sum::<f64>()
            / 200.0;
        let bulb: f64 = (0..200)
            .map(|i| g.sample_packet(&mut rng, DeviceClass::Bulb, i).size_bytes as f64)
            .sum::<f64>()
            / 200.0;
        assert!(cam > 800.0, "camera mean {cam}");
        assert!(bulb < 120.0, "bulb mean {bulb}");
    }

    /// The calibration contract behind Figure 7: with k = 5 clusters the
    /// device classes must be partially recoverable by KMeans (the hard
    /// regime deliberately blurs 45% of traffic), and degenerate
    /// single-cluster solutions must score worse.
    #[test]
    fn kmeans_recovers_devices_with_five_clusters() {
        // The easy regime alone clusters cleanly...
        let easy = IotTrafficGenerator::with_config(
            4,
            IotConfig {
                hard_fraction: 0.0,
                ..IotConfig::default()
            },
        )
        .generate(1_500);
        let norm = easy.fit_normalizer();
        let nds = easy.normalized(&norm).unwrap();
        let k5 = KMeans::fit(nds.features(), &KMeansConfig::new(5).seed(0)).unwrap();
        let v5_easy = v_measure(nds.labels(), &k5.predict(nds.features())).unwrap();
        assert!(v5_easy.v_measure > 0.5, "easy v@5: {}", v5_easy.v_measure);

        // ...and on the full (hard) mix, k=5 still beats k=2.
        let ds = IotTrafficGenerator::new(4).generate(1_500);
        let norm = ds.fit_normalizer();
        let nds = ds.normalized(&norm).unwrap();
        let k5 = KMeans::fit(nds.features(), &KMeansConfig::new(5).seed(0)).unwrap();
        let v5 = v_measure(nds.labels(), &k5.predict(nds.features())).unwrap();
        let k2 = KMeans::fit(nds.features(), &KMeansConfig::new(2).seed(0)).unwrap();
        let v2 = v_measure(nds.labels(), &k2.predict(nds.features())).unwrap();
        assert!(
            v5.v_measure > v2.v_measure,
            "k=5 ({}) should beat k=2 ({})",
            v5.v_measure,
            v2.v_measure
        );
    }
}

//! Seeded sampling helpers shared by the generators.
//!
//! Only `rand` is available offline (no `rand_distr`), so the normal and
//! log-normal draws are implemented via Box-Muller.

use rand::rngs::StdRng;
use rand::Rng;

/// One standard-normal draw (Box-Muller).
pub fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A normal draw with the given mean and standard deviation.
pub fn normal(rng: &mut StdRng, mean: f64, std: f64) -> f64 {
    mean + std * standard_normal(rng)
}

/// A log-normal draw parameterized by the *underlying* normal.
pub fn log_normal(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// A draw from a categorical distribution given (unnormalized) weights.
///
/// # Panics
///
/// Panics if `weights` is empty or sums to zero.
pub fn categorical(rng: &mut StdRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "categorical weights must sum to > 0");
    let mut target = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_roughly_correct() {
        let mut rng = StdRng::seed_from_u64(0);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(log_normal(&mut rng, 0.0, 1.5) > 0.0);
        }
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 3];
        for _ in 0..6_000 {
            counts[categorical(&mut rng, &[1.0, 2.0, 3.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0], "{counts:?}");
    }

    #[test]
    fn categorical_zero_weight_class_never_drawn() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            assert_ne!(categorical(&mut rng, &[1.0, 0.0, 1.0]), 1);
        }
    }

    #[test]
    #[should_panic(expected = "categorical weights must sum to > 0")]
    fn categorical_all_zero_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        categorical(&mut rng, &[0.0, 0.0]);
    }
}

//! Feature extraction from packets and flow state.
//!
//! The paper's motivating observation (§2) is that ML in the data plane
//! works on *fine-grain features* — "connection duration, bytes
//! transferred, protocol type, service type, packet size, and arrival
//! time" — rather than static IP matches. This module turns a packet plus
//! its flow state into exactly such a feature vector, with a stable layout
//! shared by the dataset generators and the generated data-plane code
//! (the P4 backend emits one metadata field per feature).

use crate::flow::FlowStats;
use crate::packet::{Packet, Protocol};
use serde::{Deserialize, Serialize};

/// The service class implied by a packet's destination port.
///
/// A tiny stand-in for NSL-KDD's `service` attribute; granularity is
/// deliberately coarse since the generated P4 uses a range-match table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Service {
    /// HTTP/HTTPS (ports 80, 443, 8080).
    Web,
    /// DNS (port 53).
    Dns,
    /// SSH/Telnet (ports 22, 23).
    Remote,
    /// Mail (ports 25, 110, 143).
    Mail,
    /// Ephemeral/high ports (>= 1024).
    Ephemeral,
    /// Everything else.
    Other,
}

impl Service {
    /// Classifies a destination port.
    pub fn from_port(port: u16) -> Self {
        match port {
            80 | 443 | 8080 => Service::Web,
            53 => Service::Dns,
            22 | 23 => Service::Remote,
            25 | 110 | 143 => Service::Mail,
            p if p >= 1024 => Service::Ephemeral,
            _ => Service::Other,
        }
    }

    /// A stable numeric encoding for feature vectors.
    pub fn encode(self) -> f32 {
        match self {
            Service::Web => 0.0,
            Service::Dns => 1.0,
            Service::Remote => 2.0,
            Service::Mail => 3.0,
            Service::Ephemeral => 4.0,
            Service::Other => 5.0,
        }
    }
}

/// Names of the 7 packet-level features, in vector order.
///
/// This is the 7-feature layout of the paper's AD and TC applications
/// (Table 2 lists `Features = 7` for both).
pub const PACKET_FEATURE_NAMES: [&str; 7] = [
    "packet_size",
    "protocol",
    "service",
    "dst_port",
    "flow_duration",
    "flow_bytes",
    "flow_mean_ipt",
];

/// Number of packet-level features produced by [`packet_features`].
pub const PACKET_FEATURE_COUNT: usize = PACKET_FEATURE_NAMES.len();

/// Extracts the 7-dimensional packet+flow feature vector.
///
/// Scales are chosen so every feature lands in roughly `[0, 10]`, which
/// keeps fixed-point quantization honest on the data plane:
///
/// 1. packet size in units of 256 B,
/// 2. protocol number / 32,
/// 3. service class code,
/// 4. destination port / 8192,
/// 5. flow duration in seconds (log1p-compressed),
/// 6. flow bytes in units of 64 KiB (log1p-compressed),
/// 7. flow mean inter-arrival time in milliseconds (log1p-compressed).
pub fn packet_features(packet: &Packet, flow: &FlowStats) -> [f32; PACKET_FEATURE_COUNT] {
    [
        packet.size_bytes as f32 / 256.0,
        f32::from(packet.protocol.number()) / 32.0,
        Service::from_port(packet.dst_port).encode(),
        f32::from(packet.dst_port) / 8192.0,
        (flow.duration_ns() as f32 / 1e9).ln_1p(),
        (flow.bytes as f32 / 65_536.0).ln_1p(),
        (flow.mean_inter_arrival_ns() as f32 / 1e6).ln_1p(),
    ]
}

/// Names of the header-only features used by the IoT traffic-classification
/// application (IIsy uses "packet size, Ethernet and IPv4 headers").
pub const HEADER_FEATURE_NAMES: [&str; 7] = [
    "packet_size",
    "protocol",
    "src_port",
    "dst_port",
    "ttl_proxy",
    "service",
    "port_parity",
];

/// Extracts header-only features (no flow state), as used for TC.
///
/// `ttl_proxy` stands in for the IPv4 TTL field, derived deterministically
/// from the source address so generated traffic carries a per-device
/// signature the way real TTLs do.
pub fn header_features(packet: &Packet) -> [f32; 7] {
    let ttl_proxy = f32::from(packet.src_ip.octets()[3] % 64) / 64.0;
    [
        packet.size_bytes as f32 / 256.0,
        f32::from(packet.protocol.number()) / 32.0,
        f32::from(packet.src_port) / 8192.0,
        f32::from(packet.dst_port) / 8192.0,
        ttl_proxy,
        Service::from_port(packet.dst_port).encode(),
        f32::from(packet.dst_port % 2),
    ]
}

/// Is the protocol one the feature extractors understand natively?
pub fn is_supported_protocol(protocol: Protocol) -> bool {
    matches!(protocol, Protocol::Tcp | Protocol::Udp | Protocol::Icmp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowTable;

    #[test]
    fn service_classification() {
        assert_eq!(Service::from_port(80), Service::Web);
        assert_eq!(Service::from_port(443), Service::Web);
        assert_eq!(Service::from_port(53), Service::Dns);
        assert_eq!(Service::from_port(22), Service::Remote);
        assert_eq!(Service::from_port(25), Service::Mail);
        assert_eq!(Service::from_port(50_000), Service::Ephemeral);
        assert_eq!(Service::from_port(7), Service::Other);
    }

    #[test]
    fn service_codes_distinct() {
        let codes = [
            Service::Web,
            Service::Dns,
            Service::Remote,
            Service::Mail,
            Service::Ephemeral,
            Service::Other,
        ]
        .map(Service::encode);
        for i in 0..codes.len() {
            for j in (i + 1)..codes.len() {
                assert_ne!(codes[i], codes[j]);
            }
        }
    }

    #[test]
    fn packet_features_have_documented_length() {
        let mut table = FlowTable::new();
        let pkt = Packet::default();
        let stats = table.observe(&pkt);
        let f = packet_features(&pkt, &stats);
        assert_eq!(f.len(), PACKET_FEATURE_COUNT);
        assert_eq!(PACKET_FEATURE_NAMES.len(), PACKET_FEATURE_COUNT);
    }

    #[test]
    fn features_are_finite_and_bounded() {
        let mut table = FlowTable::new();
        let mut b = Packet::builder();
        b.size_bytes(u32::MAX)
            .dst_port(u16::MAX)
            .timestamp_ns(u64::MAX / 2);
        let pkt = b.build();
        let stats = table.observe(&pkt);
        for f in packet_features(&pkt, &stats) {
            assert!(f.is_finite());
        }
        for f in header_features(&pkt) {
            assert!(f.is_finite());
            assert!(f >= 0.0);
        }
    }

    #[test]
    fn duration_feature_grows_with_flow_age() {
        let mut table = FlowTable::new();
        let mut b = Packet::builder();
        b.timestamp_ns(0);
        let p0 = b.build();
        let s0 = table.observe(&p0);
        let young = packet_features(&p0, &s0)[4];
        b.timestamp_ns(10_000_000_000); // 10s later
        let p1 = b.build();
        let s1 = table.observe(&p1);
        let old = packet_features(&p1, &s1)[4];
        assert!(old > young);
    }

    #[test]
    fn header_features_differ_by_source_device() {
        let mut a = Packet::builder();
        a.src_ip("10.0.0.3".parse().unwrap());
        let mut b = Packet::builder();
        b.src_ip("10.0.0.47".parse().unwrap());
        assert_ne!(
            header_features(&a.build())[4],
            header_features(&b.build())[4]
        );
    }

    #[test]
    fn supported_protocols() {
        assert!(is_supported_protocol(Protocol::Tcp));
        assert!(is_supported_protocol(Protocol::Udp));
        assert!(is_supported_protocol(Protocol::Icmp));
        assert!(!is_supported_protocol(Protocol::Other(99)));
    }
}

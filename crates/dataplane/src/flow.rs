//! Flow and conversation tracking.
//!
//! Two aggregation keys appear in the paper:
//!
//! - the classic **5-tuple flow** ([`FlowKey`]) used for per-flow features
//!   such as connection duration and byte counts;
//! - the **conversation** ([`ConversationKey`]) — source/destination IP
//!   pair with ports ignored — which is how FlowLens (and the paper's
//!   botnet-detection study, §5.1.1) aggregates P2P traffic.
//!
//! [`FlowTable`] ingests a packet stream and maintains per-key
//! [`FlowStats`]; it is the stateful component a switch would keep in
//! register arrays.

use crate::packet::{Packet, Protocol};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// The classic 5-tuple flow identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowKey {
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Source L4 port.
    pub src_port: u16,
    /// Destination L4 port.
    pub dst_port: u16,
    /// L4 protocol.
    pub protocol: Protocol,
}

impl FlowKey {
    /// Extracts the flow key of a packet.
    pub fn of(packet: &Packet) -> Self {
        FlowKey {
            src_ip: packet.src_ip,
            dst_ip: packet.dst_ip,
            src_port: packet.src_port,
            dst_port: packet.dst_port,
            protocol: packet.protocol,
        }
    }
}

/// A conversation identifier: IP pair, ports ignored, direction-insensitive.
///
/// FlowLens tracks botnet candidates at this granularity because P2P bots
/// hop ports but keep talking to the same peers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConversationKey {
    /// The numerically smaller endpoint address.
    pub low_ip: Ipv4Addr,
    /// The numerically larger endpoint address.
    pub high_ip: Ipv4Addr,
}

impl ConversationKey {
    /// Extracts the (direction-normalized) conversation key of a packet.
    pub fn of(packet: &Packet) -> Self {
        let (low_ip, high_ip) = if packet.src_ip <= packet.dst_ip {
            (packet.src_ip, packet.dst_ip)
        } else {
            (packet.dst_ip, packet.src_ip)
        };
        ConversationKey { low_ip, high_ip }
    }
}

/// Aggregate statistics of one flow (or conversation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowStats {
    /// Number of packets observed.
    pub packets: u64,
    /// Total bytes observed.
    pub bytes: u64,
    /// Timestamp of the first packet (ns).
    pub first_seen_ns: u64,
    /// Timestamp of the most recent packet (ns).
    pub last_seen_ns: u64,
    /// Number of SYN packets seen (connection attempts).
    pub syn_count: u64,
    /// Number of RST packets seen (errors/teardowns).
    pub rst_count: u64,
}

impl FlowStats {
    fn first(packet: &Packet) -> Self {
        FlowStats {
            packets: 1,
            bytes: packet.size_bytes as u64,
            first_seen_ns: packet.timestamp_ns,
            last_seen_ns: packet.timestamp_ns,
            syn_count: u64::from(packet.flags.syn),
            rst_count: u64::from(packet.flags.rst),
        }
    }

    fn update(&mut self, packet: &Packet) {
        self.packets += 1;
        self.bytes += packet.size_bytes as u64;
        self.last_seen_ns = self.last_seen_ns.max(packet.timestamp_ns);
        self.first_seen_ns = self.first_seen_ns.min(packet.timestamp_ns);
        self.syn_count += u64::from(packet.flags.syn);
        self.rst_count += u64::from(packet.flags.rst);
    }

    /// Flow duration in nanoseconds (0 for single-packet flows).
    pub fn duration_ns(&self) -> u64 {
        self.last_seen_ns - self.first_seen_ns
    }

    /// Mean packet size in bytes.
    pub fn mean_packet_size(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.bytes as f64 / self.packets as f64
        }
    }

    /// Mean inter-arrival time in nanoseconds (0 for < 2 packets).
    pub fn mean_inter_arrival_ns(&self) -> f64 {
        if self.packets < 2 {
            0.0
        } else {
            self.duration_ns() as f64 / (self.packets - 1) as f64
        }
    }
}

/// A stateful flow table, keyed by 5-tuple.
///
/// # Example
///
/// ```
/// use homunculus_dataplane::flow::FlowTable;
/// use homunculus_dataplane::packet::Packet;
///
/// let mut table = FlowTable::new();
/// let pkt = Packet::default();
/// let stats = table.observe(&pkt);
/// assert_eq!(stats.packets, 1);
/// assert_eq!(table.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlowTable {
    flows: HashMap<FlowKey, FlowStats>,
}

impl FlowTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        FlowTable::default()
    }

    /// Ingests a packet and returns the updated stats for its flow.
    pub fn observe(&mut self, packet: &Packet) -> FlowStats {
        let key = FlowKey::of(packet);
        let stats = self
            .flows
            .entry(key)
            .and_modify(|s| s.update(packet))
            .or_insert_with(|| FlowStats::first(packet));
        *stats
    }

    /// Looks up the stats of a flow.
    pub fn get(&self, key: &FlowKey) -> Option<&FlowStats> {
        self.flows.get(key)
    }

    /// Number of tracked flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Iterates over `(key, stats)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&FlowKey, &FlowStats)> {
        self.flows.iter()
    }

    /// Removes flows idle since before `cutoff_ns` and returns how many
    /// were evicted (switch register reclamation).
    pub fn evict_idle(&mut self, cutoff_ns: u64) -> usize {
        let before = self.flows.len();
        self.flows.retain(|_, s| s.last_seen_ns >= cutoff_ns);
        before - self.flows.len()
    }
}

/// A stateful conversation table, keyed by IP pair.
#[derive(Debug, Clone, Default)]
pub struct ConversationTable {
    conversations: HashMap<ConversationKey, FlowStats>,
}

impl ConversationTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ConversationTable::default()
    }

    /// Ingests a packet and returns the updated stats for its conversation.
    pub fn observe(&mut self, packet: &Packet) -> FlowStats {
        let key = ConversationKey::of(packet);
        let stats = self
            .conversations
            .entry(key)
            .and_modify(|s| s.update(packet))
            .or_insert_with(|| FlowStats::first(packet));
        *stats
    }

    /// Looks up the stats of a conversation.
    pub fn get(&self, key: &ConversationKey) -> Option<&FlowStats> {
        self.conversations.get(key)
    }

    /// Number of tracked conversations.
    pub fn len(&self) -> usize {
        self.conversations.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.conversations.is_empty()
    }

    /// Iterates over `(key, stats)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&ConversationKey, &FlowStats)> {
        self.conversations.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::TcpFlags;

    fn pkt(src: [u8; 4], dst: [u8; 4], sport: u16, dport: u16, ts: u64, size: u32) -> Packet {
        Packet::builder()
            .src_ip(Ipv4Addr::from(src))
            .dst_ip(Ipv4Addr::from(dst))
            .src_port(sport)
            .dst_port(dport)
            .timestamp_ns(ts)
            .size_bytes(size)
            .build()
    }

    #[test]
    fn flow_key_distinguishes_ports() {
        let a = pkt([1, 1, 1, 1], [2, 2, 2, 2], 100, 200, 0, 64);
        let b = pkt([1, 1, 1, 1], [2, 2, 2, 2], 101, 200, 0, 64);
        assert_ne!(FlowKey::of(&a), FlowKey::of(&b));
    }

    #[test]
    fn conversation_key_ignores_ports_and_direction() {
        let a = pkt([1, 1, 1, 1], [2, 2, 2, 2], 100, 200, 0, 64);
        let b = pkt([2, 2, 2, 2], [1, 1, 1, 1], 999, 888, 0, 64);
        assert_eq!(ConversationKey::of(&a), ConversationKey::of(&b));
    }

    #[test]
    fn flow_table_accumulates() {
        let mut table = FlowTable::new();
        table.observe(&pkt([1, 0, 0, 1], [1, 0, 0, 2], 1, 2, 100, 100));
        let stats = table.observe(&pkt([1, 0, 0, 1], [1, 0, 0, 2], 1, 2, 600, 300));
        assert_eq!(stats.packets, 2);
        assert_eq!(stats.bytes, 400);
        assert_eq!(stats.duration_ns(), 500);
        assert_eq!(stats.mean_packet_size(), 200.0);
        assert_eq!(stats.mean_inter_arrival_ns(), 500.0);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn distinct_flows_tracked_separately() {
        let mut table = FlowTable::new();
        table.observe(&pkt([1, 0, 0, 1], [1, 0, 0, 2], 1, 2, 0, 64));
        table.observe(&pkt([1, 0, 0, 1], [1, 0, 0, 2], 3, 2, 0, 64));
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn syn_and_rst_counted() {
        let mut table = FlowTable::new();
        let mut b = Packet::builder();
        b.flags(TcpFlags::syn());
        let syn = b.build();
        table.observe(&syn);
        let mut b = Packet::builder();
        b.flags(TcpFlags {
            rst: true,
            ..TcpFlags::default()
        });
        let rst = b.build();
        let stats = table.observe(&rst);
        assert_eq!(stats.syn_count, 1);
        assert_eq!(stats.rst_count, 1);
    }

    #[test]
    fn evict_idle_removes_old_flows() {
        let mut table = FlowTable::new();
        table.observe(&pkt([1, 0, 0, 1], [1, 0, 0, 2], 1, 2, 100, 64));
        table.observe(&pkt([1, 0, 0, 3], [1, 0, 0, 4], 1, 2, 10_000, 64));
        let evicted = table.evict_idle(5_000);
        assert_eq!(evicted, 1);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn conversation_table_merges_directions() {
        let mut table = ConversationTable::new();
        table.observe(&pkt([1, 1, 1, 1], [2, 2, 2, 2], 10, 20, 0, 100));
        let stats = table.observe(&pkt([2, 2, 2, 2], [1, 1, 1, 1], 30, 40, 100, 200));
        assert_eq!(table.len(), 1);
        assert_eq!(stats.packets, 2);
        assert_eq!(stats.bytes, 300);
    }

    #[test]
    fn single_packet_flow_has_zero_duration_and_ipt() {
        let mut table = FlowTable::new();
        let stats = table.observe(&pkt([9, 9, 9, 9], [8, 8, 8, 8], 1, 1, 42, 77));
        assert_eq!(stats.duration_ns(), 0);
        assert_eq!(stats.mean_inter_arrival_ns(), 0.0);
    }

    #[test]
    fn out_of_order_timestamps_handled() {
        let mut table = FlowTable::new();
        table.observe(&pkt([1, 0, 0, 1], [1, 0, 0, 2], 1, 2, 1_000, 64));
        let stats = table.observe(&pkt([1, 0, 0, 1], [1, 0, 0, 2], 1, 2, 500, 64));
        assert_eq!(stats.first_seen_ns, 500);
        assert_eq!(stats.last_seen_ns, 1_000);
    }
}

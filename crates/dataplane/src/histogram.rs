//! FlowLens-style flowmarker histograms.
//!
//! FlowLens (NDSS 2021) classifies flows from two coarse histograms kept in
//! switch registers: **packet lengths** (PL) and **inter-packet times**
//! (IPT). The paper's botnet-detection study (§5.1) uses:
//!
//! - Figure 6's visualization bins — PL bin width 64 bytes (22 bins shown),
//!   IPT bin width 512 s (6 bins);
//! - the original FlowLens marker of **151 bins** (94 PL + 57 IPT);
//! - the reduced marker of **30 bins** (23 PL + 7 IPT), obtained by
//!   *fusing* adjacent bins — a 5x memory saving that lets a switch track
//!   5x more flows (§5.1.2).
//!
//! This module implements the generic [`Histogram`], the combined
//! [`Flowmarker`], and bin fusion.

use crate::packet::Packet;
use crate::{DataplaneError, Result};
use serde::{Deserialize, Serialize};

/// A fixed-width histogram with a clamping final bin.
///
/// Values past the last bin are counted in the last bin (switch registers
/// cannot grow), so the total count is always conserved.
///
/// # Example
///
/// ```
/// use homunculus_dataplane::histogram::Histogram;
///
/// # fn main() -> Result<(), homunculus_dataplane::DataplaneError> {
/// let mut h = Histogram::new(64.0, 4)?; // bins: [0,64), [64,128), [128,192), [192,inf)
/// h.observe(10.0);
/// h.observe(70.0);
/// h.observe(1_000_000.0); // clamped into the last bin
/// assert_eq!(h.counts(), &[1, 1, 0, 1]);
/// assert_eq!(h.total(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    bin_width: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `bins` bins of width `bin_width`.
    ///
    /// # Errors
    ///
    /// Returns [`DataplaneError::InvalidConfig`] for non-positive widths or
    /// zero bins.
    pub fn new(bin_width: f64, bins: usize) -> Result<Self> {
        if bin_width <= 0.0 || bin_width.is_nan() {
            return Err(DataplaneError::InvalidConfig(format!(
                "bin width must be positive, got {bin_width}"
            )));
        }
        if bins == 0 {
            return Err(DataplaneError::InvalidConfig(
                "need at least one bin".into(),
            ));
        }
        Ok(Histogram {
            bin_width,
            counts: vec![0; bins],
        })
    }

    /// The width of each bin.
    pub fn bin_width(&self) -> f64 {
        self.bin_width
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// The per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total count across bins.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Bin index a value falls into (clamped to the last bin).
    pub fn bin_of(&self, value: f64) -> usize {
        if value <= 0.0 {
            return 0;
        }
        ((value / self.bin_width) as usize).min(self.counts.len() - 1)
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let bin = self.bin_of(value);
        self.counts[bin] += 1;
    }

    /// Resets all counts to zero.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
    }

    /// Fuses groups of `factor` adjacent bins into single bins.
    ///
    /// The trailing partial group (if any) becomes one final bin, so counts
    /// are conserved exactly. This is the FlowLens memory-reduction
    /// operation the paper applies to shrink 151-bin markers to 30 bins.
    ///
    /// # Errors
    ///
    /// Returns [`DataplaneError::InvalidConfig`] when `factor == 0`.
    pub fn fuse(&self, factor: usize) -> Result<Histogram> {
        if factor == 0 {
            return Err(DataplaneError::InvalidConfig(
                "fusion factor must be positive".into(),
            ));
        }
        let counts: Vec<u64> = self
            .counts
            .chunks(factor)
            .map(|chunk| chunk.iter().sum())
            .collect();
        Ok(Histogram {
            bin_width: self.bin_width * factor as f64,
            counts,
        })
    }

    /// Truncates to the first `bins` bins, folding the overflow into the
    /// (new) last bin so totals are conserved.
    ///
    /// # Errors
    ///
    /// Returns [`DataplaneError::InvalidConfig`] when `bins == 0`.
    pub fn truncate(&self, bins: usize) -> Result<Histogram> {
        if bins == 0 {
            return Err(DataplaneError::InvalidConfig(
                "need at least one bin".into(),
            ));
        }
        if bins >= self.counts.len() {
            return Ok(self.clone());
        }
        let mut counts: Vec<u64> = self.counts[..bins].to_vec();
        let overflow: u64 = self.counts[bins..].iter().sum();
        *counts.last_mut().expect("bins >= 1") += overflow;
        Ok(Histogram {
            bin_width: self.bin_width,
            counts,
        })
    }

    /// Counts normalized to frequencies (empty histogram yields zeros).
    pub fn normalized(&self) -> Vec<f32> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f32 / total as f32)
            .collect()
    }
}

/// Configuration of a [`Flowmarker`]: PL and IPT histogram shapes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowmarkerConfig {
    /// Packet-length bin width in bytes.
    pub pl_bin_bytes: f64,
    /// Number of packet-length bins.
    pub pl_bins: usize,
    /// Inter-packet-time bin width in seconds.
    pub ipt_bin_seconds: f64,
    /// Number of inter-packet-time bins.
    pub ipt_bins: usize,
}

impl FlowmarkerConfig {
    /// The original FlowLens marker: 94 PL bins (64 B) + 57 IPT bins
    /// (512 s) = 151 bins, as cited in §5.1.2 of the paper.
    pub fn flowlens_original() -> Self {
        FlowmarkerConfig {
            pl_bin_bytes: 64.0,
            pl_bins: 94,
            ipt_bin_seconds: 512.0,
            ipt_bins: 57,
        }
    }

    /// The paper's reduced marker: 23 PL bins + 7 IPT bins = 30 bins,
    /// produced by fusing smaller bins into larger ones (§5.1.2).
    pub fn paper_reduced() -> Self {
        FlowmarkerConfig {
            pl_bin_bytes: 64.0 * 4.0,
            pl_bins: 23,
            ipt_bin_seconds: 512.0 * 8.0,
            ipt_bins: 7,
        }
    }

    /// The Figure 6 visualization shape: 22 PL bins (64 B) + 6 IPT bins
    /// (512 s).
    pub fn figure6() -> Self {
        FlowmarkerConfig {
            pl_bin_bytes: 64.0,
            pl_bins: 22,
            ipt_bin_seconds: 512.0,
            ipt_bins: 6,
        }
    }

    /// Total number of bins (the per-flow register cost on a switch).
    pub fn total_bins(&self) -> usize {
        self.pl_bins + self.ipt_bins
    }
}

/// A FlowLens flowmarker: paired PL/IPT histograms for one conversation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Flowmarker {
    config: FlowmarkerConfig,
    pl: Histogram,
    ipt: Histogram,
    last_timestamp_ns: Option<u64>,
    packet_count: u64,
}

impl Flowmarker {
    /// Creates an empty marker for the given shape.
    ///
    /// # Errors
    ///
    /// Returns [`DataplaneError::InvalidConfig`] for degenerate shapes.
    pub fn new(config: FlowmarkerConfig) -> Result<Self> {
        Ok(Flowmarker {
            pl: Histogram::new(config.pl_bin_bytes, config.pl_bins)?,
            ipt: Histogram::new(config.ipt_bin_seconds, config.ipt_bins)?,
            config,
            last_timestamp_ns: None,
            packet_count: 0,
        })
    }

    /// The marker shape.
    pub fn config(&self) -> &FlowmarkerConfig {
        &self.config
    }

    /// Packet-length histogram.
    pub fn packet_length(&self) -> &Histogram {
        &self.pl
    }

    /// Inter-packet-time histogram.
    pub fn inter_packet_time(&self) -> &Histogram {
        &self.ipt
    }

    /// Number of packets observed.
    pub fn packet_count(&self) -> u64 {
        self.packet_count
    }

    /// Ingests one packet: records its length, and (from the second packet
    /// on) the gap since the previous packet.
    pub fn observe(&mut self, packet: &Packet) {
        self.pl.observe(packet.size_bytes as f64);
        if let Some(prev) = self.last_timestamp_ns {
            let gap_s = packet.timestamp_ns.saturating_sub(prev) as f64 / 1e9;
            self.ipt.observe(gap_s);
        }
        self.last_timestamp_ns = Some(packet.timestamp_ns);
        self.packet_count += 1;
    }

    /// The concatenated, normalized PL+IPT feature vector the BD models
    /// consume (length = `config.total_bins()`).
    pub fn feature_vector(&self) -> Vec<f32> {
        let mut features = self.pl.normalized();
        features.extend(self.ipt.normalized());
        features
    }

    /// The raw (unnormalized) concatenated counts.
    pub fn raw_counts(&self) -> Vec<u64> {
        let mut counts = self.pl.counts().to_vec();
        counts.extend_from_slice(self.ipt.counts());
        counts
    }

    /// Resets the marker for reuse.
    pub fn clear(&mut self) {
        self.pl.clear();
        self.ipt.clear();
        self.last_timestamp_ns = None;
        self.packet_count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn histogram_bins_values() {
        let mut h = Histogram::new(10.0, 3).unwrap();
        h.observe(0.0);
        h.observe(9.9);
        h.observe(10.0);
        h.observe(25.0);
        h.observe(1e9);
        assert_eq!(h.counts(), &[2, 1, 2]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn histogram_negative_values_clamp_to_first_bin() {
        let mut h = Histogram::new(10.0, 2).unwrap();
        h.observe(-5.0);
        assert_eq!(h.counts(), &[1, 0]);
    }

    #[test]
    fn histogram_invalid_config_rejected() {
        assert!(Histogram::new(0.0, 4).is_err());
        assert!(Histogram::new(-1.0, 4).is_err());
        assert!(Histogram::new(1.0, 0).is_err());
    }

    #[test]
    fn fuse_conserves_total_and_scales_width() {
        let mut h = Histogram::new(64.0, 10).unwrap();
        for v in [1.0, 100.0, 200.0, 300.0, 500.0, 639.0, 640.0] {
            h.observe(v);
        }
        let fused = h.fuse(4).unwrap();
        assert_eq!(fused.bins(), 3); // ceil(10/4)
        assert_eq!(fused.total(), h.total());
        assert_eq!(fused.bin_width(), 256.0);
        assert!(h.fuse(0).is_err());
    }

    #[test]
    fn truncate_folds_overflow() {
        let mut h = Histogram::new(1.0, 6).unwrap();
        for v in 0..6 {
            h.observe(v as f64 + 0.5);
        }
        let t = h.truncate(3).unwrap();
        assert_eq!(t.bins(), 3);
        assert_eq!(t.total(), h.total());
        assert_eq!(t.counts(), &[1, 1, 4]);
        assert!(h.truncate(0).is_err());
        assert_eq!(h.truncate(10).unwrap(), h);
    }

    #[test]
    fn normalized_sums_to_one_or_zero() {
        let mut h = Histogram::new(1.0, 4).unwrap();
        assert_eq!(h.normalized(), vec![0.0; 4]);
        h.observe(0.5);
        h.observe(2.5);
        let n = h.normalized();
        assert!((n.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn flowlens_shapes_match_paper() {
        assert_eq!(FlowmarkerConfig::flowlens_original().total_bins(), 151);
        assert_eq!(FlowmarkerConfig::paper_reduced().total_bins(), 30);
        assert_eq!(FlowmarkerConfig::figure6().total_bins(), 28);
    }

    #[test]
    fn flowmarker_counts_ipt_from_second_packet() {
        let mut m = Flowmarker::new(FlowmarkerConfig::paper_reduced()).unwrap();
        let mut b = Packet::builder();
        b.timestamp_ns(0).size_bytes(100);
        m.observe(&b.build());
        assert_eq!(m.inter_packet_time().total(), 0);
        b.timestamp_ns(2_000_000_000);
        m.observe(&b.build());
        assert_eq!(m.inter_packet_time().total(), 1);
        assert_eq!(m.packet_length().total(), 2);
        assert_eq!(m.packet_count(), 2);
    }

    #[test]
    fn flowmarker_feature_vector_length() {
        let m = Flowmarker::new(FlowmarkerConfig::paper_reduced()).unwrap();
        assert_eq!(m.feature_vector().len(), 30);
        let m = Flowmarker::new(FlowmarkerConfig::flowlens_original()).unwrap();
        assert_eq!(m.feature_vector().len(), 151);
    }

    #[test]
    fn flowmarker_clear_resets() {
        let mut m = Flowmarker::new(FlowmarkerConfig::figure6()).unwrap();
        let mut b = Packet::builder();
        b.timestamp_ns(5).size_bytes(128);
        m.observe(&b.build());
        m.clear();
        assert_eq!(m.packet_count(), 0);
        assert_eq!(m.raw_counts().iter().sum::<u64>(), 0);
    }

    #[test]
    fn fusing_original_produces_reduced_scale() {
        // 94 PL bins fused by 4 -> 24 bins (ours keeps 23 by construction;
        // the partial tail group makes the difference).
        let h = Histogram::new(64.0, 94).unwrap();
        let fused = h.fuse(4).unwrap();
        assert_eq!(fused.bins(), 24);
        let h = Histogram::new(512.0, 57).unwrap();
        let fused = h.fuse(8).unwrap();
        assert_eq!(fused.bins(), 8);
    }

    proptest! {
        #[test]
        fn prop_total_conserved_under_fuse(
            values in proptest::collection::vec(0.0f64..10_000.0, 0..200),
            factor in 1usize..10,
        ) {
            let mut h = Histogram::new(64.0, 20).unwrap();
            for v in &values {
                h.observe(*v);
            }
            let fused = h.fuse(factor).unwrap();
            prop_assert_eq!(fused.total(), h.total());
        }

        #[test]
        fn prop_total_conserved_under_truncate(
            values in proptest::collection::vec(0.0f64..10_000.0, 0..200),
            bins in 1usize..25,
        ) {
            let mut h = Histogram::new(64.0, 20).unwrap();
            for v in &values {
                h.observe(*v);
            }
            let t = h.truncate(bins).unwrap();
            prop_assert_eq!(t.total(), h.total());
        }

        #[test]
        fn prop_bin_of_in_range(value in -1e7f64..1e7, width in 0.1f64..1e4, bins in 1usize..100) {
            let h = Histogram::new(width, bins).unwrap();
            prop_assert!(h.bin_of(value) < bins);
        }

        #[test]
        fn prop_marker_total_equals_packets(
            sizes in proptest::collection::vec(40u32..1500, 1..50),
        ) {
            let mut m = Flowmarker::new(FlowmarkerConfig::paper_reduced()).unwrap();
            let mut b = Packet::builder();
            for (i, &s) in sizes.iter().enumerate() {
                b.timestamp_ns(i as u64 * 1_000);
                b.size_bytes(s);
                m.observe(&b.build());
            }
            prop_assert_eq!(m.packet_length().total(), sizes.len() as u64);
            prop_assert_eq!(m.inter_packet_time().total(), (sizes.len() - 1) as u64);
        }
    }
}

#![forbid(unsafe_code)]
//! # homunculus-dataplane
//!
//! Data-plane substrate for the Homunculus reproduction: packets, flows,
//! conversations, and FlowLens-style *flowmarker* histograms.
//!
//! The paper's applications consume three granularities of network data:
//!
//! - **per-packet features** (anomaly detection, traffic classification) —
//!   header fields and sizes extracted from a single [`packet::Packet`];
//! - **per-flow state** (connection duration, byte counts) tracked by a
//!   [`flow::FlowTable`];
//! - **per-conversation flowmarkers** (botnet detection) — coarse-grained
//!   histograms of packet lengths and inter-arrival times accumulated by
//!   [`histogram::Flowmarker`], following FlowLens (NDSS 2021), including
//!   the bin-fusion trick the paper uses to shrink markers from 151 to 30
//!   bins (§5.1.2).
//!
//! # Example
//!
//! ```
//! use homunculus_dataplane::histogram::{Flowmarker, FlowmarkerConfig};
//! use homunculus_dataplane::packet::{Packet, Protocol};
//!
//! # fn main() -> Result<(), homunculus_dataplane::DataplaneError> {
//! let config = FlowmarkerConfig::paper_reduced(); // 23 PL + 7 IPT bins
//! let mut marker = Flowmarker::new(config)?;
//! let base = 1_000_000u64;
//! for i in 0..10u64 {
//!     let pkt = Packet::builder()
//!         .timestamp_ns(base + i * 1_000_000_000)
//!         .size_bytes(120 + (i as u32) * 40)
//!         .protocol(Protocol::Udp)
//!         .build();
//!     marker.observe(&pkt);
//! }
//! assert_eq!(marker.packet_count(), 10);
//! assert_eq!(marker.feature_vector().len(), 30);
//! # Ok(())
//! # }
//! ```

pub mod features;
pub mod flow;
pub mod histogram;
pub mod packet;

use std::error::Error;
use std::fmt;

/// Errors produced by the data-plane substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataplaneError {
    /// A configuration value was outside its valid domain.
    InvalidConfig(String),
    /// An operation required packets but none were observed.
    NoPackets,
}

impl fmt::Display for DataplaneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataplaneError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            DataplaneError::NoPackets => write!(f, "no packets observed"),
        }
    }
}

impl Error for DataplaneError {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, DataplaneError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert_eq!(
            DataplaneError::InvalidConfig("x".into()).to_string(),
            "invalid configuration: x"
        );
        assert_eq!(DataplaneError::NoPackets.to_string(), "no packets observed");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DataplaneError>();
    }
}

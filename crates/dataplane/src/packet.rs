//! Packet representation and header fields.
//!
//! A [`Packet`] models exactly what a PISA parser exposes to the
//! match-action pipeline: the Ethernet/IPv4/L4 header fields plus metadata
//! (arrival timestamp, wire length). The ML applications never see payload
//! bytes — in-network inference works on headers and statistics, which is
//! why this struct is all the substrate needs.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// L4 protocol carried by a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Protocol {
    /// Transmission Control Protocol.
    #[default]
    Tcp,
    /// User Datagram Protocol.
    Udp,
    /// Internet Control Message Protocol.
    Icmp,
    /// Anything else (carried with its IP protocol number).
    Other(u8),
}

impl Protocol {
    /// The IP protocol number.
    pub fn number(self) -> u8 {
        match self {
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Icmp => 1,
            Protocol::Other(n) => n,
        }
    }

    /// Builds from an IP protocol number.
    pub fn from_number(n: u8) -> Self {
        match n {
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            1 => Protocol::Icmp,
            other => Protocol::Other(other),
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Tcp => write!(f, "tcp"),
            Protocol::Udp => write!(f, "udp"),
            Protocol::Icmp => write!(f, "icmp"),
            Protocol::Other(n) => write!(f, "proto({n})"),
        }
    }
}

/// TCP flag bits (subset relevant to the feature extractors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct TcpFlags {
    /// SYN bit.
    pub syn: bool,
    /// ACK bit.
    pub ack: bool,
    /// FIN bit.
    pub fin: bool,
    /// RST bit.
    pub rst: bool,
    /// PSH bit.
    pub psh: bool,
}

impl TcpFlags {
    /// All bits clear.
    pub fn none() -> Self {
        TcpFlags::default()
    }

    /// A SYN-only packet (connection attempt).
    pub fn syn() -> Self {
        TcpFlags {
            syn: true,
            ..TcpFlags::default()
        }
    }
}

/// A parsed packet as seen by the data plane.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Packet {
    /// Arrival timestamp in nanoseconds.
    pub timestamp_ns: u64,
    /// Wire length in bytes (Ethernet frame).
    pub size_bytes: u32,
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Source L4 port (0 for port-less protocols).
    pub src_port: u16,
    /// Destination L4 port (0 for port-less protocols).
    pub dst_port: u16,
    /// L4 protocol.
    pub protocol: Protocol,
    /// TCP flags (all-false for non-TCP).
    pub flags: TcpFlags,
}

impl Packet {
    /// Starts building a packet with neutral defaults.
    pub fn builder() -> PacketBuilder {
        PacketBuilder::default()
    }
}

impl Default for Packet {
    fn default() -> Self {
        Packet {
            timestamp_ns: 0,
            size_bytes: 64,
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::new(10, 0, 0, 2),
            src_port: 0,
            dst_port: 0,
            protocol: Protocol::default(),
            flags: TcpFlags::default(),
        }
    }
}

/// Builder for [`Packet`] (non-consuming, per the API guidelines).
#[derive(Debug, Clone, Default)]
pub struct PacketBuilder {
    packet: Packet,
}

impl PacketBuilder {
    /// Sets the arrival timestamp in nanoseconds.
    pub fn timestamp_ns(&mut self, ts: u64) -> &mut Self {
        self.packet.timestamp_ns = ts;
        self
    }

    /// Sets the wire length in bytes.
    pub fn size_bytes(&mut self, size: u32) -> &mut Self {
        self.packet.size_bytes = size;
        self
    }

    /// Sets the source IPv4 address.
    pub fn src_ip(&mut self, ip: Ipv4Addr) -> &mut Self {
        self.packet.src_ip = ip;
        self
    }

    /// Sets the destination IPv4 address.
    pub fn dst_ip(&mut self, ip: Ipv4Addr) -> &mut Self {
        self.packet.dst_ip = ip;
        self
    }

    /// Sets the source port.
    pub fn src_port(&mut self, port: u16) -> &mut Self {
        self.packet.src_port = port;
        self
    }

    /// Sets the destination port.
    pub fn dst_port(&mut self, port: u16) -> &mut Self {
        self.packet.dst_port = port;
        self
    }

    /// Sets the L4 protocol.
    pub fn protocol(&mut self, protocol: Protocol) -> &mut Self {
        self.packet.protocol = protocol;
        self
    }

    /// Sets the TCP flags.
    pub fn flags(&mut self, flags: TcpFlags) -> &mut Self {
        self.packet.flags = flags;
        self
    }

    /// Finishes the build.
    pub fn build(&self) -> Packet {
        self.packet.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_numbers_roundtrip() {
        for p in [
            Protocol::Tcp,
            Protocol::Udp,
            Protocol::Icmp,
            Protocol::Other(89),
        ] {
            assert_eq!(Protocol::from_number(p.number()), p);
        }
    }

    #[test]
    fn protocol_display() {
        assert_eq!(Protocol::Tcp.to_string(), "tcp");
        assert_eq!(Protocol::Other(89).to_string(), "proto(89)");
    }

    #[test]
    fn builder_sets_fields() {
        let pkt = Packet::builder()
            .timestamp_ns(123)
            .size_bytes(1500)
            .src_ip(Ipv4Addr::new(192, 168, 1, 1))
            .dst_ip(Ipv4Addr::new(192, 168, 1, 2))
            .src_port(1234)
            .dst_port(443)
            .protocol(Protocol::Udp)
            .flags(TcpFlags::syn())
            .build();
        assert_eq!(pkt.timestamp_ns, 123);
        assert_eq!(pkt.size_bytes, 1500);
        assert_eq!(pkt.src_port, 1234);
        assert_eq!(pkt.dst_port, 443);
        assert_eq!(pkt.protocol, Protocol::Udp);
        assert!(pkt.flags.syn);
    }

    #[test]
    fn builder_supports_one_liner_and_staged() {
        let one = Packet::builder().size_bytes(99).build();
        assert_eq!(one.size_bytes, 99);

        let mut b = Packet::builder();
        b.size_bytes(100);
        b.src_port(5);
        let staged = b.build();
        assert_eq!(staged.size_bytes, 100);
        assert_eq!(staged.src_port, 5);
    }

    #[test]
    fn default_packet_is_minimal_tcp() {
        let p = Packet::default();
        assert_eq!(p.size_bytes, 64);
        assert_eq!(p.protocol, Protocol::Tcp);
        assert!(!p.flags.syn);
    }
}

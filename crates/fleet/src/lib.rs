#![forbid(unsafe_code)]
//! Fleet-scale topology serving.
//!
//! The paper evaluates Homunculus pipelines on a single switch; this
//! crate is the serving-side answer to "what does the same artifact look
//! like deployed across a datacenter fabric?". It provides:
//!
//! - [`topology`] — deterministic fat-tree and leaf–spine topology
//!   generators producing typed switch/link graphs with stable ids and
//!   ECMP-style flow routing.
//! - [`fleet`] — a [`Fleet`] that instantiates one
//!   persistent [`Deployment`](homunculus_runtime::Deployment) per
//!   switch (role-based tenant placement: edge, aggregation, and core
//!   switches can serve different model sets) and a flow router that
//!   drives packet batches hop by hop along topology paths. Each hop's
//!   verdict can *gate* (drop) or *re-tag* the flow before the next hop
//!   — the paper's `a > b` model chaining generalized from a linear
//!   chain to a graph. Hop submission is pipelined: the next hop of one
//!   flow is submitted while other flows are still in flight.
//! - [`stats`] — per-switch, per-role, and fleet-wide aggregation
//!   (packet counts, verdict histograms, latency summaries, gated-flow
//!   accounting, Jain fairness) plus wall-clock-vs-cycle calibration
//!   against the grid simulator.
//!
//! Verdicts are bit-deterministic: the same flows through the same
//! fleet produce identical [`FleetReport::checksum`](fleet::FleetReport::checksum)
//! values regardless of per-switch worker counts or submission
//! interleaving.
//!
//! # Example
//!
//! ```
//! use homunculus_backends::model::{DnnIr, ModelIr};
//! use homunculus_fleet::fleet::{Fleet, FlowSpec, HopPolicy, RoutingPolicy};
//! use homunculus_fleet::topology::Topology;
//! use homunculus_ml::mlp::{Mlp, MlpArchitecture};
//! use homunculus_ml::quantize::FixedPoint;
//! use homunculus_ml::tensor::Matrix;
//!
//! # fn main() -> Result<(), homunculus_fleet::FleetError> {
//! let topology = Topology::leaf_spine(3, 1)?; // 4 switches
//! let arch = MlpArchitecture::new(4, vec![8], 2);
//! let ir = ModelIr::Dnn(DnnIr::from_mlp(&Mlp::new(&arch, 7).unwrap()));
//! let fleet = Fleet::builder(topology)
//!     .model("ad", &ir, FixedPoint::taurus_default(), None)
//!     .place_everywhere("ad")
//!     .workers(2)
//!     .build()?;
//! let edges = fleet.topology().edge_switches();
//! let packets = Matrix::from_rows(&[vec![0.1, 0.2, 0.3, 0.4]]).unwrap();
//! let flows = vec![FlowSpec::new(0, edges[0], edges[1], packets)];
//! let policy = RoutingPolicy::uniform(HopPolicy::forward("ad"));
//! let report = fleet.run(&flows, &policy)?;
//! assert_eq!(report.flows.len(), 1);
//! # Ok(())
//! # }
//! ```

pub mod fleet;
pub mod stats;
pub mod topology;

pub use fleet::{
    Fleet, FleetBuilder, FleetReport, FlowOutcome, FlowSpec, HopPolicy, RoutingPolicy,
};
pub use stats::{jain_fairness, Calibration, FleetStats, RoleStats, SwitchStats};
pub use topology::{Link, Switch, SwitchId, SwitchRole, Topology};

use std::error::Error;
use std::fmt;

/// Errors produced while building topologies or running fleets.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// Topology construction or routing failed (bad parameters, non-edge
    /// endpoints, unknown switch ids).
    Topology(String),
    /// Fleet assembly failed (unknown model names, empty placements,
    /// feature-width mismatches between chained hops).
    Placement(String),
    /// A per-switch deployment rejected a request.
    Runtime(String),
    /// Calibration against the grid simulator failed.
    Simulation(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Topology(msg) => write!(f, "topology error: {msg}"),
            FleetError::Placement(msg) => write!(f, "placement error: {msg}"),
            FleetError::Runtime(msg) => write!(f, "fleet runtime error: {msg}"),
            FleetError::Simulation(msg) => write!(f, "fleet simulation error: {msg}"),
        }
    }
}

impl Error for FleetError {}

impl From<homunculus_runtime::RuntimeError> for FleetError {
    fn from(e: homunculus_runtime::RuntimeError) -> Self {
        FleetError::Runtime(e.to_string())
    }
}

impl From<homunculus_sim::SimError> for FleetError {
    fn from(e: homunculus_sim::SimError) -> Self {
        FleetError::Simulation(e.to_string())
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, FleetError>;

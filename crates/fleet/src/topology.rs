//! Deterministic datacenter topology generation and flow routing.
//!
//! Two classic fabrics are generated with stable, layout-defined switch
//! ids (no randomness anywhere, so fleet runs are reproducible):
//!
//! - [`Topology::fattree`] — the canonical k-ary fat tree: `k` pods of
//!   `k/2` edge and `k/2` aggregation switches plus `(k/2)²` cores
//!   (`k = 4` gives the paper-scale 20-switch fabric).
//! - [`Topology::leaf_spine`] — a two-tier leaf–spine fabric (leaves are
//!   edge switches, spines play the core role).
//!
//! Routing is ECMP-style but deterministic: [`Topology::path`] hashes
//! only the caller-supplied `flow_id` to pick among equal-cost uplinks,
//! so the same flow always takes the same path.

use crate::{FleetError, Result};
use serde::{Deserialize, Serialize};

/// The tier a switch occupies in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SwitchRole {
    /// Top-of-rack tier: flows enter and leave the fabric here.
    Edge,
    /// Pod-level aggregation tier (fat trees only).
    Aggregation,
    /// Fabric core / spine tier.
    Core,
}

impl SwitchRole {
    /// Every role, in edge-to-core order.
    pub const ALL: [SwitchRole; 3] = [SwitchRole::Edge, SwitchRole::Aggregation, SwitchRole::Core];

    /// Lowercase role name as used in reports and placements.
    pub fn name(self) -> &'static str {
        match self {
            SwitchRole::Edge => "edge",
            SwitchRole::Aggregation => "aggregation",
            SwitchRole::Core => "core",
        }
    }

    /// Index into role-keyed tables (see [`SwitchRole::ALL`]).
    pub fn index(self) -> usize {
        match self {
            SwitchRole::Edge => 0,
            SwitchRole::Aggregation => 1,
            SwitchRole::Core => 2,
        }
    }
}

/// A switch's position in its topology's switch list — stable across
/// runs because topology layout is deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SwitchId(pub usize);

impl SwitchId {
    /// The underlying index into [`Topology::switches`].
    pub fn index(self) -> usize {
        self.0
    }
}

/// One switch of the fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Switch {
    /// Stable id (index into the topology's switch list).
    pub id: SwitchId,
    /// Human-readable name, e.g. `edge_p1_0` or `core_2`.
    pub name: String,
    /// Fabric tier.
    pub role: SwitchRole,
    /// Pod number for podded tiers (`None` for cores and spines).
    pub pod: Option<usize>,
}

/// An undirected link between two switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// Lower-tier endpoint.
    pub down: SwitchId,
    /// Upper-tier endpoint.
    pub up: SwitchId,
}

/// The generator parameters a topology was built from — kept so routing
/// can exploit the fabric's regular structure instead of searching the
/// graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum TopologyKind {
    FatTree { k: usize },
    LeafSpine { leaves: usize, spines: usize },
}

/// A generated switch/link graph with deterministic ECMP routing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    kind: TopologyKind,
    switches: Vec<Switch>,
    links: Vec<Link>,
}

impl Topology {
    /// Builds the canonical k-ary fat tree: `k` pods, each with `k/2`
    /// edge and `k/2` aggregation switches (fully meshed within the
    /// pod), and `(k/2)²` core switches where core group `j` connects to
    /// aggregation switch `j` of every pod.
    ///
    /// `k = 4` yields the 20-switch fabric (8 edge + 8 aggregation +
    /// 4 core) used throughout the fleet tests.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Topology`] unless `k` is even and at least 2.
    pub fn fattree(k: usize) -> Result<Self> {
        if k < 2 || k % 2 != 0 {
            return Err(FleetError::Topology(format!(
                "fat-tree arity must be even and >= 2, got {k}"
            )));
        }
        let half = k / 2;
        let mut switches = Vec::with_capacity(k * k + half * half);
        for pod in 0..k {
            for i in 0..half {
                switches.push(Switch {
                    id: SwitchId(switches.len()),
                    name: format!("edge_p{pod}_{i}"),
                    role: SwitchRole::Edge,
                    pod: Some(pod),
                });
            }
        }
        for pod in 0..k {
            for i in 0..half {
                switches.push(Switch {
                    id: SwitchId(switches.len()),
                    name: format!("agg_p{pod}_{i}"),
                    role: SwitchRole::Aggregation,
                    pod: Some(pod),
                });
            }
        }
        for i in 0..half * half {
            switches.push(Switch {
                id: SwitchId(switches.len()),
                name: format!("core_{i}"),
                role: SwitchRole::Core,
                pod: None,
            });
        }

        let edge = |pod: usize, i: usize| SwitchId(pod * half + i);
        let agg = |pod: usize, i: usize| SwitchId(k * half + pod * half + i);
        let core = |i: usize| SwitchId(k * k + i);
        let mut links = Vec::new();
        for pod in 0..k {
            for e in 0..half {
                for a in 0..half {
                    links.push(Link {
                        down: edge(pod, e),
                        up: agg(pod, a),
                    });
                }
            }
            for a in 0..half {
                for c in 0..half {
                    links.push(Link {
                        down: agg(pod, a),
                        up: core(a * half + c),
                    });
                }
            }
        }
        Ok(Topology {
            kind: TopologyKind::FatTree { k },
            switches,
            links,
        })
    }

    /// Builds a two-tier leaf–spine fabric: `leaves` edge switches fully
    /// meshed to `spines` core switches.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Topology`] when either count is zero.
    pub fn leaf_spine(leaves: usize, spines: usize) -> Result<Self> {
        if leaves == 0 || spines == 0 {
            return Err(FleetError::Topology(format!(
                "leaf-spine needs at least one leaf and one spine, got {leaves}x{spines}"
            )));
        }
        let mut switches = Vec::with_capacity(leaves + spines);
        for i in 0..leaves {
            switches.push(Switch {
                id: SwitchId(i),
                name: format!("leaf_{i}"),
                role: SwitchRole::Edge,
                pod: None,
            });
        }
        for i in 0..spines {
            switches.push(Switch {
                id: SwitchId(leaves + i),
                name: format!("spine_{i}"),
                role: SwitchRole::Core,
                pod: None,
            });
        }
        let mut links = Vec::with_capacity(leaves * spines);
        for l in 0..leaves {
            for s in 0..spines {
                links.push(Link {
                    down: SwitchId(l),
                    up: SwitchId(leaves + s),
                });
            }
        }
        Ok(Topology {
            kind: TopologyKind::LeafSpine { leaves, spines },
            switches,
            links,
        })
    }

    /// Every switch, in id order.
    pub fn switches(&self) -> &[Switch] {
        &self.switches
    }

    /// Every link (lower tier first).
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Number of switches.
    pub fn len(&self) -> usize {
        self.switches.len()
    }

    /// Whether the fabric is empty (never true for generated fabrics).
    pub fn is_empty(&self) -> bool {
        self.switches.is_empty()
    }

    /// The switch behind an id.
    ///
    /// # Panics
    ///
    /// Panics when the id does not belong to this topology.
    pub fn switch(&self, id: SwitchId) -> &Switch {
        &self.switches[id.0]
    }

    /// Ids of every edge switch, in id order — the valid flow endpoints.
    pub fn edge_switches(&self) -> Vec<SwitchId> {
        self.switches
            .iter()
            .filter(|s| s.role == SwitchRole::Edge)
            .map(|s| s.id)
            .collect()
    }

    /// Switch counts per role, indexed by [`SwitchRole::index`].
    pub fn role_counts(&self) -> [usize; 3] {
        let mut counts = [0usize; 3];
        for s in &self.switches {
            counts[s.role.index()] += 1;
        }
        counts
    }

    /// The deterministic ECMP path from `src` to `dst` for `flow_id`:
    /// equal-cost uplink choices hash the flow id only, so a flow's path
    /// is a pure function of `(src, dst, flow_id)`.
    ///
    /// Paths are switch-id sequences including both endpoints. A flow
    /// from a switch to itself stays one hop long.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Topology`] when either endpoint is not an
    /// edge switch of this topology.
    pub fn path(&self, src: SwitchId, dst: SwitchId, flow_id: u64) -> Result<Vec<SwitchId>> {
        for endpoint in [src, dst] {
            let valid = self
                .switches
                .get(endpoint.0)
                .is_some_and(|s| s.role == SwitchRole::Edge);
            if !valid {
                return Err(FleetError::Topology(format!(
                    "flow endpoints must be edge switches, got id {}",
                    endpoint.0
                )));
            }
        }
        if src == dst {
            return Ok(vec![src]);
        }
        match self.kind {
            TopologyKind::LeafSpine { leaves, spines } => {
                let spine = SwitchId(leaves + (flow_id as usize % spines));
                Ok(vec![src, spine, dst])
            }
            TopologyKind::FatTree { k } => {
                let half = k / 2;
                let src_pod = src.0 / half;
                let dst_pod = dst.0 / half;
                let agg = |pod: usize, i: usize| SwitchId(k * half + pod * half + i);
                let up = flow_id as usize % half;
                if src_pod == dst_pod {
                    return Ok(vec![src, agg(src_pod, up), dst]);
                }
                let core_in_group = (flow_id as usize / half) % half;
                let core = SwitchId(k * k + up * half + core_in_group);
                Ok(vec![src, agg(src_pod, up), core, agg(dst_pod, up), dst])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fattree_k4_has_twenty_switches() {
        let t = Topology::fattree(4).unwrap();
        assert_eq!(t.len(), 20);
        assert_eq!(t.role_counts(), [8, 8, 4]);
        // k/2 uplinks + k/2 downlinks per aggregation switch: 8 pods'
        // worth of edge<->agg meshes plus agg<->core fans.
        assert_eq!(t.links().len(), 4 * (2 * 2) + 4 * (2 * 2));
    }

    #[test]
    fn fattree_rejects_odd_arity() {
        assert!(Topology::fattree(3).is_err());
        assert!(Topology::fattree(0).is_err());
    }

    #[test]
    fn leaf_spine_counts() {
        let t = Topology::leaf_spine(12, 4).unwrap();
        assert_eq!(t.len(), 16);
        assert_eq!(t.role_counts(), [12, 0, 4]);
        assert_eq!(t.links().len(), 48);
    }

    #[test]
    fn links_are_valid_and_cross_tier() {
        for t in [
            Topology::fattree(4).unwrap(),
            Topology::leaf_spine(5, 3).unwrap(),
        ] {
            for link in t.links() {
                let down = t.switch(link.down);
                let up = t.switch(link.up);
                assert!(down.role < up.role, "{} -> {}", down.name, up.name);
            }
        }
    }

    #[test]
    fn paths_are_deterministic_and_link_valid() {
        let t = Topology::fattree(4).unwrap();
        let link_set: HashSet<(usize, usize)> = t
            .links()
            .iter()
            .flat_map(|l| [(l.down.0, l.up.0), (l.up.0, l.down.0)])
            .collect();
        let edges = t.edge_switches();
        for &src in &edges {
            for &dst in &edges {
                for flow in 0..16u64 {
                    let path = t.path(src, dst, flow).unwrap();
                    assert_eq!(path, t.path(src, dst, flow).unwrap());
                    assert_eq!(path[0], src);
                    assert_eq!(*path.last().unwrap(), dst);
                    for hop in path.windows(2) {
                        assert!(
                            link_set.contains(&(hop[0].0, hop[1].0)),
                            "no link {} -> {}",
                            hop[0].0,
                            hop[1].0
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn same_pod_paths_skip_the_core() {
        let t = Topology::fattree(4).unwrap();
        let path = t.path(SwitchId(0), SwitchId(1), 7).unwrap();
        assert_eq!(path.len(), 3);
        assert_eq!(t.switch(path[1]).role, SwitchRole::Aggregation);
        assert_eq!(t.switch(path[1]).pod, Some(0));
    }

    #[test]
    fn cross_pod_paths_traverse_the_core() {
        let t = Topology::fattree(4).unwrap();
        for flow in 0..8u64 {
            let path = t.path(SwitchId(0), SwitchId(6), flow).unwrap();
            assert_eq!(path.len(), 5);
            assert_eq!(t.switch(path[2]).role, SwitchRole::Core);
        }
    }

    #[test]
    fn flow_id_spreads_over_spines() {
        let t = Topology::leaf_spine(4, 3).unwrap();
        let spines: HashSet<usize> = (0..9u64)
            .map(|f| t.path(SwitchId(0), SwitchId(1), f).unwrap()[1].0)
            .collect();
        assert_eq!(spines.len(), 3, "ECMP should use every spine");
    }

    #[test]
    fn non_edge_endpoints_are_rejected() {
        let t = Topology::fattree(4).unwrap();
        let core = t
            .switches()
            .iter()
            .find(|s| s.role == SwitchRole::Core)
            .unwrap()
            .id;
        assert!(t.path(SwitchId(0), core, 0).is_err());
        assert!(t.path(core, SwitchId(0), 0).is_err());
        assert!(t.path(SwitchId(0), SwitchId(999), 0).is_err());
    }
}

//! Fleet-wide serving statistics and wall-clock calibration.
//!
//! [`FleetStats`] (built by [`Fleet::stats`](crate::fleet::Fleet::stats))
//! rolls the per-tenant deployment snapshots up three levels: per
//! switch, per role, and fleet-wide, with gated-flow accounting from the
//! run report and a Jain fairness index over edge-switch load.
//!
//! [`Calibration`] relates the *measured* wall-clock classify latency of
//! a deployed model to the *simulated* cycle-accurate latency the grid
//! simulator predicts for the same IR on a Taurus switch — the ratio
//! that turns software-serving numbers into hardware estimates.

use crate::topology::SwitchRole;
use crate::Result;
use homunculus_backends::model::ModelIr;
use homunculus_backends::taurus::TaurusTarget;
use homunculus_sim::grid::GridSimulator;
use serde::{Deserialize, Serialize};

/// One switch's aggregated serving stats.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchStats {
    /// Switch name (see [`crate::topology::Switch::name`]).
    pub name: String,
    /// Fabric tier.
    pub role: SwitchRole,
    /// Packets classified by this switch since its deployment launched.
    pub packets: usize,
    /// Verdict counts indexed by class, summed over tenants.
    pub verdict_histogram: Vec<usize>,
    /// Approximate median classify latency: the packet-weighted mean of
    /// tenant medians (tenant histograms cannot be merged exactly).
    pub p50_ns: u64,
    /// Upper bound on tail latency: the max of tenant p99s.
    pub p99_ns: u64,
    /// Packet-weighted mean classify latency.
    pub mean_ns: f64,
    /// Rows this switch forwarded in the reported run.
    pub forwarded: u64,
    /// Rows this switch gated (dropped) in the reported run.
    pub gated: u64,
}

/// One role's rollup across its switches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoleStats {
    /// The tier.
    pub role: SwitchRole,
    /// Switches of this role.
    pub switches: usize,
    /// Packets classified across them.
    pub packets: usize,
    /// Verdict counts indexed by class.
    pub verdict_histogram: Vec<usize>,
    /// Rows forwarded in the reported run.
    pub forwarded: u64,
    /// Rows gated in the reported run.
    pub gated: u64,
}

/// Fleet-wide aggregation over one [`FleetReport`](crate::fleet::FleetReport).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetStats {
    /// Per-switch stats, indexed by switch id.
    pub switches: Vec<SwitchStats>,
    /// Per-role rollups (roles with no switches omitted).
    pub roles: Vec<RoleStats>,
    /// Packets classified fleet-wide.
    pub total_packets: usize,
    /// Fleet-wide verdict counts indexed by class.
    pub verdict_histogram: Vec<usize>,
    /// Rows forwarded fleet-wide in the reported run.
    pub forwarded_rows: u64,
    /// Rows gated fleet-wide in the reported run.
    pub gated_rows: u64,
    /// Jain fairness index of per-edge-switch packet load (1.0 = every
    /// edge switch served the same number of packets).
    pub edge_fairness: f64,
}

impl FleetStats {
    /// The rollup for one role, if any switch has it.
    pub fn role(&self, role: SwitchRole) -> Option<&RoleStats> {
        self.roles.iter().find(|r| r.role == role)
    }
}

/// Jain's fairness index: `(sum x)^2 / (n * sum x^2)`, in `(0, 1]`
/// with 1.0 meaning perfectly even load. Degenerate inputs (empty, or
/// all-zero loads) report 1.0 — nothing is unfairly loaded.
pub fn jain_fairness(loads: &[f64]) -> f64 {
    let sum: f64 = loads.iter().sum();
    let squares: f64 = loads.iter().map(|x| x * x).sum();
    if loads.is_empty() || squares <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (loads.len() as f64 * squares)
}

/// Measured-vs-simulated latency for one model: the fleet harness's
/// wall-clock calibration against the cycle-accurate grid simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Mean wall-clock classify latency measured while serving, in ns.
    pub measured_mean_ns: f64,
    /// Latency the grid simulator predicts for the same IR on a default
    /// Taurus grid, in ns.
    pub simulated_latency_ns: f64,
    /// `measured / simulated`: > 1 means software serving is slower than
    /// the simulated hardware (the expected regime).
    pub wall_to_cycle_ratio: f64,
}

impl Calibration {
    /// Calibrates a measured mean latency against the grid simulator's
    /// cycle count for `ir` on a default Taurus target.
    ///
    /// # Errors
    ///
    /// Returns [`crate::FleetError::Simulation`] when the IR cannot be
    /// simulated (e.g. a family the grid does not model).
    pub fn against_grid(ir: &ModelIr, measured_mean_ns: f64) -> Result<Calibration> {
        let report = GridSimulator::for_target(&TaurusTarget::default()).simulate(ir, 256)?;
        let simulated = report.latency_ns.max(f64::MIN_POSITIVE);
        Ok(Calibration {
            measured_mean_ns,
            simulated_latency_ns: report.latency_ns,
            wall_to_cycle_ratio: measured_mean_ns / simulated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homunculus_backends::model::{DnnIr, ModelIr};
    use homunculus_ml::mlp::{Mlp, MlpArchitecture};

    #[test]
    fn jain_bounds() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
        assert!((jain_fairness(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        let skewed = jain_fairness(&[10.0, 0.0, 0.0]);
        assert!((skewed - 1.0 / 3.0).abs() < 1e-12);
        let mild = jain_fairness(&[4.0, 5.0, 6.0]);
        assert!(mild > 0.9 && mild < 1.0);
    }

    #[test]
    fn calibration_reports_positive_ratio() {
        let arch = MlpArchitecture::new(7, vec![8], 2);
        let ir = ModelIr::Dnn(DnnIr::from_mlp(&Mlp::new(&arch, 1).unwrap()));
        let calibration = Calibration::against_grid(&ir, 500.0).unwrap();
        assert!(calibration.simulated_latency_ns > 0.0);
        assert!(calibration.wall_to_cycle_ratio > 0.0);
        assert!(
            (calibration.wall_to_cycle_ratio
                - calibration.measured_mean_ns / calibration.simulated_latency_ns)
                .abs()
                < 1e-9
        );
    }
}

//! Per-switch deployments and the routed multi-hop flow runner.
//!
//! A [`Fleet`] stands up one persistent
//! [`Deployment`] per topology switch
//! and registers models on it according to a role-based placement (edge,
//! aggregation, and core switches can serve different tenant sets — the
//! multi-artifact analogue of the paper's multi-app switch).
//!
//! [`Fleet::run`] then replays flows hop by hop along their
//! [`Topology::path`]s. Every hop classifies the flow's surviving
//! packets; its verdict can **gate** (drop packets of a configured
//! class) and **re-tag** (expose the verdict to the next hop as a
//! trailing tag feature via
//! [`TenantBatch::chained`](homunculus_runtime::serve::TenantBatch::chained)).
//! Hop submission is *pipelined*: completed tickets immediately submit
//! their flow's next hop while other flows' batches are still in
//! flight, so stage N+1 of one flow overlaps stage N of another.
//!
//! Determinism: per-row verdicts are pure functions of the model and the
//! row, and gating/tagging are pure functions of verdicts — so the
//! fleet-wide outcome is bit-identical for any per-switch worker count
//! and any ticket interleaving. [`FleetReport::checksum`] canonicalizes
//! by flow id, making the invariant directly assertable.

use crate::stats::{jain_fairness, FleetStats, RoleStats, SwitchStats};
use crate::topology::{SwitchId, SwitchRole, Topology};
use crate::{FleetError, Result};
use homunculus_backends::model::ModelIr;
use homunculus_core::pipeline::CompiledArtifact;
use homunculus_ml::preprocess::Normalizer;
use homunculus_ml::quantize::FixedPoint;
use homunculus_ml::tensor::Matrix;
use homunculus_runtime::deploy::{Deployment, Ticket};
use homunculus_runtime::serve::{TenantBatch, TenantId};
use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;

/// One model a fleet can place: the same (IR, format, normalizer)
/// triple a [`Deployment`] registers tenants from.
#[derive(Debug, Clone)]
struct ModelEntry {
    name: String,
    ir: ModelIr,
    format: FixedPoint,
    normalizer: Option<Normalizer>,
}

/// Builder for a [`Fleet`]: models, placement, and per-switch
/// deployment knobs.
#[derive(Debug, Clone)]
pub struct FleetBuilder {
    topology: Topology,
    entries: Vec<ModelEntry>,
    placement: [Vec<String>; 3],
    workers: usize,
    queue_depth: usize,
    chunk_rows: Option<usize>,
}

impl FleetBuilder {
    /// Registers every model report of a compiled artifact as a placeable
    /// model (multi-artifact fleets call this once per artifact).
    #[must_use]
    pub fn artifact(mut self, artifact: &CompiledArtifact) -> Self {
        for report in artifact.reports() {
            self.entries.push(ModelEntry {
                name: report.name.clone(),
                ir: report.ir.clone(),
                format: report.format,
                normalizer: Some(report.normalizer.clone()),
            });
        }
        self
    }

    /// Registers one ad-hoc model (tests and benches use this to skip
    /// the compile pipeline).
    #[must_use]
    pub fn model(
        mut self,
        name: &str,
        ir: &ModelIr,
        format: FixedPoint,
        normalizer: Option<Normalizer>,
    ) -> Self {
        self.entries.push(ModelEntry {
            name: name.into(),
            ir: ir.clone(),
            format,
            normalizer,
        });
        self
    }

    /// Places a registered model on every switch of `role`.
    #[must_use]
    pub fn place(mut self, role: SwitchRole, model: &str) -> Self {
        self.placement[role.index()].push(model.into());
        self
    }

    /// Places a registered model on every switch of every role.
    #[must_use]
    pub fn place_everywhere(self, model: &str) -> Self {
        SwitchRole::ALL
            .into_iter()
            .fold(self, |b, role| b.place(role, model))
    }

    /// Resident worker threads per switch deployment (default 1).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Ingress queue depth per switch deployment (default 64 tickets).
    #[must_use]
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Dispatch chunk rows per switch deployment (default: the
    /// deployment's own default).
    #[must_use]
    pub fn chunk_rows(mut self, rows: usize) -> Self {
        self.chunk_rows = Some(rows.max(1));
        self
    }

    /// Instantiates every per-switch deployment and registers its role's
    /// models as tenants.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Placement`] when a placed model name was
    /// never registered or no model is placed anywhere, and
    /// [`FleetError::Runtime`] when a deployment rejects a model.
    pub fn build(self) -> Result<Fleet> {
        if self.placement.iter().all(|models| models.is_empty()) {
            return Err(FleetError::Placement(
                "no model is placed on any role".into(),
            ));
        }
        for name in self.placement.iter().flatten() {
            if !self.entries.iter().any(|e| &e.name == name) {
                return Err(FleetError::Placement(format!(
                    "placed model '{name}' is not registered"
                )));
            }
        }
        let mut nodes = Vec::with_capacity(self.topology.len());
        for switch in self.topology.switches() {
            let mut builder = Deployment::builder()
                .workers(self.workers)
                .queue_depth(self.queue_depth);
            if let Some(rows) = self.chunk_rows {
                builder = builder.chunk_rows(rows);
            }
            let deployment = builder.build();
            let mut tenants = BTreeMap::new();
            let mut widths = BTreeMap::new();
            for name in &self.placement[switch.role.index()] {
                let entry = self
                    .entries
                    .iter()
                    .find(|e| &e.name == name)
                    .expect("placement names validated above");
                let tenant = deployment.add_model(
                    &entry.name,
                    &entry.ir,
                    entry.format,
                    entry.normalizer.clone(),
                )?;
                tenants.insert(entry.name.clone(), tenant);
                widths.insert(entry.name.clone(), entry.ir.n_features());
            }
            nodes.push(SwitchNode {
                deployment,
                tenants,
                widths,
            });
        }
        let calibration_irs = self.entries.into_iter().map(|e| (e.name, e.ir)).collect();
        Ok(Fleet {
            topology: self.topology,
            nodes,
            models: calibration_irs,
        })
    }
}

/// One switch's serving state.
struct SwitchNode {
    deployment: Deployment,
    tenants: BTreeMap<String, TenantId>,
    widths: BTreeMap<String, usize>,
}

/// A topology of persistent per-switch deployments.
pub struct Fleet {
    topology: Topology,
    nodes: Vec<SwitchNode>,
    models: BTreeMap<String, ModelIr>,
}

/// What a hop does with its verdicts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HopPolicy {
    /// The model serving this hop (must be placed on the hop's role).
    pub model: String,
    /// Packets classified into this class are dropped at the hop.
    pub drop_class: Option<usize>,
    /// Whether the hop's verdict replaces the flow tag seen by the next
    /// hop (`false` keeps the upstream tag).
    pub retag: bool,
}

impl HopPolicy {
    /// Forward everything, re-tagging with this hop's verdict.
    pub fn forward(model: &str) -> Self {
        HopPolicy {
            model: model.into(),
            drop_class: None,
            retag: true,
        }
    }

    /// Drop packets classified as `drop_class`, re-tag the rest.
    pub fn gate(model: &str, drop_class: usize) -> Self {
        HopPolicy {
            model: model.into(),
            drop_class: Some(drop_class),
            retag: true,
        }
    }

    /// Sets whether the hop re-tags (default `true`).
    #[must_use]
    pub fn retag(mut self, retag: bool) -> Self {
        self.retag = retag;
        self
    }
}

/// Per-role hop policies: which model serves each tier and how its
/// verdicts gate and tag the flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingPolicy {
    hops: [HopPolicy; 3],
}

impl RoutingPolicy {
    /// The same policy on every tier.
    pub fn uniform(hop: HopPolicy) -> Self {
        RoutingPolicy {
            hops: [hop.clone(), hop.clone(), hop],
        }
    }

    /// Overrides the policy of one tier.
    #[must_use]
    pub fn with_role(mut self, role: SwitchRole, hop: HopPolicy) -> Self {
        self.hops[role.index()] = hop;
        self
    }

    /// The policy serving `role`.
    pub fn for_role(&self, role: SwitchRole) -> &HopPolicy {
        &self.hops[role.index()]
    }
}

/// One flow to route: a packet batch entering at `src` and destined for
/// `dst`, routed by `flow_id` (the ECMP hash input).
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Caller-chosen id; paths and report canonicalization key off it.
    pub flow_id: u64,
    /// Ingress edge switch.
    pub src: SwitchId,
    /// Egress edge switch.
    pub dst: SwitchId,
    /// One packet per row, in the models' raw feature space.
    pub packets: Matrix,
}

impl FlowSpec {
    /// Builds a flow spec.
    pub fn new(flow_id: u64, src: SwitchId, dst: SwitchId, packets: Matrix) -> Self {
        FlowSpec {
            flow_id,
            src,
            dst,
            packets,
        }
    }
}

/// What happened to one flow.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowOutcome {
    /// The flow's id.
    pub flow_id: u64,
    /// The path the flow took (switch ids, both endpoints included).
    pub path: Vec<SwitchId>,
    /// `hop_verdicts[hop][packet]`: the class the hop's model assigned,
    /// or `None` when the packet was gated before reaching the hop.
    pub hop_verdicts: Vec<Vec<Option<usize>>>,
    /// Packets that survived every hop.
    pub delivered: usize,
    /// Packets dropped by a gate along the path.
    pub gated: usize,
}

/// The result of one [`Fleet::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Per-flow outcomes, in submission order.
    pub flows: Vec<FlowOutcome>,
    /// Rows forwarded by each switch, indexed by switch id.
    pub forwarded_rows: Vec<u64>,
    /// Rows gated (dropped) by each switch, indexed by switch id.
    pub gated_rows: Vec<u64>,
    /// Wall-clock of the run in nanoseconds.
    pub elapsed_ns: u64,
}

fn mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x100_0000_01b3)
}

impl FleetReport {
    /// Total packets classified across all hops of all flows.
    pub fn classified_rows(&self) -> u64 {
        self.flows
            .iter()
            .flat_map(|f| &f.hop_verdicts)
            .map(|hop| hop.iter().filter(|v| v.is_some()).count() as u64)
            .sum()
    }

    /// A canonical FNV-style checksum over every `(flow, hop, packet,
    /// verdict)` tuple. Flows are ordered by `flow_id`, so the value is
    /// invariant under submission order, switch iteration order, and
    /// per-switch worker counts — the fleet-wide bit-determinism pin.
    pub fn checksum(&self) -> u64 {
        let mut order: Vec<&FlowOutcome> = self.flows.iter().collect();
        order.sort_by_key(|f| f.flow_id);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for flow in order {
            h = mix(h, flow.flow_id);
            for (hop_index, hop) in flow.hop_verdicts.iter().enumerate() {
                h = mix(h, hop_index as u64 + 1);
                for verdict in hop {
                    h = mix(h, verdict.map_or(0, |class| class as u64 + 1));
                }
            }
        }
        h
    }
}

/// A ticket in flight: which flow, which hop, which surviving packets.
struct Pending {
    flow: usize,
    hop: usize,
    rows: Vec<usize>,
    tags: Vec<f32>,
    ticket: Ticket,
}

impl Fleet {
    /// Starts building a fleet over `topology`.
    pub fn builder(topology: Topology) -> FleetBuilder {
        FleetBuilder {
            topology,
            entries: Vec::new(),
            placement: [Vec::new(), Vec::new(), Vec::new()],
            workers: 1,
            queue_depth: 64,
            chunk_rows: None,
        }
    }

    /// The fabric this fleet serves on.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The IR registered under a model name (for calibration).
    pub fn model_ir(&self, name: &str) -> Option<&ModelIr> {
        self.models.get(name)
    }

    fn submit_hop(
        &self,
        flow: &FlowSpec,
        path: &[SwitchId],
        hop: usize,
        rows: &[usize],
        tags: &[f32],
        policy: &RoutingPolicy,
    ) -> Result<Ticket> {
        let switch = self.topology.switch(path[hop]);
        let hop_policy = policy.for_role(switch.role);
        let node = &self.nodes[switch.id.index()];
        let (tenant, width) = match (
            node.tenants.get(&hop_policy.model),
            node.widths.get(&hop_policy.model),
        ) {
            (Some(&tenant), Some(&width)) => (tenant, width),
            _ => {
                return Err(FleetError::Placement(format!(
                    "switch {} ({}) does not serve model '{}'",
                    switch.name,
                    switch.role.name(),
                    hop_policy.model
                )))
            }
        };
        let feature_rows: Vec<Vec<f32>> =
            rows.iter().map(|&r| flow.packets.row(r).to_vec()).collect();
        let batch = TenantBatch::chained(tenant, &feature_rows, tags, width)?;
        Ok(node.deployment.submit(batch)?)
    }

    /// Routes every flow through the fabric with pipelined hop
    /// submission and returns per-flow outcomes.
    ///
    /// Tickets complete in a FIFO round-robin over flows: as soon as a
    /// flow's hop N ticket is redeemed, its hop N+1 batch is submitted —
    /// while every other flow's in-flight hop keeps executing. Verdicts,
    /// gating, and tagging are all deterministic, so
    /// [`FleetReport::checksum`] does not depend on that interleaving.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Topology`] for invalid flow endpoints,
    /// [`FleetError::Placement`] when a hop's model is not served by its
    /// switch, and [`FleetError::Runtime`] for rejected submissions
    /// (including chained-width mismatches).
    pub fn run(&self, flows: &[FlowSpec], policy: &RoutingPolicy) -> Result<FleetReport> {
        let mut paths = Vec::with_capacity(flows.len());
        for flow in flows {
            if flow.packets.rows() == 0 {
                return Err(FleetError::Runtime(format!(
                    "flow {} has no packets",
                    flow.flow_id
                )));
            }
            paths.push(self.topology.path(flow.src, flow.dst, flow.flow_id)?);
        }
        let mut outcomes: Vec<FlowOutcome> = flows
            .iter()
            .zip(&paths)
            .map(|(flow, path)| FlowOutcome {
                flow_id: flow.flow_id,
                path: path.clone(),
                hop_verdicts: vec![vec![None; flow.packets.rows()]; path.len()],
                delivered: 0,
                gated: 0,
            })
            .collect();
        let mut forwarded = vec![0u64; self.topology.len()];
        let mut gated = vec![0u64; self.topology.len()];

        let start = Instant::now();
        let mut queue: VecDeque<Pending> = VecDeque::with_capacity(flows.len());
        for (index, flow) in flows.iter().enumerate() {
            let rows: Vec<usize> = (0..flow.packets.rows()).collect();
            let tags = vec![0.0f32; rows.len()];
            let ticket = self.submit_hop(flow, &paths[index], 0, &rows, &tags, policy)?;
            queue.push_back(Pending {
                flow: index,
                hop: 0,
                rows,
                tags,
                ticket,
            });
        }

        while let Some(pending) = queue.pop_front() {
            let verdicts = pending.ticket.wait();
            let classes = verdicts.as_slice();
            let flow = &flows[pending.flow];
            let path = &paths[pending.flow];
            let switch_index = path[pending.hop].index();
            let hop_policy = policy.for_role(self.topology.switch(path[pending.hop]).role);
            let outcome = &mut outcomes[pending.flow];

            let mut next_rows = Vec::with_capacity(pending.rows.len());
            let mut next_tags = Vec::with_capacity(pending.rows.len());
            for (slot, &row) in pending.rows.iter().enumerate() {
                let class = classes[slot];
                outcome.hop_verdicts[pending.hop][row] = Some(class);
                if hop_policy.drop_class == Some(class) {
                    outcome.gated += 1;
                    gated[switch_index] += 1;
                } else {
                    forwarded[switch_index] += 1;
                    next_rows.push(row);
                    next_tags.push(if hop_policy.retag {
                        class as f32
                    } else {
                        pending.tags[slot]
                    });
                }
            }

            let last_hop = pending.hop + 1 == path.len();
            if last_hop {
                outcome.delivered += next_rows.len();
            } else if !next_rows.is_empty() {
                let ticket =
                    self.submit_hop(flow, path, pending.hop + 1, &next_rows, &next_tags, policy)?;
                queue.push_back(Pending {
                    flow: pending.flow,
                    hop: pending.hop + 1,
                    rows: next_rows,
                    tags: next_tags,
                    ticket,
                });
            }
        }
        let elapsed_ns = start.elapsed().as_nanos() as u64;
        Ok(FleetReport {
            flows: outcomes,
            forwarded_rows: forwarded,
            gated_rows: gated,
            elapsed_ns,
        })
    }

    /// Aggregates per-switch, per-role, and fleet-wide serving stats.
    ///
    /// Packet counts, verdict histograms, and latency summaries come
    /// from each switch deployment's lifetime snapshot (they accumulate
    /// across runs); gated/forwarded accounting comes from `report`.
    /// Per-switch `p50_ns` is the packet-weighted mean of tenant medians
    /// and `p99_ns` the max of tenant p99s — tenant histograms cannot be
    /// merged exactly, so both are documented approximations.
    pub fn stats(&self, report: &FleetReport) -> FleetStats {
        let mut switches = Vec::with_capacity(self.nodes.len());
        for (node, switch) in self.nodes.iter().zip(self.topology.switches()) {
            let snapshot = node.deployment.stats_snapshot();
            let mut packets = 0usize;
            let mut histogram: Vec<usize> = Vec::new();
            let mut p50_weighted = 0.0f64;
            let mut p99 = 0u64;
            let mut mean_weighted = 0.0f64;
            for tenant in &snapshot.tenants {
                packets += tenant.packets;
                if histogram.len() < tenant.verdict_histogram.len() {
                    histogram.resize(tenant.verdict_histogram.len(), 0);
                }
                for (bucket, &count) in tenant.verdict_histogram.iter().enumerate() {
                    histogram[bucket] += count;
                }
                p50_weighted += tenant.p50_ns as f64 * tenant.packets as f64;
                p99 = p99.max(tenant.p99_ns);
                mean_weighted += tenant.mean_ns * tenant.packets as f64;
            }
            let denom = (packets as f64).max(1.0);
            switches.push(SwitchStats {
                name: switch.name.clone(),
                role: switch.role,
                packets,
                verdict_histogram: histogram,
                p50_ns: (p50_weighted / denom) as u64,
                p99_ns: p99,
                mean_ns: mean_weighted / denom,
                forwarded: report.forwarded_rows[switch.id.index()],
                gated: report.gated_rows[switch.id.index()],
            });
        }

        let mut roles: Vec<RoleStats> = SwitchRole::ALL
            .into_iter()
            .map(|role| RoleStats {
                role,
                switches: 0,
                packets: 0,
                verdict_histogram: Vec::new(),
                forwarded: 0,
                gated: 0,
            })
            .collect();
        for stats in &switches {
            let role = &mut roles[stats.role.index()];
            role.switches += 1;
            role.packets += stats.packets;
            if role.verdict_histogram.len() < stats.verdict_histogram.len() {
                role.verdict_histogram
                    .resize(stats.verdict_histogram.len(), 0);
            }
            for (bucket, &count) in stats.verdict_histogram.iter().enumerate() {
                role.verdict_histogram[bucket] += count;
            }
            role.forwarded += stats.forwarded;
            role.gated += stats.gated;
        }
        roles.retain(|r| r.switches > 0);

        let total_packets = switches.iter().map(|s| s.packets).sum();
        let mut fleet_histogram: Vec<usize> = Vec::new();
        for stats in &switches {
            if fleet_histogram.len() < stats.verdict_histogram.len() {
                fleet_histogram.resize(stats.verdict_histogram.len(), 0);
            }
            for (bucket, &count) in stats.verdict_histogram.iter().enumerate() {
                fleet_histogram[bucket] += count;
            }
        }
        let edge_loads: Vec<f64> = switches
            .iter()
            .filter(|s| s.role == SwitchRole::Edge)
            .map(|s| s.packets as f64)
            .collect();
        FleetStats {
            switches,
            roles,
            total_packets,
            verdict_histogram: fleet_histogram,
            forwarded_rows: report.forwarded_rows.iter().sum(),
            gated_rows: report.gated_rows.iter().sum(),
            edge_fairness: jain_fairness(&edge_loads),
        }
    }

    /// Drains and shuts down every per-switch deployment. Dropping the
    /// fleet does the same implicitly; call this to make teardown
    /// explicit (e.g. before reading final stats in a bench).
    pub fn shutdown(&self) {
        for node in &self.nodes {
            node.deployment.drain();
            node.deployment.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use homunculus_backends::model::{DnnIr, ModelIr};
    use homunculus_ml::mlp::{Mlp, MlpArchitecture};

    fn dnn(seed: u64, inputs: usize) -> ModelIr {
        let arch = MlpArchitecture::new(inputs, vec![6], 2);
        ModelIr::Dnn(DnnIr::from_mlp(&Mlp::new(&arch, seed).unwrap()))
    }

    fn packets(rows: usize, cols: usize, salt: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            ((r * 31 + c * 7) as f32).sin() * 0.8 + salt
        })
    }

    fn small_fleet(workers: usize) -> Fleet {
        Fleet::builder(Topology::leaf_spine(3, 2).unwrap())
            .model("ad", &dnn(3, 4), FixedPoint::taurus_default(), None)
            .place_everywhere("ad")
            .workers(workers)
            .build()
            .unwrap()
    }

    fn small_flows() -> Vec<FlowSpec> {
        (0..6u64)
            .map(|f| {
                FlowSpec::new(
                    f,
                    SwitchId(f as usize % 3),
                    SwitchId((f as usize + 1) % 3),
                    packets(8, 4, f as f32 * 0.1),
                )
            })
            .collect()
    }

    #[test]
    fn run_delivers_and_checksums_deterministically() {
        let policy = RoutingPolicy::uniform(HopPolicy::forward("ad"));
        let flows = small_flows();
        let mut checksums = Vec::new();
        for workers in [1usize, 2, 4] {
            let fleet = small_fleet(workers);
            let report = fleet.run(&flows, &policy).unwrap();
            assert_eq!(report.flows.len(), flows.len());
            for outcome in &report.flows {
                assert_eq!(outcome.delivered, 8, "no gate configured");
                assert_eq!(outcome.gated, 0);
            }
            checksums.push(report.checksum());
            fleet.shutdown();
        }
        assert_eq!(checksums[0], checksums[1]);
        assert_eq!(checksums[1], checksums[2]);
    }

    #[test]
    fn checksum_is_submission_order_invariant() {
        let policy = RoutingPolicy::uniform(HopPolicy::forward("ad"));
        let mut flows = small_flows();
        let fleet = small_fleet(2);
        let forward = fleet.run(&flows, &policy).unwrap().checksum();
        flows.reverse();
        let reversed = fleet.run(&flows, &policy).unwrap().checksum();
        assert_eq!(forward, reversed);
    }

    #[test]
    fn gating_drops_and_accounts() {
        // A gate that drops class 0 and one that drops class 1 partition
        // the stream: together they gate everything the edge forwards.
        let fleet = small_fleet(2);
        let flows = small_flows();
        let gate0 = RoutingPolicy::uniform(HopPolicy::gate("ad", 0));
        let report = fleet.run(&flows, &gate0).unwrap();
        let stats = fleet.stats(&report);
        assert_eq!(
            stats.gated_rows + report.flows.iter().map(|f| f.delivered as u64).sum::<u64>(),
            48,
            "every packet is either gated somewhere or delivered"
        );
        for outcome in &report.flows {
            assert_eq!(outcome.gated + outcome.delivered, 8);
        }
    }

    #[test]
    fn unplaced_model_is_rejected_at_run() {
        let fleet = Fleet::builder(Topology::leaf_spine(2, 1).unwrap())
            .model("ad", &dnn(3, 4), FixedPoint::taurus_default(), None)
            .place(SwitchRole::Edge, "ad")
            .build()
            .unwrap();
        let flows = vec![FlowSpec::new(
            0,
            SwitchId(0),
            SwitchId(1),
            packets(2, 4, 0.0),
        )];
        let policy = RoutingPolicy::uniform(HopPolicy::forward("ad"));
        let err = fleet.run(&flows, &policy).unwrap_err();
        assert!(matches!(err, FleetError::Placement(_)), "{err}");
    }

    #[test]
    fn builder_rejects_unknown_placement() {
        let result = Fleet::builder(Topology::leaf_spine(2, 1).unwrap())
            .place_everywhere("missing")
            .build();
        match result {
            Err(FleetError::Placement(_)) => {}
            Err(other) => panic!("expected a placement error, got {other}"),
            Ok(_) => panic!("an unregistered placement must not build"),
        }
    }

    #[test]
    fn tagged_downstream_consumes_upstream_verdicts() {
        // Edge model takes 4 features; the spine model takes 5 — the
        // fifth is the edge verdict tag appended by the chained submit.
        let fleet = Fleet::builder(Topology::leaf_spine(2, 1).unwrap())
            .model("edge_ad", &dnn(3, 4), FixedPoint::taurus_default(), None)
            .model("spine_ad", &dnn(9, 5), FixedPoint::taurus_default(), None)
            .place(SwitchRole::Edge, "edge_ad")
            .place(SwitchRole::Core, "spine_ad")
            .workers(2)
            .build()
            .unwrap();
        let policy = RoutingPolicy::uniform(HopPolicy::forward("edge_ad"))
            .with_role(SwitchRole::Core, HopPolicy::forward("spine_ad"));
        let flows = vec![FlowSpec::new(
            9,
            SwitchId(0),
            SwitchId(1),
            packets(6, 4, 0.3),
        )];
        let report = fleet.run(&flows, &policy).unwrap();
        assert_eq!(report.flows[0].delivered, 6);
        assert_eq!(report.flows[0].hop_verdicts.len(), 3);
    }
}

//! The Bayesian-optimization driver loop.
//!
//! Mirrors the paper's HyperMapper setup (§5): a uniform random sampling
//! initialization phase (design of experiments), then iterations that
//! (1) fit the random-forest objective surrogate on feasible observations
//! and the feasibility classifier on all observations, (2) score a pool of
//! random + locally-perturbed candidates with `EI x P(feasible)`, and
//! (3) evaluate the winner against the true (expensive) objective — in
//! Homunculus, "evaluate" means *train the model and check it against the
//! platform's resource/performance budget*.

use crate::acquisition::Acquisition;
use crate::space::{Configuration, DesignSpace};
use crate::surrogate::{FeasibilitySurrogate, ObjectiveSurrogate};
use crate::{OptimizerError, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use serde_json::{json, ToJson, Value};
use std::collections::BTreeMap;

/// Control signal a [`BayesianOptimizer::run_with`] monitor returns after
/// every evaluation. The monitor is how callers *observe* the loop (each
/// [`EvaluatedPoint`] is handed over as soon as it exists) and how they
/// *cancel* it: returning [`SearchControl::Stop`] ends the search at the
/// current iteration boundary, and the truncated history — every point
/// evaluated so far, best-so-far included — is returned as `Ok`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchControl {
    /// Keep iterating.
    Continue,
    /// Stop at this iteration boundary and return the history so far.
    Stop,
}

/// The outcome of evaluating one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Objective value (maximized). Use NaN-free finite values.
    pub objective: f64,
    /// Whether every feasibility constraint was satisfied.
    pub is_feasible: bool,
    /// How badly constraints were violated (0.0 when feasible). Optional
    /// signal: while the history holds no feasible point, the search
    /// minimizes this instead of chasing the objective.
    pub violation: f64,
    /// Auxiliary metrics recorded for reports (resources, latency, ...).
    pub metrics: BTreeMap<String, f64>,
}

impl Evaluation {
    /// A feasible evaluation with the given objective.
    pub fn new(objective: f64) -> Self {
        Evaluation {
            objective,
            is_feasible: true,
            violation: 0.0,
            metrics: BTreeMap::new(),
        }
    }

    /// Sets feasibility.
    pub fn feasible(mut self, feasible: bool) -> Self {
        self.is_feasible = feasible;
        self
    }

    /// Records the constraint-violation magnitude (see [`Evaluation::violation`]).
    pub fn with_violation(mut self, violation: f64) -> Self {
        self.violation = violation.max(0.0);
        self
    }

    /// Records an auxiliary metric.
    pub fn with_metric<S: Into<String>>(mut self, name: S, value: f64) -> Self {
        self.metrics.insert(name.into(), value);
        self
    }
}

/// JSON document form: `{"objective", "is_feasible", "violation",
/// "metrics": {name: value}}` — the wire format behind portable compile
/// artifacts (the vendored `serde` derives are markers only; everything
/// the workspace persists goes through `serde_json::Value` explicitly).
impl ToJson for Evaluation {
    fn to_json(&self) -> Value {
        let mut metrics = serde_json::Map::new();
        for (name, value) in &self.metrics {
            metrics.insert(name.clone(), json!(*value));
        }
        json!({
            "objective": self.objective,
            "is_feasible": self.is_feasible,
            "violation": self.violation,
            "metrics": metrics,
        })
    }
}

impl Evaluation {
    /// Decodes the [`ToJson`] document form.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizerError::Decode`] on missing or mistyped fields.
    pub fn from_json(value: &Value) -> Result<Self> {
        let objective = value["objective"]
            .as_f64()
            .ok_or_else(|| OptimizerError::Decode("evaluation needs numeric objective".into()))?;
        let is_feasible = value["is_feasible"]
            .as_bool()
            .ok_or_else(|| OptimizerError::Decode("evaluation needs boolean is_feasible".into()))?;
        let violation = value["violation"]
            .as_f64()
            .ok_or_else(|| OptimizerError::Decode("evaluation needs numeric violation".into()))?;
        let mut metrics = BTreeMap::new();
        let map = value["metrics"]
            .as_object()
            .ok_or_else(|| OptimizerError::Decode("evaluation needs a metrics object".into()))?;
        for (name, metric) in map.iter() {
            let metric = metric.as_f64().ok_or_else(|| {
                OptimizerError::Decode(format!("metric '{name}' must be numeric"))
            })?;
            metrics.insert(name.clone(), metric);
        }
        Ok(Evaluation {
            objective,
            is_feasible,
            violation,
            metrics,
        })
    }
}

/// One record in the optimization history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluatedPoint {
    /// Iteration index (0-based; the DOE phase occupies the first indices).
    pub iteration: usize,
    /// The configuration that was evaluated.
    pub configuration: Configuration,
    /// Its outcome.
    pub evaluation: Evaluation,
}

/// JSON document form: `{"iteration", "configuration", "evaluation"}`.
impl ToJson for EvaluatedPoint {
    fn to_json(&self) -> Value {
        json!({
            "iteration": self.iteration,
            "configuration": self.configuration,
            "evaluation": self.evaluation,
        })
    }
}

impl EvaluatedPoint {
    /// Decodes the [`ToJson`] document form.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizerError::Decode`] on missing or mistyped fields.
    pub fn from_json(value: &Value) -> Result<Self> {
        let iteration = value["iteration"]
            .as_i64()
            .filter(|&i| i >= 0)
            .ok_or_else(|| OptimizerError::Decode("point needs an iteration index".into()))?;
        Ok(EvaluatedPoint {
            iteration: iteration as usize,
            configuration: Configuration::from_json(&value["configuration"])?,
            evaluation: Evaluation::from_json(&value["evaluation"])?,
        })
    }
}

/// The full optimization trace plus derived series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizationHistory {
    points: Vec<EvaluatedPoint>,
    doe_samples: usize,
}

/// JSON document form: `{"doe_samples", "points": [..]}`.
impl ToJson for OptimizationHistory {
    fn to_json(&self) -> Value {
        json!({
            "doe_samples": self.doe_samples,
            "points": self.points,
        })
    }
}

impl OptimizationHistory {
    /// Decodes the [`ToJson`] document form.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizerError::Decode`] on missing or mistyped fields,
    /// or a `doe_samples` count exceeding the number of points.
    pub fn from_json(value: &Value) -> Result<Self> {
        let doe_samples = value["doe_samples"]
            .as_i64()
            .filter(|&i| i >= 0)
            .ok_or_else(|| OptimizerError::Decode("history needs doe_samples".into()))?
            as usize;
        let points = value["points"]
            .as_array()
            .ok_or_else(|| OptimizerError::Decode("history needs a points array".into()))?
            .iter()
            .map(EvaluatedPoint::from_json)
            .collect::<Result<Vec<_>>>()?;
        if doe_samples > points.len() {
            return Err(OptimizerError::Decode(format!(
                "doe_samples {doe_samples} exceeds {} recorded points",
                points.len()
            )));
        }
        Ok(OptimizationHistory {
            points,
            doe_samples,
        })
    }

    /// All evaluated points, in evaluation order.
    pub fn points(&self) -> &[EvaluatedPoint] {
        &self.points
    }

    /// Number of points from the random-initialization phase.
    pub fn doe_samples(&self) -> usize {
        self.doe_samples
    }

    /// The best *feasible* point, if any.
    pub fn best(&self) -> Option<&EvaluatedPoint> {
        self.points
            .iter()
            .filter(|p| p.evaluation.is_feasible)
            .max_by(|a, b| {
                a.evaluation
                    .objective
                    .partial_cmp(&b.evaluation.objective)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// The best feasible point under an *efficiency* tie-break: among
    /// feasible points whose objective is within `tolerance` of the best,
    /// returns the one with the smallest `cost_metric` value.
    ///
    /// This implements the paper's §3 principle that "the most efficient
    /// model will use as many resources as needed *without
    /// over-provisioning*": a configuration that matches the best
    /// objective with fewer parameters/resources wins. Points without the
    /// metric recorded fall back to `f64::INFINITY` cost.
    pub fn best_efficient(&self, tolerance: f64, cost_metric: &str) -> Option<&EvaluatedPoint> {
        let best = self.best()?;
        let threshold = best.evaluation.objective - tolerance.abs();
        self.points
            .iter()
            .filter(|p| p.evaluation.is_feasible && p.evaluation.objective >= threshold)
            .min_by(|a, b| {
                let ca = a
                    .evaluation
                    .metrics
                    .get(cost_metric)
                    .copied()
                    .unwrap_or(f64::INFINITY);
                let cb = b
                    .evaluation
                    .metrics
                    .get(cost_metric)
                    .copied()
                    .unwrap_or(f64::INFINITY);
                ca.partial_cmp(&cb).unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// Objective of each iteration (the paper's Figure 4/7 "regret plot"
    /// series plots these raw per-iteration values).
    pub fn objective_series(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.evaluation.objective).collect()
    }

    /// Best-feasible-so-far objective after each iteration (NaN until the
    /// first feasible point).
    pub fn best_so_far_series(&self) -> Vec<f64> {
        let mut best = f64::NAN;
        self.points
            .iter()
            .map(|p| {
                if p.evaluation.is_feasible && (best.is_nan() || p.evaluation.objective > best) {
                    best = p.evaluation.objective;
                }
                best
            })
            .collect()
    }

    /// Fraction of evaluations that were feasible.
    pub fn feasible_fraction(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points
            .iter()
            .filter(|p| p.evaluation.is_feasible)
            .count() as f64
            / self.points.len() as f64
    }

    /// The set of feasible points not dominated in `(objective, metric)`
    /// space (both maximized after `metric_sign` is applied). Supports the
    /// paper's multi-objective framing where a second output (e.g.
    /// negative resource use) matters.
    pub fn pareto_front(&self, metric: &str, metric_sign: f64) -> Vec<&EvaluatedPoint> {
        let candidates: Vec<&EvaluatedPoint> = self
            .points
            .iter()
            .filter(|p| p.evaluation.is_feasible && p.evaluation.metrics.contains_key(metric))
            .collect();
        candidates
            .iter()
            .filter(|a| {
                let am = a.evaluation.metrics[metric] * metric_sign;
                !candidates.iter().any(|b| {
                    let bm = b.evaluation.metrics[metric] * metric_sign;
                    (b.evaluation.objective >= a.evaluation.objective && bm >= am)
                        && (b.evaluation.objective > a.evaluation.objective || bm > am)
                })
            })
            .copied()
            .collect()
    }
}

/// Options controlling the optimization loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizerOptions {
    /// Total evaluation budget (DOE + BO iterations).
    pub budget: usize,
    /// Random-initialization samples before BO starts.
    pub doe_samples: usize,
    /// Random candidates scored per BO iteration.
    pub candidate_pool: usize,
    /// Locally-perturbed candidates (around the incumbent) per iteration.
    pub local_candidates: usize,
    /// Acquisition criterion.
    pub acquisition: Acquisition,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OptimizerOptions {
    fn default() -> Self {
        OptimizerOptions {
            budget: 20,
            doe_samples: 5,
            candidate_pool: 200,
            local_candidates: 40,
            acquisition: Acquisition::default(),
            seed: 0,
        }
    }
}

impl OptimizerOptions {
    /// Sets the total evaluation budget.
    pub fn budget(mut self, budget: usize) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the number of random-initialization samples.
    pub fn doe_samples(mut self, doe: usize) -> Self {
        self.doe_samples = doe;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the acquisition criterion.
    pub fn acquisition(mut self, acquisition: Acquisition) -> Self {
        self.acquisition = acquisition;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.budget == 0 {
            return Err(OptimizerError::InvalidOptions(
                "budget must be positive".into(),
            ));
        }
        if self.doe_samples == 0 {
            return Err(OptimizerError::InvalidOptions(
                "doe_samples must be positive".into(),
            ));
        }
        if self.candidate_pool == 0 {
            return Err(OptimizerError::InvalidOptions(
                "candidate_pool must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// The constrained Bayesian optimizer.
///
/// See the crate-level example for usage.
#[derive(Debug, Clone)]
pub struct BayesianOptimizer {
    space: DesignSpace,
    options: OptimizerOptions,
}

impl BayesianOptimizer {
    /// Creates an optimizer over `space` with `options`.
    pub fn new(space: DesignSpace, options: OptimizerOptions) -> Self {
        BayesianOptimizer { space, options }
    }

    /// The design space being searched.
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }

    /// Runs the loop, calling `objective` once per evaluated configuration.
    ///
    /// # Errors
    ///
    /// - [`OptimizerError::InvalidSpace`] for an empty space.
    /// - [`OptimizerError::InvalidOptions`] for degenerate options.
    ///
    /// Note: a history with *no feasible point* is returned as `Ok` — the
    /// caller decides whether that is an error ([`OptimizationHistory::best`]
    /// returns `None`); this mirrors the paper's "no feasible solution
    /// exists" terminal state (§1).
    pub fn run<F>(&self, objective: F) -> Result<OptimizationHistory>
    where
        F: FnMut(&Configuration) -> Evaluation,
    {
        self.run_with(objective, |_| SearchControl::Continue)
    }

    /// [`run`](BayesianOptimizer::run) with a per-iteration monitor: after
    /// every evaluation the freshly-recorded [`EvaluatedPoint`] is handed
    /// to `monitor`, which returns [`SearchControl::Continue`] to keep
    /// going or [`SearchControl::Stop`] to end the search at this
    /// iteration boundary. A stopped search is **not** an error — the
    /// truncated history (best-so-far included) is returned as `Ok`, so
    /// cooperative cancellation always yields whatever was already paid
    /// for. The monitor never influences the RNG stream: a run whose
    /// monitor always continues is bit-identical to
    /// [`run`](BayesianOptimizer::run).
    ///
    /// # Errors
    ///
    /// As [`run`](BayesianOptimizer::run).
    pub fn run_with<F, M>(&self, mut objective: F, mut monitor: M) -> Result<OptimizationHistory>
    where
        F: FnMut(&Configuration) -> Evaluation,
        M: FnMut(&EvaluatedPoint) -> SearchControl,
    {
        self.validate_setup()?;
        let mut rng = StdRng::seed_from_u64(self.options.seed);
        self.drive(Vec::new(), &mut rng, &mut objective, &mut monitor)
    }

    /// Resumes a search from a (possibly truncated) recorded history —
    /// the checkpoint/resume half of the compile service: the prefix is
    /// **replayed, not re-evaluated**. The RNG is walked through exactly
    /// the draws the original run made (one [`DesignSpace::sample`] per
    /// DOE point, one suggestion per BO point — which also re-fits the
    /// surrogates, warm-starting them on the reloaded points), each
    /// regenerated configuration is verified against the recorded one,
    /// and the loop then continues from the next iteration. The combined
    /// history is **bit-identical** to an uninterrupted
    /// [`run_with`](BayesianOptimizer::run_with) under the same options,
    /// provided `objective` is deterministic.
    ///
    /// Resuming from an empty history is exactly
    /// [`run_with`](BayesianOptimizer::run_with); resuming from a
    /// complete one replays it and returns without calling `objective`.
    ///
    /// # Errors
    ///
    /// As [`run`](BayesianOptimizer::run), plus [`OptimizerError::Resume`]
    /// when the history does not belong to this optimizer: more points
    /// than the budget, inconsistent `doe_samples` or iteration indices,
    /// or a recorded configuration that disagrees with the replayed RNG
    /// stream (a seed, space, or options drift between save and resume).
    pub fn resume_with<F, M>(
        &self,
        from: &OptimizationHistory,
        mut objective: F,
        mut monitor: M,
    ) -> Result<OptimizationHistory>
    where
        F: FnMut(&Configuration) -> Evaluation,
        M: FnMut(&EvaluatedPoint) -> SearchControl,
    {
        self.validate_setup()?;
        let doe = self.options.doe_samples.min(self.options.budget);
        if from.points.len() > self.options.budget {
            return Err(OptimizerError::Resume(format!(
                "history has {} points but the budget is {}",
                from.points.len(),
                self.options.budget
            )));
        }
        if from.doe_samples != doe.min(from.points.len()) {
            return Err(OptimizerError::Resume(format!(
                "history records {} DOE samples where the options imply {}",
                from.doe_samples,
                doe.min(from.points.len())
            )));
        }

        let mut rng = StdRng::seed_from_u64(self.options.seed);
        let mut points: Vec<EvaluatedPoint> = Vec::with_capacity(self.options.budget);
        for (index, recorded) in from.points.iter().enumerate() {
            if recorded.iteration != index {
                return Err(OptimizerError::Resume(format!(
                    "history point {index} carries iteration {}",
                    recorded.iteration
                )));
            }
            let replayed = if index < doe {
                self.space.sample(&mut rng)
            } else {
                self.suggest(&points, &mut rng)?
            };
            if replayed != recorded.configuration {
                return Err(OptimizerError::Resume(format!(
                    "replayed configuration for iteration {index} disagrees with the record \
                     (seed, design space, or options changed since the checkpoint)"
                )));
            }
            points.push(recorded.clone());
        }
        self.drive(points, &mut rng, &mut objective, &mut monitor)
    }

    fn validate_setup(&self) -> Result<()> {
        if self.space.is_empty() {
            return Err(OptimizerError::InvalidSpace(
                "design space has no parameters".into(),
            ));
        }
        self.options.validate()
    }

    /// The shared evaluation loop: continues from however many `points`
    /// exist (zero for a fresh run, a replayed prefix for a resume) to
    /// the budget, drawing DOE samples below `doe_samples` and surrogate
    /// suggestions above it. `rng` must already be positioned after the
    /// draws that produced `points`.
    fn drive<F, M>(
        &self,
        mut points: Vec<EvaluatedPoint>,
        rng: &mut StdRng,
        objective: &mut F,
        monitor: &mut M,
    ) -> Result<OptimizationHistory>
    where
        F: FnMut(&Configuration) -> Evaluation,
        M: FnMut(&EvaluatedPoint) -> SearchControl,
    {
        let doe = self.options.doe_samples.min(self.options.budget);
        for iteration in points.len()..self.options.budget {
            // Phase 1 below doe_samples: uniform random initialization
            // (DOE). Phase 2 above it: BO iterations.
            let configuration = if iteration < doe {
                self.space.sample(rng)
            } else {
                self.suggest(&points, rng)?
            };
            let evaluation = objective(&configuration);
            points.push(EvaluatedPoint {
                iteration,
                configuration,
                evaluation,
            });
            if monitor(points.last().expect("just pushed")) == SearchControl::Stop {
                break;
            }
        }

        // A stop during DOE leaves fewer initialization points than
        // requested; the recorded count reflects what actually ran.
        let doe_samples = doe.min(points.len());
        Ok(OptimizationHistory {
            points,
            doe_samples,
        })
    }

    /// Proposes the next configuration given the history so far.
    fn suggest(&self, points: &[EvaluatedPoint], rng: &mut StdRng) -> Result<Configuration> {
        // Surrogate over *feasible* observations only. With no feasible
        // point yet the search is in a "phase 1" feasibility hunt: the
        // surrogate is fit on *negative violation magnitude* instead, so
        // EI walks downhill on constraint overshoot — the paper's
        // "subsequent iterations will recommend model configurations that
        // use less resources" (§3.2.2). (The feasibility classifier is
        // useless there: a single-class history degenerates to a constant.)
        let feasible_history: Vec<(Configuration, f64)> = points
            .iter()
            .filter(|p| p.evaluation.is_feasible)
            .map(|p| (p.configuration.clone(), p.evaluation.objective))
            .collect();
        let phase1 = feasible_history.is_empty();
        let objective_history: Vec<(Configuration, f64)> = if phase1 {
            points
                .iter()
                .map(|p| (p.configuration.clone(), -p.evaluation.violation))
                .collect()
        } else {
            feasible_history
        };
        let surrogate = ObjectiveSurrogate::fit(&objective_history, self.options.seed)?;

        // The classifier is only worth fitting once both classes exist; in
        // phase 1 the single-class history degenerates to a constant that
        // the scoring below would ignore anyway.
        let feasibility = if phase1 {
            None
        } else {
            let feasibility_history: Vec<(Configuration, bool)> = points
                .iter()
                .map(|p| (p.configuration.clone(), p.evaluation.is_feasible))
                .collect();
            Some(FeasibilitySurrogate::fit(
                &feasibility_history,
                self.options.seed,
            )?)
        };

        // The incumbent lives on the same scale the surrogate was fit on:
        // best feasible objective, or (phase 1) smallest observed violation.
        let incumbent = objective_history
            .iter()
            .map(|(_, y)| *y)
            .fold(f64::NEG_INFINITY, f64::max);

        // Candidate pool: global random + local perturbations of the best
        // point under the current goal (feasible best, or phase 1's
        // least-violating point — polishing near the boundary is how the
        // hunt crosses it).
        let mut candidates: Vec<Configuration> = (0..self.options.candidate_pool)
            .map(|_| self.space.sample(rng))
            .collect();
        let local_base = if phase1 {
            points.iter().min_by(|a, b| {
                a.evaluation
                    .violation
                    .partial_cmp(&b.evaluation.violation)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
        } else {
            points
                .iter()
                .filter(|p| p.evaluation.is_feasible)
                .max_by(|a, b| {
                    a.evaluation
                        .objective
                        .partial_cmp(&b.evaluation.objective)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
        };
        if let Some(best) = local_base {
            // Multi-scale exploitation: coarse moves escape the incumbent's
            // neighborhood, fine moves (1/5 and 1/25 width) polish it. A
            // single fixed width makes the endgame a random walk whose step
            // never shrinks below 10% of the range.
            const SCALES: [f64; 3] = [1.0, 0.2, 0.04];
            for i in 0..self.options.local_candidates {
                let scale = SCALES[i % SCALES.len()];
                candidates.push(self.space.perturb_scaled(&best.configuration, rng, scale));
            }
        }

        // Interleave exploitation: EI over an RF surrogate goes to zero in
        // the incumbent's neighborhood (pure leaves predict the incumbent
        // itself), so an EI-only endgame degenerates into random
        // exploration. Every fourth iteration greedily trusts the
        // surrogate mean instead — the SMAC-style interleaving used by
        // random-forest BO implementations.
        let exploit = points.len() % 4 == 3;
        let scored: Vec<(Configuration, f64, f64)> = candidates
            .into_iter()
            .map(|c| {
                let (mean, std) = surrogate.predict(&c);
                let probability = match &feasibility {
                    Some(model) => model.probability(&c),
                    None => 1.0,
                };
                let score = if exploit {
                    mean
                } else {
                    self.options.acquisition.score(mean, std, incumbent)
                };
                (c, score, probability)
            })
            .collect();
        // Shift scores to be nonnegative before feasibility weighting, so
        // a low feasibility probability always hurts (a negative score
        // times a small probability would otherwise *gain* rank). The
        // epsilon keeps the probability meaningful when the score
        // distribution is flat — with a plain shift a flat pool would
        // score 0.0 everywhere and the feasibility ranking would vanish.
        let (floor, ceiling) = scored
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), (_, s, _)| {
                (lo.min(*s), hi.max(*s))
            });
        let spread = ceiling - floor;
        let epsilon = if spread > 0.0 { spread * 1e-9 } else { 1.0 };
        let best_candidate = scored
            .into_iter()
            .map(|(c, score, probability)| (c, (score - floor + epsilon) * probability))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(c, _)| c)
            .expect("candidate pool is non-empty");
        Ok(best_candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Parameter;

    fn quadratic_space() -> DesignSpace {
        let mut s = DesignSpace::new("quadratic");
        s.add("x", Parameter::real(-10.0, 10.0)).unwrap();
        s
    }

    #[test]
    fn finds_quadratic_maximum() {
        // Maximize -(x-3)^2; optimum at x = 3.
        let history = BayesianOptimizer::new(
            quadratic_space(),
            OptimizerOptions::default().budget(40).seed(3),
        )
        .run(|c| {
            let x = c.real("x").unwrap();
            Evaluation::new(-(x - 3.0) * (x - 3.0))
        })
        .unwrap();
        let best = history.best().unwrap();
        let x = best.configuration.real("x").unwrap();
        assert!((x - 3.0).abs() < 1.5, "best x = {x}");
    }

    #[test]
    fn bo_beats_random_on_average() {
        // Same budget: BO's best should beat pure DOE's best typically.
        let mut bo_wins = 0;
        for seed in 0..5u64 {
            let f = |c: &Configuration| {
                let x = c.real("x").unwrap();
                Evaluation::new(-(x - 3.0) * (x - 3.0))
            };
            let bo = BayesianOptimizer::new(
                quadratic_space(),
                OptimizerOptions::default()
                    .budget(30)
                    .doe_samples(5)
                    .seed(seed),
            )
            .run(f)
            .unwrap();
            let random = BayesianOptimizer::new(
                quadratic_space(),
                OptimizerOptions::default()
                    .budget(30)
                    .doe_samples(30)
                    .seed(seed),
            )
            .run(f)
            .unwrap();
            if bo.best().unwrap().evaluation.objective
                >= random.best().unwrap().evaluation.objective
            {
                bo_wins += 1;
            }
        }
        assert!(bo_wins >= 3, "bo won only {bo_wins}/5");
    }

    #[test]
    fn respects_feasibility_constraints() {
        // Maximize x but only x <= 2 is feasible.
        let history = BayesianOptimizer::new(
            quadratic_space(),
            OptimizerOptions::default().budget(35).seed(5),
        )
        .run(|c| {
            let x = c.real("x").unwrap();
            Evaluation::new(x).feasible(x <= 2.0)
        })
        .unwrap();
        let best = history.best().unwrap();
        assert!(best.configuration.real("x").unwrap() <= 2.0);
        assert!(
            best.evaluation.objective > 0.0,
            "should approach the boundary"
        );
    }

    #[test]
    fn no_feasible_point_yields_none_best() {
        let history = BayesianOptimizer::new(
            quadratic_space(),
            OptimizerOptions::default().budget(8).seed(0),
        )
        .run(|c| Evaluation::new(c.real("x").unwrap()).feasible(false))
        .unwrap();
        assert!(history.best().is_none());
        assert_eq!(history.feasible_fraction(), 0.0);
    }

    #[test]
    fn history_series_shapes() {
        let history = BayesianOptimizer::new(
            quadratic_space(),
            OptimizerOptions::default()
                .budget(12)
                .doe_samples(4)
                .seed(1),
        )
        .run(|c| Evaluation::new(c.real("x").unwrap()))
        .unwrap();
        assert_eq!(history.points().len(), 12);
        assert_eq!(history.doe_samples(), 4);
        assert_eq!(history.objective_series().len(), 12);
        let best_series = history.best_so_far_series();
        assert_eq!(best_series.len(), 12);
        // best-so-far is monotonically non-decreasing.
        for w in best_series.windows(2) {
            assert!(w[1] >= w[0] || w[0].is_nan());
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            BayesianOptimizer::new(
                quadratic_space(),
                OptimizerOptions::default().budget(15).seed(seed),
            )
            .run(|c| Evaluation::new(-(c.real("x").unwrap()).abs()))
            .unwrap()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn run_with_stop_truncates_but_keeps_best_so_far() {
        let space = quadratic_space();
        let optimizer =
            BayesianOptimizer::new(space, OptimizerOptions::default().budget(20).doe_samples(5));
        // Stop after 7 evaluations (mid-BO phase).
        let history = optimizer
            .run_with(
                |c| Evaluation::new(-(c.real("x").unwrap()).abs()),
                |point| {
                    if point.iteration >= 6 {
                        SearchControl::Stop
                    } else {
                        SearchControl::Continue
                    }
                },
            )
            .unwrap();
        assert_eq!(history.points().len(), 7);
        assert_eq!(history.doe_samples(), 5);
        assert!(history.best().is_some(), "best-so-far survives the stop");

        // Stop during DOE: doe_samples reflects what actually ran.
        let history = optimizer
            .run_with(
                |c| Evaluation::new(c.real("x").unwrap()),
                |_| SearchControl::Stop,
            )
            .unwrap();
        assert_eq!(history.points().len(), 1);
        assert_eq!(history.doe_samples(), 1);
    }

    #[test]
    fn run_with_continue_is_bit_identical_to_run() {
        let space = quadratic_space();
        let optimizer =
            BayesianOptimizer::new(space, OptimizerOptions::default().budget(12).seed(9));
        let objective = |c: &Configuration| Evaluation::new(-(c.real("x").unwrap() - 2.0).abs());
        let plain = optimizer.run(objective).unwrap();
        let monitored = optimizer
            .run_with(objective, |_| SearchControl::Continue)
            .unwrap();
        assert_eq!(plain, monitored, "the monitor must never touch the RNG");
    }

    #[test]
    fn resume_from_truncated_history_is_bit_identical() {
        // Interrupt a search mid-BO-phase, round-trip the truncated
        // history through JSON (the checkpoint wire), resume — the result
        // must match the uninterrupted run bit for bit.
        let optimizer = BayesianOptimizer::new(
            quadratic_space(),
            OptimizerOptions::default()
                .budget(14)
                .doe_samples(4)
                .seed(11),
        );
        let objective = |c: &Configuration| {
            let x = c.real("x").unwrap();
            Evaluation::new(-(x - 3.0) * (x - 3.0)).feasible(x > -8.0)
        };
        let uninterrupted = optimizer.run(objective).unwrap();

        for stop_after in [2usize, 4, 7, 13] {
            let truncated = optimizer
                .run_with(objective, |point| {
                    if point.iteration + 1 >= stop_after {
                        SearchControl::Stop
                    } else {
                        SearchControl::Continue
                    }
                })
                .unwrap();
            assert_eq!(truncated.points().len(), stop_after);
            let text = serde_json::to_string(&truncated.to_json()).unwrap();
            let reloaded =
                OptimizationHistory::from_json(&serde_json::from_str(&text).unwrap()).unwrap();
            let mut new_evaluations = 0usize;
            let resumed = optimizer
                .resume_with(
                    &reloaded,
                    |c| {
                        new_evaluations += 1;
                        objective(c)
                    },
                    |_| SearchControl::Continue,
                )
                .unwrap();
            assert_eq!(
                resumed, uninterrupted,
                "stop_after={stop_after}: resumed history diverged"
            );
            assert_eq!(
                new_evaluations,
                14 - stop_after,
                "stop_after={stop_after}: replay must not re-evaluate the prefix"
            );
        }
    }

    #[test]
    fn resume_from_empty_and_complete_histories() {
        let optimizer = BayesianOptimizer::new(
            quadratic_space(),
            OptimizerOptions::default().budget(10).seed(5),
        );
        let objective = |c: &Configuration| Evaluation::new(-(c.real("x").unwrap()).abs());
        let full = optimizer.run(objective).unwrap();

        // Empty history: resume is exactly a fresh run.
        let empty = OptimizationHistory {
            points: Vec::new(),
            doe_samples: 0,
        };
        let from_scratch = optimizer
            .resume_with(&empty, objective, |_| SearchControl::Continue)
            .unwrap();
        assert_eq!(from_scratch, full);

        // Complete history: pure replay, the objective never runs.
        let resumed = optimizer
            .resume_with(
                &full,
                |_| panic!("complete history must not re-evaluate"),
                |_| SearchControl::Continue,
            )
            .unwrap();
        assert_eq!(resumed, full);
    }

    #[test]
    fn resume_rejects_foreign_histories() {
        let optimizer = BayesianOptimizer::new(
            quadratic_space(),
            OptimizerOptions::default().budget(8).doe_samples(3).seed(1),
        );
        let objective = |c: &Configuration| Evaluation::new(c.real("x").unwrap());
        let history = optimizer.run(objective).unwrap();

        // A different seed cannot replay this record.
        let reseeded = BayesianOptimizer::new(
            quadratic_space(),
            OptimizerOptions::default().budget(8).doe_samples(3).seed(2),
        );
        assert!(matches!(
            reseeded.resume_with(&history, objective, |_| SearchControl::Continue),
            Err(OptimizerError::Resume(_))
        ));

        // More points than the budget allows.
        let tiny = BayesianOptimizer::new(
            quadratic_space(),
            OptimizerOptions::default().budget(4).doe_samples(3).seed(1),
        );
        assert!(matches!(
            tiny.resume_with(&history, objective, |_| SearchControl::Continue),
            Err(OptimizerError::Resume(_))
        ));

        // Tampered bookkeeping: wrong doe_samples or iteration indices.
        let mut tampered = history.clone();
        tampered.doe_samples = 1;
        assert!(matches!(
            optimizer.resume_with(&tampered, objective, |_| SearchControl::Continue),
            Err(OptimizerError::Resume(_))
        ));
        let mut shuffled = history.clone();
        shuffled.points.swap(0, 1);
        assert!(matches!(
            optimizer.resume_with(&shuffled, objective, |_| SearchControl::Continue),
            Err(OptimizerError::Resume(_))
        ));
    }

    #[test]
    fn history_json_roundtrip_is_exact() {
        let history = BayesianOptimizer::new(
            quadratic_space(),
            OptimizerOptions::default().budget(10).seed(3),
        )
        .run(|c| {
            let x = c.real("x").unwrap();
            Evaluation::new(-(x * x))
                .feasible(x < 5.0)
                .with_violation(if x < 5.0 { 0.0 } else { x - 5.0 })
                .with_metric("params", x.abs() * 1e-7)
        })
        .unwrap();
        let text = serde_json::to_string(&history.to_json()).unwrap();
        let decoded =
            OptimizationHistory::from_json(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(history, decoded, "history drifted through JSON");
    }

    #[test]
    fn history_decode_rejects_malformed() {
        let bad = serde_json::from_str("{\"doe_samples\": 3, \"points\": []}").unwrap();
        assert!(matches!(
            OptimizationHistory::from_json(&bad),
            Err(OptimizerError::Decode(_))
        ));
        let bad = serde_json::from_str("{\"points\": []}").unwrap();
        assert!(OptimizationHistory::from_json(&bad).is_err());
        let bad = serde_json::from_str("[1, 2]").unwrap();
        assert!(Evaluation::from_json(&bad).is_err());
    }

    #[test]
    fn rejects_degenerate_setup() {
        let empty = DesignSpace::new("empty");
        let r = BayesianOptimizer::new(empty, OptimizerOptions::default())
            .run(|_| Evaluation::new(0.0));
        assert!(matches!(r, Err(OptimizerError::InvalidSpace(_))));

        let r = BayesianOptimizer::new(quadratic_space(), OptimizerOptions::default().budget(0))
            .run(|_| Evaluation::new(0.0));
        assert!(matches!(r, Err(OptimizerError::InvalidOptions(_))));
    }

    #[test]
    fn best_efficient_prefers_cheaper_near_ties() {
        let history = BayesianOptimizer::new(
            quadratic_space(),
            OptimizerOptions::default().budget(30).seed(6),
        )
        .run(|c| {
            let x = c.real("x").unwrap();
            // Objective saturates at 1.0 for |x| <= 5; cost = |x|.
            let objective = if x.abs() <= 5.0 { 1.0 } else { 0.0 };
            Evaluation::new(objective).with_metric("cost", x.abs())
        })
        .unwrap();
        let plain = history.best().unwrap();
        let efficient = history.best_efficient(0.01, "cost").unwrap();
        assert!(efficient.evaluation.metrics["cost"] <= plain.evaluation.metrics["cost"]);
        assert!(efficient.evaluation.objective >= plain.evaluation.objective - 0.01);
    }

    #[test]
    fn best_efficient_none_when_no_feasible() {
        let history = BayesianOptimizer::new(
            quadratic_space(),
            OptimizerOptions::default().budget(5).seed(0),
        )
        .run(|c| Evaluation::new(c.real("x").unwrap()).feasible(false))
        .unwrap();
        assert!(history.best_efficient(0.1, "cost").is_none());
    }

    #[test]
    fn pareto_front_filters_dominated() {
        let history = BayesianOptimizer::new(
            quadratic_space(),
            OptimizerOptions::default().budget(25).seed(2),
        )
        .run(|c| {
            let x = c.real("x").unwrap();
            // objective = x, resource = x^2 (want high x, low resource).
            Evaluation::new(x).with_metric("resource", x * x)
        })
        .unwrap();
        let front = history.pareto_front("resource", -1.0);
        assert!(!front.is_empty());
        // No front member may dominate another.
        for a in &front {
            for b in &front {
                if a.iteration == b.iteration {
                    continue;
                }
                let dominates = a.evaluation.objective >= b.evaluation.objective
                    && -a.evaluation.metrics["resource"] >= -b.evaluation.metrics["resource"]
                    && (a.evaluation.objective > b.evaluation.objective
                        || -a.evaluation.metrics["resource"] > -b.evaluation.metrics["resource"]);
                assert!(!dominates, "front member dominated another");
            }
        }
    }

    #[test]
    fn ucb_acquisition_also_works() {
        let history = BayesianOptimizer::new(
            quadratic_space(),
            OptimizerOptions::default()
                .budget(30)
                .seed(4)
                .acquisition(Acquisition::Ucb),
        )
        .run(|c| {
            let x = c.real("x").unwrap();
            Evaluation::new(-(x - 3.0) * (x - 3.0))
        })
        .unwrap();
        let x = history.best().unwrap().configuration.real("x").unwrap();
        assert!((x - 3.0).abs() < 2.5, "best x = {x}");
    }
}

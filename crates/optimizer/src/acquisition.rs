//! Acquisition functions for Bayesian optimization.
//!
//! The paper selects candidates with the **Expected Improvement**
//! criterion (§5, citing Mockus et al.). For constrained problems the EI
//! is weighted by the predicted probability of feasibility, which steers
//! the search away from configurations that would blow the resource or
//! latency budget — "subsequent iterations of the Bayesian optimization
//! will recommend model configurations that use less resources" (§3.2.2).

use serde::{Deserialize, Serialize};

/// Expected improvement of a Gaussian belief `(mean, std)` over the
/// incumbent `best`, for maximization, with exploration jitter `xi`.
///
/// With `std == 0` this degenerates to `max(mean - best - xi, 0)`.
pub fn expected_improvement(mean: f64, std: f64, best: f64, xi: f64) -> f64 {
    let improvement = mean - best - xi;
    if std <= 1e-12 {
        return improvement.max(0.0);
    }
    let z = improvement / std;
    improvement * normal_cdf(z) + std * normal_pdf(z)
}

/// Upper confidence bound `mean + beta * std` (exploration alternative).
pub fn upper_confidence_bound(mean: f64, std: f64, beta: f64) -> f64 {
    mean + beta * std
}

/// Standard normal probability density.
pub fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution (Abramowitz–Stegun erf).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Error function approximation (A&S 7.1.26, |error| < 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Which acquisition criterion the optimizer uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Acquisition {
    /// Expected Improvement with the given exploration jitter.
    #[default]
    ExpectedImprovement,
    /// Upper confidence bound with `beta = 2`.
    Ucb,
}

impl Acquisition {
    /// Scores a candidate belief against the incumbent.
    pub fn score(self, mean: f64, std: f64, best: f64) -> f64 {
        match self {
            Acquisition::ExpectedImprovement => expected_improvement(mean, std, best, 0.01),
            Acquisition::Ucb => upper_confidence_bound(mean, std, 2.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007).abs() < 1e-5);
        assert!((erf(-1.0) + 0.8427007).abs() < 1e-5);
        assert!((erf(3.0) - 0.9999779).abs() < 1e-5);
    }

    #[test]
    fn cdf_symmetry() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        for z in [0.3, 1.0, 2.5] {
            assert!((normal_cdf(z) + normal_cdf(-z) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn ei_zero_std_is_relu() {
        assert_eq!(expected_improvement(5.0, 0.0, 3.0, 0.0), 2.0);
        assert_eq!(expected_improvement(2.0, 0.0, 3.0, 0.0), 0.0);
    }

    #[test]
    fn ei_grows_with_uncertainty_below_incumbent() {
        // Mean below incumbent: only uncertainty can produce improvement.
        let low = expected_improvement(1.0, 0.1, 3.0, 0.0);
        let high = expected_improvement(1.0, 2.0, 3.0, 0.0);
        assert!(high > low);
    }

    #[test]
    fn ei_prefers_higher_mean_at_equal_std() {
        let worse = expected_improvement(2.0, 1.0, 3.0, 0.0);
        let better = expected_improvement(4.0, 1.0, 3.0, 0.0);
        assert!(better > worse);
    }

    #[test]
    fn acquisition_variants_score() {
        assert!(Acquisition::ExpectedImprovement.score(5.0, 1.0, 3.0) > 0.0);
        assert_eq!(Acquisition::Ucb.score(1.0, 2.0, 0.0), 5.0);
    }

    proptest! {
        #[test]
        fn prop_ei_nonnegative(mean in -10.0f64..10.0, std in 0.0f64..5.0, best in -10.0f64..10.0) {
            prop_assert!(expected_improvement(mean, std, best, 0.0) >= -1e-9);
        }

        #[test]
        fn prop_cdf_monotonic(a in -5.0f64..5.0, b in -5.0f64..5.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(normal_cdf(lo) <= normal_cdf(hi) + 1e-12);
        }

        #[test]
        fn prop_cdf_in_unit_interval(z in -8.0f64..8.0) {
            let c = normal_cdf(z);
            prop_assert!((0.0..=1.0).contains(&c));
        }
    }
}

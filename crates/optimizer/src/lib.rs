#![forbid(unsafe_code)]
//! # homunculus-optimizer
//!
//! A HyperMapper-style constrained Bayesian-optimization engine — the
//! *optimization core* substrate of the Homunculus reproduction (§3.2).
//!
//! The paper formulates design-space exploration as black-box optimization:
//! maximize a (noisy, expensive, derivative-free) objective `f: X -> R`
//! over a domain of real/integer/ordinal/categorical variables, subject to
//! *feasibility constraints* (resources, latency, throughput) that are only
//! observable by evaluating a candidate. Following the paper's setup (§5):
//!
//! - the surrogate model is a **random forest** (good with discrete
//!   parameters and non-continuous objectives),
//! - the acquisition criterion is **Expected Improvement**, weighted by the
//!   predicted **probability of feasibility** from a random-forest
//!   classifier trained on the observed constraint verdicts,
//! - search starts with a **uniform random sampling initialization phase**
//!   followed by Bayesian-optimization iterations.
//!
//! # Example
//!
//! ```
//! use homunculus_optimizer::space::{DesignSpace, Parameter};
//! use homunculus_optimizer::{BayesianOptimizer, Evaluation, OptimizerOptions};
//!
//! # fn main() -> Result<(), homunculus_optimizer::OptimizerError> {
//! let mut space = DesignSpace::new("toy");
//! space.add("x", Parameter::real(-5.0, 5.0))?;
//! space.add("n", Parameter::integer(1, 8))?;
//!
//! // Maximize -(x^2) + n, with n <= 6 feasible.
//! let history = BayesianOptimizer::new(space, OptimizerOptions::default().budget(30).seed(1))
//!     .run(|config| {
//!         let x = config.real("x").unwrap();
//!         let n = config.integer("n").unwrap() as f64;
//!         Evaluation::new(-(x * x) + n).feasible(n <= 6.0)
//!     })?;
//! let best = history.best().expect("feasible point found");
//! assert!(best.evaluation.objective > 2.0);
//! assert!(best.configuration.integer("n").unwrap() <= 6);
//! # Ok(())
//! # }
//! ```

pub mod acquisition;
pub mod space;
pub mod surrogate;

mod driver;

pub use driver::{
    BayesianOptimizer, EvaluatedPoint, Evaluation, OptimizationHistory, OptimizerOptions,
    SearchControl,
};

use std::error::Error;
use std::fmt;

/// Errors produced by the optimization engine.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimizerError {
    /// Invalid design-space definition.
    InvalidSpace(String),
    /// Invalid optimizer options.
    InvalidOptions(String),
    /// A configuration referenced an unknown parameter.
    UnknownParameter(String),
    /// The evaluation budget was exhausted without a feasible point.
    NoFeasiblePoint,
    /// A persisted history/configuration document failed to decode.
    Decode(String),
    /// A recorded history could not be resumed against this optimizer
    /// (budget, seed, design space, or options drifted since it was
    /// saved).
    Resume(String),
}

impl fmt::Display for OptimizerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizerError::InvalidSpace(msg) => write!(f, "invalid design space: {msg}"),
            OptimizerError::InvalidOptions(msg) => write!(f, "invalid options: {msg}"),
            OptimizerError::UnknownParameter(name) => write!(f, "unknown parameter: {name}"),
            OptimizerError::NoFeasiblePoint => write!(f, "no feasible point found within budget"),
            OptimizerError::Decode(msg) => write!(f, "history decode failed: {msg}"),
            OptimizerError::Resume(msg) => write!(f, "history resume failed: {msg}"),
        }
    }
}

impl Error for OptimizerError {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, OptimizerError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert_eq!(
            OptimizerError::NoFeasiblePoint.to_string(),
            "no feasible point found within budget"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OptimizerError>();
    }
}

//! Design spaces: named parameters with bounds, sampling, and encoding.
//!
//! The paper's design spaces mix variable kinds — "real (continuous),
//! integer, ordinal, or categorical as in \[HyperMapper\]" (§3.2.3). A
//! [`DesignSpace`] maps names to [`Parameter`]s; a [`Configuration`] is one
//! point of the space. Spaces also serialize to the HyperMapper JSON
//! configuration format, mirroring how the paper's implementation feeds
//! its design-space restrictions to HyperMapper (§4).

use crate::{OptimizerError, Result};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use serde_json::json;

/// One tunable parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Parameter {
    /// A real variable in `[low, high]`.
    Real {
        /// Inclusive lower bound.
        low: f64,
        /// Inclusive upper bound.
        high: f64,
    },
    /// An integer variable in `[low, high]`.
    Integer {
        /// Inclusive lower bound.
        low: i64,
        /// Inclusive upper bound.
        high: i64,
    },
    /// An ordered set of numeric levels (e.g. batch sizes 16/32/64).
    Ordinal {
        /// The levels, strictly increasing.
        levels: Vec<f64>,
    },
    /// An unordered set of options (e.g. activation functions).
    Categorical {
        /// The option names.
        options: Vec<String>,
    },
}

impl Parameter {
    /// A real parameter in `[low, high]`.
    pub fn real(low: f64, high: f64) -> Self {
        Parameter::Real { low, high }
    }

    /// An integer parameter in `[low, high]`.
    pub fn integer(low: i64, high: i64) -> Self {
        Parameter::Integer { low, high }
    }

    /// An ordinal parameter over the given increasing levels.
    pub fn ordinal(levels: Vec<f64>) -> Self {
        Parameter::Ordinal { levels }
    }

    /// A categorical parameter over the given options.
    pub fn categorical<S: Into<String>>(options: Vec<S>) -> Self {
        Parameter::Categorical {
            options: options.into_iter().map(Into::into).collect(),
        }
    }

    fn validate(&self, name: &str) -> Result<()> {
        match self {
            Parameter::Real { low, high } => {
                if !(low.is_finite() && high.is_finite() && low < high) {
                    return Err(OptimizerError::InvalidSpace(format!(
                        "real parameter '{name}' needs finite low < high (got {low}..{high})"
                    )));
                }
            }
            Parameter::Integer { low, high } => {
                if low > high {
                    return Err(OptimizerError::InvalidSpace(format!(
                        "integer parameter '{name}' needs low <= high (got {low}..{high})"
                    )));
                }
            }
            Parameter::Ordinal { levels } => {
                if levels.is_empty() {
                    return Err(OptimizerError::InvalidSpace(format!(
                        "ordinal parameter '{name}' needs at least one level"
                    )));
                }
                if levels.windows(2).any(|w| w[0] >= w[1]) {
                    return Err(OptimizerError::InvalidSpace(format!(
                        "ordinal parameter '{name}' levels must be strictly increasing"
                    )));
                }
            }
            Parameter::Categorical { options } => {
                if options.is_empty() {
                    return Err(OptimizerError::InvalidSpace(format!(
                        "categorical parameter '{name}' needs at least one option"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Uniform random value of this parameter.
    pub fn sample(&self, rng: &mut StdRng) -> ParamValue {
        match self {
            Parameter::Real { low, high } => ParamValue::Real(rng.gen_range(*low..=*high)),
            Parameter::Integer { low, high } => ParamValue::Integer(rng.gen_range(*low..=*high)),
            Parameter::Ordinal { levels } => {
                ParamValue::Ordinal(levels[rng.gen_range(0..levels.len())])
            }
            Parameter::Categorical { options } => {
                ParamValue::Categorical(rng.gen_range(0..options.len()))
            }
        }
    }

    /// Whether `value` is a member of this parameter's domain.
    pub fn contains(&self, value: &ParamValue) -> bool {
        match (self, value) {
            (Parameter::Real { low, high }, ParamValue::Real(v)) => (*low..=*high).contains(v),
            (Parameter::Integer { low, high }, ParamValue::Integer(v)) => {
                (*low..=*high).contains(v)
            }
            (Parameter::Ordinal { levels }, ParamValue::Ordinal(v)) => {
                levels.iter().any(|l| (l - v).abs() < 1e-12)
            }
            (Parameter::Categorical { options }, ParamValue::Categorical(i)) => *i < options.len(),
            _ => false,
        }
    }

    /// A neighbor of `value` for local-perturbation candidate generation.
    pub fn perturb(&self, value: &ParamValue, rng: &mut StdRng) -> ParamValue {
        self.perturb_scaled(value, rng, 1.0)
    }

    /// Like [`Parameter::perturb`] but with the step width scaled by
    /// `scale` (in `(0, 1]`). Small scales give fine-grained exploitation
    /// moves around an incumbent; the driver mixes several scales per
    /// iteration.
    pub fn perturb_scaled(&self, value: &ParamValue, rng: &mut StdRng, scale: f64) -> ParamValue {
        match (self, value) {
            (Parameter::Real { low, high }, ParamValue::Real(v)) => {
                let width = (high - low) * 0.1 * scale;
                let u: f64 = rng.gen_range(-1.0..1.0);
                ParamValue::Real((v + u * width).clamp(*low, *high))
            }
            (Parameter::Integer { low, high }, ParamValue::Integer(v)) => {
                let span = (((high - low) as f64 / 8.0 * scale).round() as i64).max(1);
                let delta = rng.gen_range(-span..=span);
                ParamValue::Integer((v + delta).clamp(*low, *high))
            }
            (Parameter::Ordinal { levels }, ParamValue::Ordinal(v)) => {
                let idx = levels
                    .iter()
                    .position(|l| (l - v).abs() < 1e-12)
                    .unwrap_or(0);
                let step: i64 = rng.gen_range(-1..=1);
                let new = (idx as i64 + step).clamp(0, levels.len() as i64 - 1) as usize;
                ParamValue::Ordinal(levels[new])
            }
            _ => self.sample(rng),
        }
    }
}

/// A concrete value of one parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamValue {
    /// Value of a real parameter.
    Real(f64),
    /// Value of an integer parameter.
    Integer(i64),
    /// Selected level of an ordinal parameter.
    Ordinal(f64),
    /// Selected option index of a categorical parameter.
    Categorical(usize),
}

/// JSON document form: a single-key object tagging the kind, e.g.
/// `{"real": 0.5}` or `{"categorical": 2}`.
impl serde_json::ToJson for ParamValue {
    fn to_json(&self) -> serde_json::Value {
        match self {
            ParamValue::Real(v) => json!({ "real": *v }),
            ParamValue::Integer(v) => json!({ "integer": *v }),
            ParamValue::Ordinal(v) => json!({ "ordinal": *v }),
            ParamValue::Categorical(i) => json!({ "categorical": *i }),
        }
    }
}

impl ParamValue {
    /// Decodes the [`serde_json::ToJson`] document form.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizerError::Decode`] for an unknown tag or a
    /// mistyped payload.
    pub fn from_json(value: &serde_json::Value) -> Result<Self> {
        let object = value
            .as_object()
            .filter(|o| o.len() == 1)
            .ok_or_else(|| OptimizerError::Decode("param value must be a one-key object".into()))?;
        let (kind, payload) = object.iter().next().expect("one entry");
        match kind.as_str() {
            "real" => payload.as_f64().map(ParamValue::Real),
            "integer" => payload.as_i64().map(ParamValue::Integer),
            "ordinal" => payload.as_f64().map(ParamValue::Ordinal),
            "categorical" => payload
                .as_i64()
                .filter(|&i| i >= 0)
                .map(|i| ParamValue::Categorical(i as usize)),
            _ => None,
        }
        .ok_or_else(|| OptimizerError::Decode(format!("bad param value kind '{kind}'")))
    }

    /// Numeric encoding used by the surrogate's feature vectors.
    pub fn encode(&self) -> f32 {
        match self {
            ParamValue::Real(v) => *v as f32,
            ParamValue::Integer(v) => *v as f32,
            ParamValue::Ordinal(v) => *v as f32,
            ParamValue::Categorical(i) => *i as f32,
        }
    }
}

/// A point in a design space: one value per parameter, in space order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Configuration {
    names: Vec<String>,
    values: Vec<ParamValue>,
}

/// JSON document form: `{"names": [..], "values": [..]}`, parallel
/// arrays in space order.
impl serde_json::ToJson for Configuration {
    fn to_json(&self) -> serde_json::Value {
        json!({ "names": self.names, "values": self.values })
    }
}

impl Configuration {
    pub(crate) fn new(names: Vec<String>, values: Vec<ParamValue>) -> Self {
        Configuration { names, values }
    }

    /// Decodes the [`serde_json::ToJson`] document form.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizerError::Decode`] on missing fields or
    /// names/values arrays of different lengths.
    pub fn from_json(value: &serde_json::Value) -> Result<Self> {
        let names = value["names"]
            .as_array()
            .ok_or_else(|| OptimizerError::Decode("configuration needs a names array".into()))?
            .iter()
            .map(|n| {
                n.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| OptimizerError::Decode("parameter names must be strings".into()))
            })
            .collect::<Result<Vec<_>>>()?;
        let values = value["values"]
            .as_array()
            .ok_or_else(|| OptimizerError::Decode("configuration needs a values array".into()))?
            .iter()
            .map(ParamValue::from_json)
            .collect::<Result<Vec<_>>>()?;
        if names.len() != values.len() {
            return Err(OptimizerError::Decode(format!(
                "configuration has {} names but {} values",
                names.len(),
                values.len()
            )));
        }
        Ok(Configuration { names, values })
    }

    /// The parameter names, in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The values, parallel to [`Configuration::names`].
    pub fn values(&self) -> &[ParamValue] {
        &self.values
    }

    /// Looks up a value by name.
    pub fn get(&self, name: &str) -> Option<&ParamValue> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| &self.values[i])
    }

    /// The value of a real parameter, if present and real.
    pub fn real(&self, name: &str) -> Option<f64> {
        match self.get(name) {
            Some(ParamValue::Real(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value of an integer parameter, if present and integer.
    pub fn integer(&self, name: &str) -> Option<i64> {
        match self.get(name) {
            Some(ParamValue::Integer(v)) => Some(*v),
            _ => None,
        }
    }

    /// The level of an ordinal parameter, if present and ordinal.
    pub fn ordinal(&self, name: &str) -> Option<f64> {
        match self.get(name) {
            Some(ParamValue::Ordinal(v)) => Some(*v),
            _ => None,
        }
    }

    /// The selected option index of a categorical parameter.
    pub fn categorical(&self, name: &str) -> Option<usize> {
        match self.get(name) {
            Some(ParamValue::Categorical(i)) => Some(*i),
            _ => None,
        }
    }

    /// Numeric feature vector for the surrogate model.
    pub fn encode(&self) -> Vec<f32> {
        self.values.iter().map(ParamValue::encode).collect()
    }
}

/// A named collection of parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignSpace {
    name: String,
    params: Vec<(String, Parameter)>,
}

impl DesignSpace {
    /// Creates an empty space with an application name (used in the
    /// HyperMapper JSON header).
    pub fn new<S: Into<String>>(name: S) -> Self {
        DesignSpace {
            name: name.into(),
            params: Vec::new(),
        }
    }

    /// The application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a parameter.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizerError::InvalidSpace`] on invalid bounds or a
    /// duplicate name.
    pub fn add<S: Into<String>>(&mut self, name: S, parameter: Parameter) -> Result<&mut Self> {
        let name = name.into();
        parameter.validate(&name)?;
        if self.params.iter().any(|(n, _)| *n == name) {
            return Err(OptimizerError::InvalidSpace(format!(
                "duplicate parameter '{name}'"
            )));
        }
        self.params.push((name, parameter));
        Ok(self)
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the space has no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Iterates over `(name, parameter)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Parameter)> {
        self.params.iter().map(|(n, p)| (n, p))
    }

    /// Uniform random configuration.
    pub fn sample(&self, rng: &mut StdRng) -> Configuration {
        let names = self.params.iter().map(|(n, _)| n.clone()).collect();
        let values = self.params.iter().map(|(_, p)| p.sample(rng)).collect();
        Configuration::new(names, values)
    }

    /// A local perturbation of `base` (each parameter nudged with
    /// probability 1/2, at least one always changed).
    pub fn perturb(&self, base: &Configuration, rng: &mut StdRng) -> Configuration {
        self.perturb_scaled(base, rng, 1.0)
    }

    /// Like [`DesignSpace::perturb`] with every parameter's step width
    /// scaled by `scale` (see [`Parameter::perturb_scaled`]).
    pub fn perturb_scaled(
        &self,
        base: &Configuration,
        rng: &mut StdRng,
        scale: f64,
    ) -> Configuration {
        let forced = rng.gen_range(0..self.params.len().max(1));
        let values = self
            .params
            .iter()
            .enumerate()
            .map(|(i, (_, p))| {
                if i == forced || rng.gen_bool(0.5) {
                    p.perturb_scaled(&base.values()[i], rng, scale)
                } else {
                    base.values()[i].clone()
                }
            })
            .collect();
        let names = self.params.iter().map(|(n, _)| n.clone()).collect();
        Configuration::new(names, values)
    }

    /// Whether `config` is a member of this space.
    pub fn contains(&self, config: &Configuration) -> bool {
        config.names()
            == self
                .params
                .iter()
                .map(|(n, _)| n.clone())
                .collect::<Vec<_>>()
            && self
                .params
                .iter()
                .zip(config.values())
                .all(|((_, p), v)| p.contains(v))
    }

    /// Serializes the space to the HyperMapper JSON configuration format
    /// (the file the paper's implementation feeds to HyperMapper, §4).
    pub fn to_hypermapper_json(&self) -> serde_json::Value {
        let mut params = serde_json::Map::new();
        for (name, p) in &self.params {
            let entry = match p {
                Parameter::Real { low, high } => json!({
                    "parameter_type": "real",
                    "values": [low, high],
                }),
                Parameter::Integer { low, high } => json!({
                    "parameter_type": "integer",
                    "values": [low, high],
                }),
                Parameter::Ordinal { levels } => json!({
                    "parameter_type": "ordinal",
                    "values": levels,
                }),
                Parameter::Categorical { options } => json!({
                    "parameter_type": "categorical",
                    "values": options,
                }),
            };
            params.insert(name.clone(), entry);
        }
        json!({
            "application_name": self.name,
            "optimization_objectives": ["objective"],
            "feasible_output": {
                "name": "feasible",
                "true_value": true,
                "false_value": false,
                "enable_feasible_predictor": true,
            },
            "models": { "model": "random_forest" },
            "input_parameters": params,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn space() -> DesignSpace {
        let mut s = DesignSpace::new("test");
        s.add("lr", Parameter::real(1e-4, 1e-1)).unwrap();
        s.add("layers", Parameter::integer(1, 10)).unwrap();
        s.add("batch", Parameter::ordinal(vec![16.0, 32.0, 64.0, 128.0]))
            .unwrap();
        s.add("act", Parameter::categorical(vec!["relu", "tanh"]))
            .unwrap();
        s
    }

    #[test]
    fn add_rejects_bad_definitions() {
        let mut s = DesignSpace::new("bad");
        assert!(s.add("x", Parameter::real(1.0, 1.0)).is_err());
        assert!(s.add("x", Parameter::real(f64::NAN, 1.0)).is_err());
        assert!(s.add("x", Parameter::integer(5, 2)).is_err());
        assert!(s.add("x", Parameter::ordinal(vec![])).is_err());
        assert!(s.add("x", Parameter::ordinal(vec![2.0, 1.0])).is_err());
        assert!(s
            .add("x", Parameter::categorical(Vec::<String>::new()))
            .is_err());
        s.add("x", Parameter::real(0.0, 1.0)).unwrap();
        assert!(s.add("x", Parameter::integer(0, 1)).is_err(), "duplicate");
    }

    #[test]
    fn samples_are_members() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            let c = s.sample(&mut rng);
            assert!(s.contains(&c), "{c:?}");
        }
    }

    #[test]
    fn accessors_typed() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(1);
        let c = s.sample(&mut rng);
        assert!(c.real("lr").is_some());
        assert!(c.integer("layers").is_some());
        assert!(c.ordinal("batch").is_some());
        assert!(c.categorical("act").is_some());
        assert!(c.real("layers").is_none(), "wrong kind yields None");
        assert!(c.get("nope").is_none());
    }

    #[test]
    fn encode_length_matches_params() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(s.sample(&mut rng).encode().len(), s.len());
    }

    #[test]
    fn perturbations_stay_in_space() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(3);
        let base = s.sample(&mut rng);
        for _ in 0..200 {
            let p = s.perturb(&base, &mut rng);
            assert!(s.contains(&p), "{p:?}");
        }
    }

    #[test]
    fn configuration_json_roundtrip_is_exact() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let c = s.sample(&mut rng);
            let text = serde_json::to_string(&serde_json::ToJson::to_json(&c)).unwrap();
            let decoded = Configuration::from_json(&serde_json::from_str(&text).unwrap()).unwrap();
            assert_eq!(c, decoded, "configuration drifted through JSON");
        }
    }

    #[test]
    fn configuration_decode_rejects_malformed() {
        let bad = serde_json::from_str("{\"names\": [\"a\"], \"values\": []}").unwrap();
        assert!(Configuration::from_json(&bad).is_err(), "length mismatch");
        let bad = serde_json::from_str(
            "{\"names\": [\"a\"], \"values\": [{\"real\": 1, \"integer\": 2}]}",
        )
        .unwrap();
        assert!(Configuration::from_json(&bad).is_err(), "two-key value");
        let bad =
            serde_json::from_str("{\"names\": [\"a\"], \"values\": [{\"complex\": 1}]}").unwrap();
        assert!(Configuration::from_json(&bad).is_err(), "unknown kind");
    }

    #[test]
    fn hypermapper_json_structure() {
        let s = space();
        let j = s.to_hypermapper_json();
        assert_eq!(j["application_name"], "test");
        assert_eq!(j["models"]["model"], "random_forest");
        assert_eq!(j["input_parameters"]["lr"]["parameter_type"], "real");
        assert_eq!(j["input_parameters"]["batch"]["parameter_type"], "ordinal");
        assert_eq!(
            j["feasible_output"]["enable_feasible_predictor"],
            serde_json::Value::Bool(true)
        );
    }

    proptest! {
        #[test]
        fn prop_real_samples_in_bounds(low in -100.0f64..0.0, width in 0.1f64..100.0, seed in 0u64..50) {
            let p = Parameter::real(low, low + width);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..20 {
                let v = p.sample(&mut rng);
                prop_assert!(p.contains(&v));
            }
        }

        #[test]
        fn prop_integer_perturb_in_bounds(low in -50i64..0, span in 1i64..100, seed in 0u64..50) {
            let p = Parameter::integer(low, low + span);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut v = p.sample(&mut rng);
            for _ in 0..50 {
                v = p.perturb(&v, &mut rng);
                prop_assert!(p.contains(&v));
            }
        }
    }
}

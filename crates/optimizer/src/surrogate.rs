//! Surrogate models over design-space configurations.
//!
//! The Bayesian loop never evaluates the expensive objective on a
//! candidate it hasn't chosen; instead it consults two cheap models fit to
//! the evaluation history:
//!
//! - [`ObjectiveSurrogate`] — a random-forest *regressor* predicting the
//!   objective with an uncertainty estimate (per-tree spread). The paper
//!   uses HyperMapper's random-forest surrogate because it handles the
//!   discrete, non-continuous design spaces of data-plane models well (§5).
//! - [`FeasibilitySurrogate`] — a random-forest *classifier* predicting
//!   the probability that a candidate satisfies all feasibility
//!   constraints (resources, latency, throughput), as in constrained
//!   Bayesian optimization.

use crate::space::Configuration;
use crate::{OptimizerError, Result};
use homunculus_ml::forest::{ForestConfig, RandomForestClassifier, RandomForestRegressor};
use homunculus_ml::tensor::Matrix;

/// Random-forest regression surrogate for the objective.
#[derive(Debug, Clone)]
pub struct ObjectiveSurrogate {
    forest: RandomForestRegressor,
}

impl ObjectiveSurrogate {
    /// Fits the surrogate to `(configuration, objective)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizerError::InvalidOptions`] when the history is empty
    /// or mismatched.
    pub fn fit(history: &[(Configuration, f64)], seed: u64) -> Result<Self> {
        if history.is_empty() {
            return Err(OptimizerError::InvalidOptions(
                "cannot fit surrogate on empty history".into(),
            ));
        }
        let rows: Vec<Vec<f32>> = history.iter().map(|(c, _)| c.encode()).collect();
        let targets: Vec<f32> = history.iter().map(|(_, y)| *y as f32).collect();
        let x =
            Matrix::from_rows(&rows).map_err(|e| OptimizerError::InvalidOptions(e.to_string()))?;
        let config = ForestConfig::default().n_trees(32).seed(seed);
        let forest = RandomForestRegressor::fit(&x, &targets, &config)
            .map_err(|e| OptimizerError::InvalidOptions(e.to_string()))?;
        Ok(ObjectiveSurrogate { forest })
    }

    /// Predicted mean and standard deviation for a candidate.
    pub fn predict(&self, candidate: &Configuration) -> (f64, f64) {
        let (mean, std) = self.forest.predict_mean_std(&candidate.encode());
        (mean as f64, std as f64)
    }
}

/// Random-forest classification surrogate for constraint feasibility.
#[derive(Debug, Clone)]
pub struct FeasibilitySurrogate {
    forest: Option<RandomForestClassifier>,
    /// Constant fallback when history is single-class.
    constant: Option<f64>,
}

impl FeasibilitySurrogate {
    /// Fits the surrogate to `(configuration, feasible)` pairs.
    ///
    /// If the history contains only one class (all feasible or all
    /// infeasible), the surrogate degenerates to that constant probability
    /// (a classifier cannot be fit).
    ///
    /// # Errors
    ///
    /// Returns [`OptimizerError::InvalidOptions`] on an empty history.
    pub fn fit(history: &[(Configuration, bool)], seed: u64) -> Result<Self> {
        if history.is_empty() {
            return Err(OptimizerError::InvalidOptions(
                "cannot fit feasibility model on empty history".into(),
            ));
        }
        let n_feasible = history.iter().filter(|(_, f)| *f).count();
        if n_feasible == 0 || n_feasible == history.len() {
            return Ok(FeasibilitySurrogate {
                forest: None,
                constant: Some(if n_feasible == 0 { 0.0 } else { 1.0 }),
            });
        }
        let rows: Vec<Vec<f32>> = history.iter().map(|(c, _)| c.encode()).collect();
        let labels: Vec<usize> = history.iter().map(|(_, f)| usize::from(*f)).collect();
        let x =
            Matrix::from_rows(&rows).map_err(|e| OptimizerError::InvalidOptions(e.to_string()))?;
        let config = ForestConfig::default().n_trees(24).seed(seed);
        let forest = RandomForestClassifier::fit(&x, &labels, 2, &config)
            .map_err(|e| OptimizerError::InvalidOptions(e.to_string()))?;
        Ok(FeasibilitySurrogate {
            forest: Some(forest),
            constant: None,
        })
    }

    /// Predicted probability that a candidate is feasible.
    pub fn probability(&self, candidate: &Configuration) -> f64 {
        if let Some(c) = self.constant {
            return c;
        }
        let forest = self.forest.as_ref().expect("either constant or forest");
        f64::from(forest.predict_proba_row(&candidate.encode())[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{DesignSpace, Parameter};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> DesignSpace {
        let mut s = DesignSpace::new("surrogate-test");
        s.add("x", Parameter::real(0.0, 10.0)).unwrap();
        s.add("n", Parameter::integer(0, 10)).unwrap();
        s
    }

    fn history(n: usize) -> Vec<(Configuration, f64)> {
        let s = space();
        let mut rng = StdRng::seed_from_u64(7);
        (0..n)
            .map(|_| {
                let c = s.sample(&mut rng);
                let y = c.real("x").unwrap() * 2.0 + c.integer("n").unwrap() as f64;
                (c, y)
            })
            .collect()
    }

    #[test]
    fn objective_surrogate_learns_trend() {
        let h = history(80);
        let sur = ObjectiveSurrogate::fit(&h, 0).unwrap();
        let s = space();
        let mut rng = StdRng::seed_from_u64(9);
        // Predictions should correlate with the true linear function.
        let mut num_correct_order = 0;
        let mut total = 0;
        for _ in 0..50 {
            let a = s.sample(&mut rng);
            let b = s.sample(&mut rng);
            let true_a = a.real("x").unwrap() * 2.0 + a.integer("n").unwrap() as f64;
            let true_b = b.real("x").unwrap() * 2.0 + b.integer("n").unwrap() as f64;
            if (true_a - true_b).abs() < 2.0 {
                continue;
            }
            let (pa, _) = sur.predict(&a);
            let (pb, _) = sur.predict(&b);
            total += 1;
            if (pa > pb) == (true_a > true_b) {
                num_correct_order += 1;
            }
        }
        assert!(
            num_correct_order as f64 >= total as f64 * 0.8,
            "ordering accuracy {num_correct_order}/{total}"
        );
    }

    #[test]
    fn objective_surrogate_rejects_empty() {
        assert!(ObjectiveSurrogate::fit(&[], 0).is_err());
    }

    #[test]
    fn feasibility_learns_boundary() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(11);
        let h: Vec<(Configuration, bool)> = (0..120)
            .map(|_| {
                let c = s.sample(&mut rng);
                let feasible = c.real("x").unwrap() < 5.0;
                (c, feasible)
            })
            .collect();
        let sur = FeasibilitySurrogate::fit(&h, 0).unwrap();
        let mut low = space().sample(&mut rng);
        // Construct clear points by sampling until x lands where we want.
        while low.real("x").unwrap() > 2.0 {
            low = s.sample(&mut rng);
        }
        let mut high = s.sample(&mut rng);
        while high.real("x").unwrap() < 8.0 {
            high = s.sample(&mut rng);
        }
        assert!(
            sur.probability(&low) > 0.6,
            "p(low) {}",
            sur.probability(&low)
        );
        assert!(
            sur.probability(&high) < 0.4,
            "p(high) {}",
            sur.probability(&high)
        );
    }

    #[test]
    fn feasibility_degenerates_to_constant() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(13);
        let all_good: Vec<(Configuration, bool)> =
            (0..10).map(|_| (s.sample(&mut rng), true)).collect();
        let sur = FeasibilitySurrogate::fit(&all_good, 0).unwrap();
        assert_eq!(sur.probability(&s.sample(&mut rng)), 1.0);

        let all_bad: Vec<(Configuration, bool)> =
            (0..10).map(|_| (s.sample(&mut rng), false)).collect();
        let sur = FeasibilitySurrogate::fit(&all_bad, 0).unwrap();
        assert_eq!(sur.probability(&s.sample(&mut rng)), 0.0);
    }
}

//! Training and scoring one candidate configuration (§3.2.4).
//!
//! Inside the BO loop, "the Keras ML framework is first delegated the
//! responsibility of the training process" — here that role is played by
//! `homunculus-ml`. A candidate configuration is decoded into a concrete
//! model, trained on the train split, scored on the test split with the
//! user's objective metric, and lowered to a [`ModelIr`] for feasibility
//! estimation.

use crate::alchemy::{Algorithm, Metric};
use crate::spaces::{decode_dnn_architecture, decode_dnn_training};
use crate::{CoreError, Result};
use homunculus_backends::model::{DnnIr, ForestIr, KMeansIr, ModelIr, SvmIr, TreeIr};
use homunculus_datasets::dataset::{Dataset, Normalizer, Split};
use homunculus_ml::forest::{ForestConfig, RandomForestClassifier};
use homunculus_ml::kmeans::{KMeans, KMeansConfig};
use homunculus_ml::metrics::{accuracy, f1_binary, f1_macro, v_measure};
use homunculus_ml::mlp::Mlp;
use homunculus_ml::svm::{LinearSvm, SvmConfig};
use homunculus_ml::tree::{DecisionTreeClassifier, TreeConfig};
use homunculus_optimizer::space::Configuration;

/// A trained, scored candidate.
#[derive(Debug, Clone)]
pub struct TrainedCandidate {
    /// The lowered model (with trained parameters).
    pub ir: ModelIr,
    /// Objective value on the held-out split (higher is better).
    pub objective: f64,
}

/// Objective slack treated as measurement noise throughout the compiler:
/// winner selection prefers the cheapest model within this margin of the
/// best objective, and the final retrain stops early once it lands within
/// it. The value sits at the noise floor of the objective estimate —
/// candidates are scored on a few-hundred-row held-out split, where an F1
/// reading carries a standard error of several percentage points, so a
/// sub-0.025 difference is not evidence that one model is actually better.
pub const EFFICIENCY_SLACK: f64 = 0.025;

/// Deterministic restarts attempted by [`retrain_winner`].
pub const FINAL_RESTARTS: u64 = 3;

/// Retrains a search winner with the final epoch budget — the compile
/// pipeline's *train* stage for one model.
///
/// Training is stochastic and an unlucky initialization can collapse into
/// a degenerate model (e.g. one-class predictions, F1 = 0) even for a
/// configuration that scored well during the search — so this takes the
/// best of [`FINAL_RESTARTS`] deterministic restarts, stopping early once
/// the retrain is within [`EFFICIENCY_SLACK`] of `search_objective` (the
/// score the configuration earned during the search). Each attempt is
/// reported through `on_attempt(restart, objective)` so session observers
/// see retraining progress as it happens.
///
/// # Errors
///
/// Propagates training and metric errors as [`CoreError::Subsystem`].
pub fn retrain_winner(
    algorithm: Algorithm,
    configuration: &Configuration,
    split: &Split,
    metric: Metric,
    options: &crate::pipeline::CompilerOptions,
    search_objective: f64,
    mut on_attempt: impl FnMut(u64, f64),
) -> Result<TrainedCandidate> {
    let mut trained: Option<TrainedCandidate> = None;
    for restart in 0..FINAL_RESTARTS {
        let final_budget = TrainBudget {
            epochs: options.final_epochs,
            seed: (options.seed ^ 0xF1A4).wrapping_add(restart.wrapping_mul(0x9E37_79B9)),
        };
        let attempt = train_candidate(algorithm, configuration, split, metric, final_budget)?;
        on_attempt(restart, attempt.objective);
        let good_enough = attempt.objective >= search_objective - EFFICIENCY_SLACK;
        let better = trained
            .as_ref()
            .map_or(true, |t| attempt.objective > t.objective);
        if better {
            trained = Some(attempt);
        }
        if good_enough {
            break;
        }
    }
    Ok(trained.expect("at least one final training restart ran"))
}

/// Scores predictions with the requested metric.
///
/// # Errors
///
/// Propagates metric computation errors.
pub fn score(metric: Metric, n_classes: usize, y_true: &[usize], y_pred: &[usize]) -> Result<f64> {
    let value = match metric {
        Metric::F1 => f1_binary(y_true, y_pred)?,
        Metric::MacroF1 => f1_macro(n_classes.max(2), y_true, y_pred)?,
        Metric::Accuracy => accuracy(y_true, y_pred)?,
        Metric::VMeasure => v_measure(y_true, y_pred)?.v_measure,
    };
    Ok(value)
}

/// Knobs the compiler passes down to training.
#[derive(Debug, Clone, Copy)]
pub struct TrainBudget {
    /// Epochs for DNN/SVM training.
    pub epochs: usize,
    /// Seed for weight init and shuffling.
    pub seed: u64,
}

/// Trains the model described by `(algorithm, config)` on `split` and
/// scores it with `metric`.
///
/// # Errors
///
/// Propagates training and metric errors as [`CoreError::Subsystem`].
pub fn train_candidate(
    algorithm: Algorithm,
    config: &Configuration,
    split: &Split,
    metric: Metric,
    budget: TrainBudget,
) -> Result<TrainedCandidate> {
    match algorithm {
        Algorithm::Dnn => train_dnn(config, split, metric, budget),
        Algorithm::Svm => train_svm(config, split, metric, budget),
        Algorithm::KMeans => train_kmeans(config, split, metric, budget),
        Algorithm::DecisionTree => train_tree(config, split, metric, budget),
        Algorithm::RandomForest => train_forest(config, split, metric, budget),
    }
}

fn train_dnn(
    config: &Configuration,
    split: &Split,
    metric: Metric,
    budget: TrainBudget,
) -> Result<TrainedCandidate> {
    let n_classes = split.train.n_classes();
    let arch = decode_dnn_architecture(config, split.train.n_features(), n_classes);
    let train_config = decode_dnn_training(config, budget.epochs, budget.seed);
    let mut net = Mlp::new(&arch, budget.seed)?;
    net.train(split.train.features(), split.train.labels(), &train_config)?;
    let pred = net.predict(split.test.features())?;
    let objective = score(metric, n_classes, split.test.labels(), &pred)?;
    Ok(TrainedCandidate {
        ir: ModelIr::Dnn(DnnIr::from_mlp(&net)),
        objective,
    })
}

fn train_svm(
    config: &Configuration,
    split: &Split,
    metric: Metric,
    budget: TrainBudget,
) -> Result<TrainedCandidate> {
    let n_classes = split.train.n_classes();
    let lambda = 10f64.powf(
        config
            .real("log10_lambda")
            .ok_or_else(|| CoreError::Subsystem("svm config missing log10_lambda".into()))?,
    ) as f32;
    let keep = config
        .integer("features")
        .ok_or_else(|| CoreError::Subsystem("svm config missing features".into()))?
        as usize;

    let svm_config = SvmConfig::default()
        .lambda(lambda)
        .epochs(budget.epochs.max(10))
        .seed(budget.seed);

    // First pass on all features to rank importance, then keep the top-k
    // (the paper: "Homunculus will try to remove less impactful features
    // until the SVM model fits", §4).
    let full = LinearSvm::fit(
        split.train.features(),
        split.train.labels(),
        n_classes,
        &svm_config,
    )?;
    let mut ranked: Vec<(usize, f32)> = full.feature_importance().into_iter().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut kept: Vec<usize> = ranked
        .iter()
        .take(keep.clamp(1, split.train.n_features()))
        .map(|(i, _)| *i)
        .collect();
    kept.sort_unstable();

    let train_x = split.train.features().select_cols(&kept);
    let test_x = split.test.features().select_cols(&kept);
    let model = LinearSvm::fit(&train_x, split.train.labels(), n_classes, &svm_config)?;
    let pred = model.predict(&test_x)?;
    let objective = score(metric, n_classes, split.test.labels(), &pred)?;
    Ok(TrainedCandidate {
        ir: ModelIr::Svm(SvmIr::from_svm(&model)),
        objective,
    })
}

fn train_kmeans(
    config: &Configuration,
    split: &Split,
    metric: Metric,
    budget: TrainBudget,
) -> Result<TrainedCandidate> {
    let k = config
        .integer("k")
        .ok_or_else(|| CoreError::Subsystem("kmeans config missing k".into()))?
        as usize;
    let k = k.clamp(1, split.train.len());
    // KMeans with k = 1 cannot be fit meaningfully against V-measure but
    // is a legal (degenerate) configuration: every packet lands in one
    // cluster (the Figure 7 K1 case).
    let model = KMeans::fit(
        split.train.features(),
        &KMeansConfig::new(k).seed(budget.seed),
    )?;
    let pred = model.predict(split.test.features());
    let objective = score(metric, split.train.n_classes(), split.test.labels(), &pred)?;
    Ok(TrainedCandidate {
        ir: ModelIr::KMeans(KMeansIr::from_kmeans(&model, split.train.n_features())),
        objective,
    })
}

fn train_tree(
    config: &Configuration,
    split: &Split,
    metric: Metric,
    budget: TrainBudget,
) -> Result<TrainedCandidate> {
    let n_classes = split.train.n_classes();
    let depth = config
        .integer("depth")
        .ok_or_else(|| CoreError::Subsystem("tree config missing depth".into()))?
        as usize;
    let min_leaf = config
        .integer("min_leaf")
        .ok_or_else(|| CoreError::Subsystem("tree config missing min_leaf".into()))?
        as usize;
    let tree_config = TreeConfig {
        max_depth: depth,
        min_samples_leaf: min_leaf,
        seed: budget.seed,
        ..TreeConfig::default()
    };
    let model = DecisionTreeClassifier::fit(
        split.train.features(),
        split.train.labels(),
        n_classes,
        &tree_config,
    )?;
    let pred = model.predict(split.test.features());
    let objective = score(metric, n_classes, split.test.labels(), &pred)?;
    Ok(TrainedCandidate {
        ir: ModelIr::Tree(TreeIr::from_tree(&model)),
        objective,
    })
}

fn train_forest(
    config: &Configuration,
    split: &Split,
    metric: Metric,
    budget: TrainBudget,
) -> Result<TrainedCandidate> {
    let n_classes = split.train.n_classes();
    let n_trees = config
        .integer("n_trees")
        .ok_or_else(|| CoreError::Subsystem("forest config missing n_trees".into()))?
        as usize;
    let depth = config
        .integer("depth")
        .ok_or_else(|| CoreError::Subsystem("forest config missing depth".into()))?
        as usize;
    let min_leaf = config
        .integer("min_leaf")
        .ok_or_else(|| CoreError::Subsystem("forest config missing min_leaf".into()))?
        as usize;
    let forest_config = ForestConfig {
        n_trees,
        tree: TreeConfig {
            max_depth: depth,
            min_samples_leaf: min_leaf,
            seed: budget.seed,
            ..TreeConfig::default()
        },
        sample_fraction: 1.0,
        seed: budget.seed,
    };
    let model = RandomForestClassifier::fit(
        split.train.features(),
        split.train.labels(),
        n_classes,
        &forest_config,
    )?;
    let pred = model.predict(split.test.features());
    let objective = score(metric, n_classes, split.test.labels(), &pred)?;
    Ok(TrainedCandidate {
        ir: ModelIr::Forest(ForestIr::from_forest(&model)),
        objective,
    })
}

/// Normalizes a dataset split (fit on train, apply to both) — the shared
/// preprocessing every candidate sees.
///
/// # Errors
///
/// Propagates dataset errors.
pub fn normalized_split(dataset: &Dataset, test_fraction: f64, seed: u64) -> Result<Split> {
    Ok(normalized_split_with(dataset, test_fraction, seed)?.0)
}

/// Like [`normalized_split`], but also returns the fitted normalizer so
/// deployment paths can preprocess fresh traffic identically.
///
/// # Errors
///
/// Propagates dataset errors.
pub fn normalized_split_with(
    dataset: &Dataset,
    test_fraction: f64,
    seed: u64,
) -> Result<(Split, Normalizer)> {
    let split = dataset.stratified_split(test_fraction, seed)?;
    let norm = split.train.fit_normalizer();
    Ok((
        Split {
            train: split.train.normalized(&norm)?,
            test: split.test.normalized(&norm)?,
        },
        norm,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alchemy::{ModelSpec, Platform};
    use crate::spaces::design_space_for;
    use homunculus_datasets::iot::IotTrafficGenerator;
    use homunculus_datasets::nslkdd::NslKddGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ad_split() -> Split {
        let ds = NslKddGenerator::new(1).generate(800);
        normalized_split(&ds, 0.3, 0).unwrap()
    }

    fn ad_spec() -> ModelSpec {
        ModelSpec::builder("ad")
            .data(NslKddGenerator::new(1).generate(200))
            .build()
            .unwrap()
    }

    const BUDGET: TrainBudget = TrainBudget {
        epochs: 10,
        seed: 0,
    };

    #[test]
    fn dnn_candidate_trains_and_scores() {
        let split = ad_split();
        let space = design_space_for(Algorithm::Dnn, &ad_spec(), &Platform::taurus()).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let config = space.sample(&mut rng);
        let c = train_candidate(Algorithm::Dnn, &config, &split, Metric::F1, BUDGET).unwrap();
        assert!((0.0..=1.0).contains(&c.objective));
        assert!(matches!(c.ir, ModelIr::Dnn(ref d) if d.params.is_some()));
    }

    #[test]
    fn svm_candidate_respects_feature_budget() {
        let split = ad_split();
        let space = design_space_for(Algorithm::Svm, &ad_spec(), &Platform::tofino()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5 {
            let config = space.sample(&mut rng);
            let keep = config.integer("features").unwrap() as usize;
            let c = train_candidate(Algorithm::Svm, &config, &split, Metric::F1, BUDGET).unwrap();
            match &c.ir {
                ModelIr::Svm(svm) => assert_eq!(svm.n_features, keep),
                other => panic!("expected svm ir, got {other:?}"),
            }
        }
    }

    #[test]
    fn kmeans_candidate_scores_vmeasure() {
        let ds = IotTrafficGenerator::new(2).generate(600);
        let split = normalized_split(&ds, 0.3, 0).unwrap();
        let spec = ModelSpec::builder("tc")
            .optimization_metric(Metric::VMeasure)
            .data(IotTrafficGenerator::new(2).generate(100))
            .build()
            .unwrap();
        let space = design_space_for(Algorithm::KMeans, &spec, &Platform::tofino()).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let config = space.sample(&mut rng);
        let c =
            train_candidate(Algorithm::KMeans, &config, &split, Metric::VMeasure, BUDGET).unwrap();
        assert!((0.0..=1.0).contains(&c.objective));
    }

    #[test]
    fn tree_candidate_bounded_depth() {
        let split = ad_split();
        let space =
            design_space_for(Algorithm::DecisionTree, &ad_spec(), &Platform::taurus()).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let config = space.sample(&mut rng);
        let depth_cap = config.integer("depth").unwrap() as usize;
        let c =
            train_candidate(Algorithm::DecisionTree, &config, &split, Metric::F1, BUDGET).unwrap();
        match &c.ir {
            ModelIr::Tree(t) => assert!(t.depth <= depth_cap.max(1)),
            other => panic!("expected tree ir, got {other:?}"),
        }
    }

    #[test]
    fn forest_candidate_bounded_shape() {
        let split = ad_split();
        let space =
            design_space_for(Algorithm::RandomForest, &ad_spec(), &Platform::taurus()).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let config = space.sample(&mut rng);
        let n_trees = config.integer("n_trees").unwrap() as usize;
        let depth_cap = config.integer("depth").unwrap() as usize;
        let c =
            train_candidate(Algorithm::RandomForest, &config, &split, Metric::F1, BUDGET).unwrap();
        assert!((0.0..=1.0).contains(&c.objective));
        match &c.ir {
            ModelIr::Forest(f) => {
                assert_eq!(f.trees.len(), n_trees);
                assert!(f.depth() <= depth_cap.max(1));
            }
            other => panic!("expected forest ir, got {other:?}"),
        }
    }

    #[test]
    fn score_dispatches_metrics() {
        let t = [0, 1, 0, 1];
        let p = [0, 1, 0, 0];
        assert!(score(Metric::F1, 2, &t, &p).unwrap() > 0.0);
        assert!(score(Metric::MacroF1, 2, &t, &p).unwrap() > 0.0);
        assert_eq!(score(Metric::Accuracy, 2, &t, &t).unwrap(), 1.0);
        assert_eq!(score(Metric::VMeasure, 2, &t, &t).unwrap(), 1.0);
    }

    #[test]
    fn better_architectures_score_better_on_average() {
        // Sanity for the whole Table 2 premise: a wider/deeper candidate
        // should beat a minimal one on the AD task more often than not.
        let split = ad_split();
        let space = design_space_for(Algorithm::Dnn, &ad_spec(), &Platform::taurus()).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        // Collect a few tiny and large configurations by rejection
        // sampling; any single draw can carry a pathological learning
        // rate, so the claim is only about the class averages.
        const PER_CLASS: usize = 3;
        let mut tiny = Vec::new();
        let mut large = Vec::new();
        for _ in 0..6_000 {
            let c = space.sample(&mut rng);
            let width = c.integer("width").unwrap();
            let layers = c.integer("n_layers").unwrap();
            if width <= 4 && layers == 1 && tiny.len() < PER_CLASS {
                tiny.push(c.clone());
            }
            if width >= 20 && (2..=4).contains(&layers) && large.len() < PER_CLASS {
                large.push(c.clone());
            }
            if tiny.len() == PER_CLASS && large.len() == PER_CLASS {
                break;
            }
        }
        assert_eq!(tiny.len(), PER_CLASS, "tiny configs found");
        assert_eq!(large.len(), PER_CLASS, "large configs found");
        let budget = TrainBudget {
            epochs: 20,
            seed: 0,
        };
        let mean = |configs: &[Configuration]| -> f64 {
            configs
                .iter()
                .map(|c| {
                    train_candidate(Algorithm::Dnn, c, &split, Metric::F1, budget)
                        .unwrap()
                        .objective
                })
                .sum::<f64>()
                / configs.len() as f64
        };
        let t = mean(&tiny);
        let l = mean(&large);
        assert!(
            l > t - 0.05,
            "large mean {l} should not lose badly to tiny mean {t}"
        );
    }
}

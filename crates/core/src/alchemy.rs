//! The Alchemy DSL: Homunculus's declarative frontend (§3.1).
//!
//! The paper embeds Alchemy in Python; this crate embeds it in Rust with
//! the same constructs (Table 1 of the paper):
//!
//! | Paper construct | Rust equivalent |
//! |---|---|
//! | `Model({...})` | [`ModelSpec::builder`] |
//! | `@DataLoader` | [`DataLoader`] trait / [`ModelSpecBuilder::data_loader`] |
//! | `Platforms.Taurus()` | [`Platform::taurus`] |
//! | `platform.constrain(...)` | [`Platform::constraints_mut`] + [`ConstraintSpec`] |
//! | `mdl1 > mdl2` (sequential) | `spec1 >> spec2` ([`std::ops::Shr`]) |
//! | `mdl1 \| mdl2` (parallel) | `spec1 \| spec2` ([`std::ops::BitOr`]) |
//! | `IOMap(mapper_func)` / `@IOMapper` | [`IoMap`] |
//! | `homunculus.generate(platform)` | [`crate::generate`] |

use crate::schedule::ScheduleExpr;
use crate::{CoreError, Result};
use homunculus_backends::fpga::FpgaTarget;
use homunculus_backends::resources::Constraints;
use homunculus_backends::target::Target;
use homunculus_backends::taurus::TaurusTarget;
use homunculus_backends::tofino::TofinoTarget;
use homunculus_datasets::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// The objective metric a model is optimized for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Metric {
    /// Binary F1 with class 1 positive (AD/BD applications).
    #[default]
    F1,
    /// Macro-averaged F1 (multi-class TC application).
    MacroF1,
    /// Plain accuracy.
    Accuracy,
    /// V-measure of a clustering against labels (Figure 7).
    VMeasure,
}

impl Metric {
    /// Lowercase metric name as used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Metric::F1 => "f1",
            Metric::MacroF1 => "macro_f1",
            Metric::Accuracy => "accuracy",
            Metric::VMeasure => "v_measure",
        }
    }

    /// The inverse of [`Metric::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "f1" => Some(Metric::F1),
            "macro_f1" => Some(Metric::MacroF1),
            "accuracy" => Some(Metric::Accuracy),
            "v_measure" => Some(Metric::VMeasure),
            _ => None,
        }
    }
}

/// ML algorithm families the search may draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Deep neural network (MLP).
    Dnn,
    /// Linear SVM.
    Svm,
    /// KMeans clustering.
    KMeans,
    /// CART decision tree.
    DecisionTree,
    /// Bagged random forest (majority vote over CART trees).
    RandomForest,
}

impl Algorithm {
    /// The *default* candidate set, in preference order — what a
    /// [`ModelSpec`] with no explicit algorithm list searches over.
    ///
    /// Random forests are deliberately **not** here: adding a family to
    /// the default set would shift every BO RNG stream and silently
    /// change long-pinned golden artifacts. Forests join a search only
    /// when the spec opts in via
    /// [`ModelSpecBuilder::algorithm`]`(Algorithm::RandomForest)`.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Dnn,
        Algorithm::Svm,
        Algorithm::DecisionTree,
        Algorithm::KMeans,
    ];

    /// Every family the compiler can search, train, and lower —
    /// [`ALL`](Algorithm::ALL) plus the opt-in random forest. Name
    /// decoding (checkpoints, artifacts) resolves over this set.
    pub const EXTENDED: [Algorithm; 5] = [
        Algorithm::Dnn,
        Algorithm::Svm,
        Algorithm::DecisionTree,
        Algorithm::KMeans,
        Algorithm::RandomForest,
    ];

    /// Lowercase name as used in Alchemy programs and reports.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Dnn => "dnn",
            Algorithm::Svm => "svm",
            Algorithm::KMeans => "kmeans",
            Algorithm::DecisionTree => "decision_tree",
            Algorithm::RandomForest => "random_forest",
        }
    }

    /// The inverse of [`Algorithm::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Algorithm::EXTENDED.into_iter().find(|a| a.name() == name)
    }
}

/// A source of labeled training data (the paper's `@DataLoader`).
///
/// Implement this for custom loaders; in-memory datasets are wrapped
/// automatically by [`ModelSpecBuilder::data`].
pub trait DataLoader: Send + Sync {
    /// Loads (or produces) the dataset.
    ///
    /// # Errors
    ///
    /// Returns a dataset error if loading fails.
    fn load(&self) -> homunculus_datasets::Result<Dataset>;
}

impl<F> DataLoader for F
where
    F: Fn() -> homunculus_datasets::Result<Dataset> + Send + Sync,
{
    fn load(&self) -> homunculus_datasets::Result<Dataset> {
        self()
    }
}

/// A user's intent for one data-plane model: objectives + data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Application name (becomes the generated pipeline name).
    pub name: String,
    /// Objective metric to maximize.
    pub optimization_metric: Metric,
    /// Algorithms to search (empty = let Homunculus pick from all).
    pub algorithms: Vec<Algorithm>,
    /// The training data.
    pub dataset: Dataset,
    /// Held-out fraction used to score candidates.
    pub test_fraction: f64,
}

impl ModelSpec {
    /// Starts building a model spec.
    pub fn builder<S: Into<String>>(name: S) -> ModelSpecBuilder {
        ModelSpecBuilder {
            name: name.into(),
            optimization_metric: Metric::default(),
            algorithms: Vec::new(),
            dataset: None,
            test_fraction: 0.3,
        }
    }
}

/// Builder for [`ModelSpec`] (the Alchemy `Model({...})` construct).
#[derive(Debug, Clone)]
pub struct ModelSpecBuilder {
    name: String,
    optimization_metric: Metric,
    algorithms: Vec<Algorithm>,
    dataset: Option<Dataset>,
    test_fraction: f64,
}

impl ModelSpecBuilder {
    /// Sets the objective metric.
    pub fn optimization_metric(mut self, metric: Metric) -> Self {
        self.optimization_metric = metric;
        self
    }

    /// Restricts the search to one algorithm (may be called repeatedly).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithms.push(algorithm);
        self
    }

    /// Supplies the dataset directly.
    pub fn data(mut self, dataset: Dataset) -> Self {
        self.dataset = Some(dataset);
        self
    }

    /// Supplies the dataset through a loader (the `@DataLoader` form).
    ///
    /// # Errors
    ///
    /// Propagates loader failures as [`CoreError::Subsystem`].
    pub fn data_loader<L: DataLoader>(mut self, loader: &L) -> Result<Self> {
        self.dataset = Some(loader.load()?);
        Ok(self)
    }

    /// Sets the held-out test fraction (default 0.3).
    pub fn test_fraction(mut self, fraction: f64) -> Self {
        self.test_fraction = fraction;
        self
    }

    /// Finishes the build.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidProgram`] when the name is empty, the
    /// dataset is missing/empty, or the test fraction is degenerate.
    pub fn build(self) -> Result<ModelSpec> {
        if self.name.is_empty() {
            return Err(CoreError::InvalidProgram("model name is empty".into()));
        }
        let dataset = self.dataset.ok_or_else(|| {
            CoreError::InvalidProgram(format!("model '{}' has no dataset", self.name))
        })?;
        if dataset.is_empty() {
            return Err(CoreError::InvalidProgram(format!(
                "model '{}' has an empty dataset",
                self.name
            )));
        }
        if !(0.0 < self.test_fraction && self.test_fraction < 1.0) {
            return Err(CoreError::InvalidProgram(format!(
                "test fraction must be in (0, 1), got {}",
                self.test_fraction
            )));
        }
        Ok(ModelSpec {
            name: self.name,
            optimization_metric: self.optimization_metric,
            algorithms: self.algorithms,
            dataset,
            test_fraction: self.test_fraction,
        })
    }
}

/// Connects model outputs to model inputs (and the outside world) in a
/// multi-model schedule — the paper's `IOMap`/`@IOMapper` constructs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct IoMap {
    connections: Vec<(String, String)>,
}

impl IoMap {
    /// An empty mapping (each model reads the packet directly).
    pub fn new() -> Self {
        IoMap::default()
    }

    /// Connects `from` (e.g. `"ad.class"`) to `to` (e.g. `"mitigator.in"`).
    pub fn connect<S: Into<String>, T: Into<String>>(mut self, from: S, to: T) -> Self {
        self.connections.push((from.into(), to.into()));
        self
    }

    /// The configured connections.
    pub fn connections(&self) -> &[(String, String)] {
        &self.connections
    }

    /// Validates that every referenced model exists in `model_names`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidProgram`] for unknown endpoints.
    pub fn validate(&self, model_names: &[&str]) -> Result<()> {
        for (from, to) in &self.connections {
            for endpoint in [from, to] {
                let model = endpoint.split('.').next().unwrap_or(endpoint);
                if !model_names.contains(&model) && model != "world" {
                    return Err(CoreError::InvalidProgram(format!(
                        "iomap references unknown model '{model}'"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// The backend device a platform wraps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlatformTarget {
    /// Taurus MapReduce switch.
    Taurus(TaurusTarget),
    /// Tofino MAT pipeline.
    Tofino(TofinoTarget),
    /// FPGA NIC (P4-SDNet flow).
    Fpga(FpgaTarget),
}

impl PlatformTarget {
    /// Borrows the target as the object-safe [`Target`] trait.
    pub fn as_target(&self) -> &dyn Target {
        match self {
            PlatformTarget::Taurus(t) => t,
            PlatformTarget::Tofino(t) => t,
            PlatformTarget::Fpga(t) => t,
        }
    }
}

/// Constraint clause under construction (the `platform.constrain(...)`
/// form of Figure 3).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ConstraintSpec {
    /// Minimum throughput in GPkt/s.
    pub throughput_gpps: Option<f64>,
    /// Maximum latency in ns.
    pub latency_ns: Option<f64>,
    /// Taurus grid rows override.
    pub grid_rows: Option<usize>,
    /// Taurus grid cols override.
    pub grid_cols: Option<usize>,
    /// Tofino MAT budget override.
    pub mats: Option<usize>,
}

impl ConstraintSpec {
    /// Requires at least this throughput (GPkt/s).
    pub fn throughput_gpps(&mut self, gpps: f64) -> &mut Self {
        self.throughput_gpps = Some(gpps);
        self
    }

    /// Allows at most this latency (ns).
    pub fn latency_ns(&mut self, ns: f64) -> &mut Self {
        self.latency_ns = Some(ns);
        self
    }

    /// Constrains the Taurus grid shape (Figure 3: `"rows": 16, "cols": 16`).
    pub fn grid(&mut self, rows: usize, cols: usize) -> &mut Self {
        self.grid_rows = Some(rows);
        self.grid_cols = Some(cols);
        self
    }

    /// Constrains the MAT budget (the Figure 7 sweep).
    pub fn mats(&mut self, mats: usize) -> &mut Self {
        self.mats = Some(mats);
        self
    }
}

/// A physical device instance plus its constraints and scheduled models —
/// the Alchemy `Platforms` construct.
#[derive(Debug, Clone)]
pub struct Platform {
    target: PlatformTarget,
    constraints: ConstraintSpec,
    schedule: Option<ScheduleExpr>,
    iomap: IoMap,
}

impl Platform {
    /// A Taurus switch (default 16x16 grid).
    pub fn taurus() -> Self {
        Platform {
            target: PlatformTarget::Taurus(TaurusTarget::default()),
            constraints: ConstraintSpec::default(),
            schedule: None,
            iomap: IoMap::new(),
        }
    }

    /// A Tofino switch (default 32-MAT budget).
    pub fn tofino() -> Self {
        Platform {
            target: PlatformTarget::Tofino(TofinoTarget::default()),
            constraints: ConstraintSpec::default(),
            schedule: None,
            iomap: IoMap::new(),
        }
    }

    /// An FPGA NIC (Alveo U250, P4-SDNet flow).
    pub fn fpga() -> Self {
        Platform {
            target: PlatformTarget::Fpga(FpgaTarget::default()),
            constraints: ConstraintSpec::default(),
            schedule: None,
            iomap: IoMap::new(),
        }
    }

    /// Mutable access to the constraint clause.
    pub fn constraints_mut(&mut self) -> &mut ConstraintSpec {
        &mut self.constraints
    }

    /// The constraint clause.
    pub fn constraint_spec(&self) -> &ConstraintSpec {
        &self.constraints
    }

    /// Schedules a single model (`platform.schedule(model_spec)`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidProgram`] when a schedule was already
    /// installed.
    pub fn schedule<E: Into<ScheduleExpr>>(&mut self, expr: E) -> Result<()> {
        if self.schedule.is_some() {
            return Err(CoreError::InvalidProgram(
                "platform already has a schedule; build one expression with >> and |".into(),
            ));
        }
        let expr = expr.into();
        expr.validate()?;
        let names = expr.model_names();
        self.iomap
            .validate(&names.iter().map(String::as_str).collect::<Vec<_>>())?;
        self.schedule = Some(expr);
        Ok(())
    }

    /// Installs an IO mapping (call before [`Platform::schedule`]).
    pub fn io_map(&mut self, iomap: IoMap) {
        self.iomap = iomap;
    }

    /// The installed schedule, if any.
    pub fn schedule_expr(&self) -> Option<&ScheduleExpr> {
        self.schedule.as_ref()
    }

    /// The installed IO mapping.
    pub fn iomap(&self) -> &IoMap {
        &self.iomap
    }

    /// The device with any constraint overrides (grid shape, MAT budget)
    /// applied — this is what the compiler estimates against.
    pub fn effective_target(&self) -> PlatformTarget {
        match &self.target {
            PlatformTarget::Taurus(t) => {
                let rows = self.constraints.grid_rows.unwrap_or(t.rows);
                let cols = self.constraints.grid_cols.unwrap_or(t.cols);
                PlatformTarget::Taurus(TaurusTarget::new(rows, cols))
            }
            PlatformTarget::Tofino(t) => {
                let mats = self.constraints.mats.unwrap_or(t.mats);
                PlatformTarget::Tofino(TofinoTarget::with_mats(mats))
            }
            PlatformTarget::Fpga(t) => PlatformTarget::Fpga(t.clone()),
        }
    }

    /// The full constraint set: user clauses + the device budget.
    pub fn effective_constraints(&self) -> Constraints {
        let target = self.effective_target();
        let mut constraints = Constraints::new();
        if let Some(gpps) = self.constraints.throughput_gpps {
            constraints = constraints.throughput_gpps(gpps);
        }
        if let Some(ns) = self.constraints.latency_ns {
            constraints = constraints.latency_ns(ns);
        }
        // Device budget caps every named resource.
        let budget = target.as_target().device_budget();
        for (name, cap) in budget.iter() {
            constraints = constraints.resource(name.clone(), *cap);
        }
        constraints
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homunculus_ml::tensor::Matrix;

    fn toy_dataset() -> Dataset {
        let x = Matrix::from_rows(&[
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![0.5, 0.5],
            vec![0.2, 0.8],
        ])
        .unwrap();
        Dataset::new(x, vec![0, 1, 0, 1], 2, vec!["a".into(), "b".into()]).unwrap()
    }

    fn spec(name: &str) -> ModelSpec {
        ModelSpec::builder(name)
            .data(toy_dataset())
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates() {
        assert!(ModelSpec::builder("").data(toy_dataset()).build().is_err());
        assert!(ModelSpec::builder("x").build().is_err(), "missing dataset");
        assert!(ModelSpec::builder("x")
            .data(toy_dataset())
            .test_fraction(1.5)
            .build()
            .is_err());
        let m = ModelSpec::builder("ad")
            .optimization_metric(Metric::F1)
            .algorithm(Algorithm::Dnn)
            .data(toy_dataset())
            .build()
            .unwrap();
        assert_eq!(m.name, "ad");
        assert_eq!(m.algorithms, vec![Algorithm::Dnn]);
    }

    #[test]
    fn forest_is_extended_only() {
        // The default set must stay frozen at four families — growing it
        // would shift BO RNG streams and break golden artifact pins.
        assert_eq!(Algorithm::ALL.len(), 4);
        assert!(!Algorithm::ALL.contains(&Algorithm::RandomForest));
        assert_eq!(Algorithm::EXTENDED.len(), 5);
        assert!(Algorithm::EXTENDED.contains(&Algorithm::RandomForest));
        assert_eq!(
            Algorithm::from_name("random_forest"),
            Some(Algorithm::RandomForest)
        );
        assert_eq!(Algorithm::RandomForest.name(), "random_forest");
        // Every default family still round-trips through names.
        for a in Algorithm::EXTENDED {
            assert_eq!(Algorithm::from_name(a.name()), Some(a));
        }
    }

    #[test]
    fn data_loader_closure_works() {
        let loader = || Ok(toy_dataset());
        let m = ModelSpec::builder("loaded")
            .data_loader(&loader)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(m.dataset.len(), 4);
    }

    #[test]
    fn platform_constructors_and_constraints() {
        let mut p = Platform::taurus();
        p.constraints_mut()
            .throughput_gpps(1.0)
            .latency_ns(500.0)
            .grid(8, 8);
        let c = p.effective_constraints();
        assert_eq!(c.min_throughput_gpps, Some(1.0));
        assert_eq!(c.max_latency_ns, Some(500.0));
        assert_eq!(c.budget.get("cus"), 64.0, "grid override shrinks budget");

        let mut p = Platform::tofino();
        p.constraints_mut().mats(5);
        assert_eq!(p.effective_constraints().budget.get("mats"), 5.0);

        let p = Platform::fpga();
        assert_eq!(p.effective_constraints().budget.get("lut_pct"), 100.0);
    }

    #[test]
    fn schedule_single_model() {
        let mut p = Platform::taurus();
        p.schedule(spec("only")).unwrap();
        assert_eq!(p.schedule_expr().unwrap().model_names(), vec!["only"]);
        // Double scheduling rejected.
        assert!(p.schedule(spec("again")).is_err());
    }

    #[test]
    fn schedule_composed_models() {
        let mut p = Platform::taurus();
        let expr = spec("a") >> (spec("b") | spec("c")) >> spec("d");
        p.schedule(expr).unwrap();
        assert_eq!(p.schedule_expr().unwrap().model_names().len(), 4);
    }

    #[test]
    fn iomap_validation() {
        let map = IoMap::new().connect("a.class", "b.in");
        assert!(map.validate(&["a", "b"]).is_ok());
        assert!(map.validate(&["a"]).is_err());
        let world = IoMap::new().connect("a.class", "world.out");
        assert!(world.validate(&["a"]).is_ok());
    }

    #[test]
    fn iomap_checked_at_schedule_time() {
        let mut p = Platform::taurus();
        p.io_map(IoMap::new().connect("ghost.out", "a.in"));
        assert!(p.schedule(spec("a")).is_err());
    }

    #[test]
    fn metric_and_algorithm_names() {
        assert_eq!(Metric::F1.name(), "f1");
        assert_eq!(Metric::VMeasure.name(), "v_measure");
        assert_eq!(Algorithm::KMeans.name(), "kmeans");
        assert_eq!(Algorithm::ALL.len(), 4);
    }
}

//! Candidate model selection (§3.2.1).
//!
//! "As a first step, the core tries to rule out as many algorithms as
//! possible based on the data-plane platform and network constraints."
//! This module implements that pre-filter: algorithms the user excluded,
//! algorithms the metric rules out (clustering metrics need clustering
//! algorithms), algorithms the platform cannot run at all, and algorithms
//! whose *minimal* configuration already violates the constraints are all
//! dropped before any training happens.

use crate::alchemy::{Algorithm, Metric, ModelSpec, Platform};
use crate::{CoreError, Result};
use homunculus_backends::model::{DnnIr, ForestIr, KMeansIr, ModelIr, SvmIr, TreeIr};
use homunculus_ml::mlp::MlpArchitecture;

/// The smallest sensible IR of each family — used as the feasibility
/// probe: if even this violates the budget, the family is out.
pub fn minimal_ir(algorithm: Algorithm, n_features: usize, n_classes: usize) -> ModelIr {
    match algorithm {
        Algorithm::Dnn => ModelIr::Dnn(DnnIr::from_architecture(&MlpArchitecture::new(
            n_features,
            vec![2],
            n_classes.max(2),
        ))),
        Algorithm::Svm => ModelIr::Svm(SvmIr::from_shape(
            2.min(n_features).max(1),
            n_classes.max(2),
        )),
        Algorithm::KMeans => ModelIr::KMeans(KMeansIr::from_shape(1, n_features)),
        Algorithm::DecisionTree => ModelIr::Tree(TreeIr::from_shape(1, n_features, 2)),
        Algorithm::RandomForest => ModelIr::Forest(ForestIr::from_shape(2, 1, n_features, 2)),
    }
}

/// Whether an algorithm can optimize the requested metric.
pub fn metric_compatible(algorithm: Algorithm, metric: Metric) -> bool {
    match metric {
        // Supervised metrics need supervised learners.
        Metric::F1 | Metric::MacroF1 | Metric::Accuracy => algorithm != Algorithm::KMeans,
        // Clustering quality needs a clusterer.
        Metric::VMeasure => algorithm == Algorithm::KMeans,
    }
}

/// Selects the candidate algorithms for a model on a platform.
///
/// # Errors
///
/// Returns [`CoreError::NoCandidates`] when nothing survives — the
/// "no feasible solution exists" terminal state of §1.
pub fn candidate_algorithms(spec: &ModelSpec, platform: &Platform) -> Result<Vec<Algorithm>> {
    let requested: Vec<Algorithm> = if spec.algorithms.is_empty() {
        Algorithm::ALL.to_vec()
    } else {
        spec.algorithms.clone()
    };

    let target = platform.effective_target();
    let constraints = platform.effective_constraints();
    let n_features = spec.dataset.n_features();
    let n_classes = spec.dataset.n_classes();

    let survivors: Vec<Algorithm> = requested
        .into_iter()
        .filter(|&algorithm| metric_compatible(algorithm, spec.optimization_metric))
        .filter(|&algorithm| {
            let probe = minimal_ir(algorithm, n_features, n_classes);
            let t = target.as_target();
            t.supports(&probe)
                && t.check(&probe, &constraints)
                    .map(|r| r.is_feasible())
                    .unwrap_or(false)
        })
        .collect();

    if survivors.is_empty() {
        return Err(CoreError::NoCandidates(format!(
            "model '{}': no algorithm passes the {} pre-filter",
            spec.name,
            target.as_target().name()
        )));
    }
    Ok(survivors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use homunculus_datasets::iot::IotTrafficGenerator;
    use homunculus_datasets::nslkdd::NslKddGenerator;

    fn ad_spec(metric: Metric) -> ModelSpec {
        ModelSpec::builder("ad")
            .optimization_metric(metric)
            .data(NslKddGenerator::new(0).generate(100))
            .build()
            .unwrap()
    }

    #[test]
    fn supervised_metric_excludes_kmeans() {
        let c = candidate_algorithms(&ad_spec(Metric::F1), &Platform::taurus()).unwrap();
        assert!(!c.contains(&Algorithm::KMeans));
        assert!(c.contains(&Algorithm::Dnn));
    }

    #[test]
    fn vmeasure_keeps_only_kmeans() {
        let spec = ModelSpec::builder("tc")
            .optimization_metric(Metric::VMeasure)
            .data(IotTrafficGenerator::new(0).generate(100))
            .build()
            .unwrap();
        let c = candidate_algorithms(&spec, &Platform::tofino()).unwrap();
        assert_eq!(c, vec![Algorithm::KMeans]);
    }

    #[test]
    fn user_algorithm_list_respected() {
        let spec = ModelSpec::builder("ad")
            .algorithm(Algorithm::Svm)
            .data(NslKddGenerator::new(0).generate(100))
            .build()
            .unwrap();
        let c = candidate_algorithms(&spec, &Platform::taurus()).unwrap();
        assert_eq!(c, vec![Algorithm::Svm]);
    }

    #[test]
    fn tiny_mat_budget_drops_dnn() {
        // A Tofino with 8 MATs cannot host even a 2-layer BNN (24 MATs).
        let mut p = Platform::tofino();
        p.constraints_mut().mats(8);
        let c = candidate_algorithms(&ad_spec(Metric::F1), &p).unwrap();
        assert!(
            !c.contains(&Algorithm::Dnn),
            "dnn should be pre-filtered: {c:?}"
        );
        assert!(c.contains(&Algorithm::Svm) || c.contains(&Algorithm::DecisionTree));
    }

    #[test]
    fn impossible_budget_yields_no_candidates() {
        let mut p = Platform::tofino();
        p.constraints_mut().mats(1);
        // SVM needs features+1 >= 3 MATs, tree needs features+1, DNN 12+;
        // with 1 MAT and a supervised metric nothing survives.
        let r = candidate_algorithms(&ad_spec(Metric::F1), &p);
        assert!(matches!(r, Err(CoreError::NoCandidates(_))));
    }

    #[test]
    fn minimal_irs_are_valid() {
        for algorithm in Algorithm::EXTENDED {
            let ir = minimal_ir(algorithm, 7, 2);
            assert!(ir.validate().is_ok(), "{algorithm:?}");
        }
    }

    #[test]
    fn forest_requires_explicit_opt_in() {
        // Default search never proposes forests...
        let c = candidate_algorithms(&ad_spec(Metric::F1), &Platform::taurus()).unwrap();
        assert!(!c.contains(&Algorithm::RandomForest));
        // ...but an explicit spec admits them through the pre-filter.
        let spec = ModelSpec::builder("ad")
            .algorithm(Algorithm::RandomForest)
            .data(NslKddGenerator::new(0).generate(100))
            .build()
            .unwrap();
        let c = candidate_algorithms(&spec, &Platform::taurus()).unwrap();
        assert_eq!(c, vec![Algorithm::RandomForest]);
    }
}

//! Scheduling multiple models on one data plane (§3.1/§5.1.3).
//!
//! Alchemy lets operators compose models "either sequentially `>` or in
//! parallel `|`, \[forming\] a directed acyclic graph of any depth as long
//! as the resources permit". Rust cannot overload `>`, so the sequential
//! operator is `>>` ([`std::ops::Shr`]); parallel composition keeps `|`
//! ([`std::ops::BitOr`]).
//!
//! The scheduler enforces the paper's throughput-consistency rule
//! (§3.2.1): "if one model operates at 1 GPkt/s throughput and feeds into
//! another model operating at 0.5 GPkt/s, the first model must also
//! operate at 0.5 GPkt/s" — i.e. a composed pipeline runs at the *minimum*
//! member throughput, while latencies add along the critical path and
//! resources add across all members.

use crate::alchemy::ModelSpec;
use crate::{CoreError, Result};
use homunculus_backends::resources::{Performance, ResourceVector};
use serde::{Deserialize, Serialize};
use std::ops::{BitOr, Shr};

/// A composition tree of model specs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScheduleExpr {
    /// A single model.
    Leaf(Box<ModelSpec>),
    /// Sequential composition: packets flow left to right.
    Seq(Vec<ScheduleExpr>),
    /// Parallel composition: all branches see every packet.
    Par(Vec<ScheduleExpr>),
}

impl ScheduleExpr {
    /// All model specs, left-to-right.
    pub fn models(&self) -> Vec<&ModelSpec> {
        match self {
            ScheduleExpr::Leaf(m) => vec![m],
            ScheduleExpr::Seq(children) | ScheduleExpr::Par(children) => {
                children.iter().flat_map(ScheduleExpr::models).collect()
            }
        }
    }

    /// Model names, left-to-right.
    pub fn model_names(&self) -> Vec<String> {
        self.models().iter().map(|m| m.name.clone()).collect()
    }

    /// Number of scheduled models.
    pub fn len(&self) -> usize {
        self.models().len()
    }

    /// Whether the schedule holds no models (never true for valid trees).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Validates the tree: non-empty composites and unique model names.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidProgram`] for empty composites or
    /// duplicate names.
    pub fn validate(&self) -> Result<()> {
        match self {
            ScheduleExpr::Leaf(_) => {}
            ScheduleExpr::Seq(children) | ScheduleExpr::Par(children) => {
                if children.is_empty() {
                    return Err(CoreError::InvalidProgram("empty composition".into()));
                }
                for child in children {
                    child.validate()?;
                }
            }
        }
        let mut names = self.model_names();
        names.sort();
        let before = names.len();
        names.dedup();
        if names.len() != before {
            return Err(CoreError::InvalidProgram(
                "duplicate model names in schedule".into(),
            ));
        }
        Ok(())
    }

    /// Combined performance of the schedule given each member's
    /// performance (keyed by model name, in [`ScheduleExpr::models`]
    /// order): throughput = min across members; latency = sum along the
    /// critical path (sequential adds, parallel takes the max).
    ///
    /// # Panics
    ///
    /// Panics if `perf` is shorter than the number of models.
    pub fn combined_performance(&self, perf: &[Performance]) -> Performance {
        let mut index = 0;
        self.fold_performance(perf, &mut index)
    }

    fn fold_performance(&self, perf: &[Performance], index: &mut usize) -> Performance {
        match self {
            ScheduleExpr::Leaf(_) => {
                let p = perf[*index];
                *index += 1;
                p
            }
            ScheduleExpr::Seq(children) => {
                let parts: Vec<Performance> = children
                    .iter()
                    .map(|c| c.fold_performance(perf, index))
                    .collect();
                Performance {
                    throughput_gpps: parts
                        .iter()
                        .map(|p| p.throughput_gpps)
                        .fold(f64::INFINITY, f64::min),
                    latency_ns: parts.iter().map(|p| p.latency_ns).sum(),
                }
            }
            ScheduleExpr::Par(children) => {
                let parts: Vec<Performance> = children
                    .iter()
                    .map(|c| c.fold_performance(perf, index))
                    .collect();
                Performance {
                    throughput_gpps: parts
                        .iter()
                        .map(|p| p.throughput_gpps)
                        .fold(f64::INFINITY, f64::min),
                    latency_ns: parts.iter().map(|p| p.latency_ns).fold(0.0, f64::max),
                }
            }
        }
    }

    /// Total resources: the element-wise sum across all members ("the
    /// increase in resources for different chaining strategies stays
    /// constant with the number of models, regardless of the strategy" —
    /// Table 3).
    pub fn combined_resources(&self, resources: &[ResourceVector]) -> ResourceVector {
        resources
            .iter()
            .fold(ResourceVector::new(), |acc, r| acc.add(r))
    }
}

impl From<ModelSpec> for ScheduleExpr {
    fn from(spec: ModelSpec) -> Self {
        ScheduleExpr::Leaf(Box::new(spec))
    }
}

// --- operator overloads -----------------------------------------------
//
// `a >> b` = sequential (paper `a > b`); `a | b` = parallel (paper `a | b`).
// Both flatten nested same-kind composites so `a >> b >> c` is one Seq.

fn seq(lhs: ScheduleExpr, rhs: ScheduleExpr) -> ScheduleExpr {
    let mut children = match lhs {
        ScheduleExpr::Seq(c) => c,
        other => vec![other],
    };
    match rhs {
        ScheduleExpr::Seq(c) => children.extend(c),
        other => children.push(other),
    }
    ScheduleExpr::Seq(children)
}

fn par(lhs: ScheduleExpr, rhs: ScheduleExpr) -> ScheduleExpr {
    let mut children = match lhs {
        ScheduleExpr::Par(c) => c,
        other => vec![other],
    };
    match rhs {
        ScheduleExpr::Par(c) => children.extend(c),
        other => children.push(other),
    }
    ScheduleExpr::Par(children)
}

impl Shr for ModelSpec {
    type Output = ScheduleExpr;

    fn shr(self, rhs: ModelSpec) -> ScheduleExpr {
        seq(self.into(), rhs.into())
    }
}

impl Shr<ScheduleExpr> for ModelSpec {
    type Output = ScheduleExpr;

    fn shr(self, rhs: ScheduleExpr) -> ScheduleExpr {
        seq(self.into(), rhs)
    }
}

impl Shr<ModelSpec> for ScheduleExpr {
    type Output = ScheduleExpr;

    fn shr(self, rhs: ModelSpec) -> ScheduleExpr {
        seq(self, rhs.into())
    }
}

impl Shr for ScheduleExpr {
    type Output = ScheduleExpr;

    fn shr(self, rhs: ScheduleExpr) -> ScheduleExpr {
        seq(self, rhs)
    }
}

impl BitOr for ModelSpec {
    type Output = ScheduleExpr;

    fn bitor(self, rhs: ModelSpec) -> ScheduleExpr {
        par(self.into(), rhs.into())
    }
}

impl BitOr<ScheduleExpr> for ModelSpec {
    type Output = ScheduleExpr;

    fn bitor(self, rhs: ScheduleExpr) -> ScheduleExpr {
        par(self.into(), rhs)
    }
}

impl BitOr<ModelSpec> for ScheduleExpr {
    type Output = ScheduleExpr;

    fn bitor(self, rhs: ModelSpec) -> ScheduleExpr {
        par(self, rhs.into())
    }
}

impl BitOr for ScheduleExpr {
    type Output = ScheduleExpr;

    fn bitor(self, rhs: ScheduleExpr) -> ScheduleExpr {
        par(self, rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homunculus_datasets::dataset::Dataset;
    use homunculus_ml::tensor::Matrix;

    fn spec(name: &str) -> ModelSpec {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        let ds = Dataset::new(x, vec![0, 1], 2, vec!["f".into()]).unwrap();
        ModelSpec::builder(name).data(ds).build().unwrap()
    }

    fn perf(tput: f64, lat: f64) -> Performance {
        Performance {
            throughput_gpps: tput,
            latency_ns: lat,
        }
    }

    #[test]
    fn operators_build_expected_trees() {
        let e = spec("a") >> spec("b") >> spec("c") >> spec("d");
        assert!(matches!(&e, ScheduleExpr::Seq(c) if c.len() == 4));

        let e = spec("a") | spec("b") | spec("c") | spec("d");
        assert!(matches!(&e, ScheduleExpr::Par(c) if c.len() == 4));

        // Table 3's mixed strategy: a > (b | c) > d.
        let e = spec("a") >> (spec("b") | spec("c")) >> spec("d");
        assert_eq!(e.model_names(), vec!["a", "b", "c", "d"]);
        assert!(matches!(&e, ScheduleExpr::Seq(c) if c.len() == 3));
    }

    #[test]
    fn validate_rejects_duplicates() {
        let e = spec("a") >> spec("a");
        assert!(e.validate().is_err());
        let ok = spec("a") >> spec("b");
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn sequential_throughput_is_min_latency_sums() {
        let e = spec("a") >> spec("b");
        let combined = e.combined_performance(&[perf(1.0, 100.0), perf(0.5, 200.0)]);
        assert_eq!(combined.throughput_gpps, 0.5, "paper's consistency rule");
        assert_eq!(combined.latency_ns, 300.0);
    }

    #[test]
    fn parallel_throughput_is_min_latency_maxes() {
        let e = spec("a") | spec("b");
        let combined = e.combined_performance(&[perf(1.0, 100.0), perf(0.5, 200.0)]);
        assert_eq!(combined.throughput_gpps, 0.5);
        assert_eq!(combined.latency_ns, 200.0);
    }

    #[test]
    fn mixed_tree_critical_path() {
        // a >> (b | c) >> d: latency = a + max(b, c) + d.
        let e = spec("a") >> (spec("b") | spec("c")) >> spec("d");
        let combined = e.combined_performance(&[
            perf(1.0, 50.0),
            perf(1.0, 120.0),
            perf(1.0, 80.0),
            perf(1.0, 50.0),
        ]);
        assert_eq!(combined.latency_ns, 50.0 + 120.0 + 50.0);
        assert_eq!(combined.throughput_gpps, 1.0);
    }

    #[test]
    fn resources_sum_regardless_of_strategy() {
        let r = |cus: f64| ResourceVector::new().with("cus", cus);
        let resources = vec![r(10.0), r(20.0), r(30.0), r(40.0)];
        let seq = spec("a") >> spec("b") >> spec("c") >> spec("d");
        let par = spec("e") | spec("f") | spec("g") | spec("h");
        assert_eq!(seq.combined_resources(&resources).get("cus"), 100.0);
        assert_eq!(par.combined_resources(&resources).get("cus"), 100.0);
    }

    #[test]
    fn leaf_passthrough() {
        let e: ScheduleExpr = spec("solo").into();
        assert_eq!(e.len(), 1);
        assert!(!e.is_empty());
        let combined = e.combined_performance(&[perf(0.7, 42.0)]);
        assert_eq!(combined.throughput_gpps, 0.7);
        assert_eq!(combined.latency_ns, 42.0);
    }
}

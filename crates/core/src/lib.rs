#![forbid(unsafe_code)]
//! # homunculus-core
//!
//! The Homunculus compiler itself: the **Alchemy** declarative frontend,
//! the **optimization core** (BO-guided design-space exploration with
//! training and feasibility testing), **model fusion**, **scheduling** of
//! multiple models on one data plane, and the **backend generation** step
//! that emits Spatial/P4 (§3 of the paper, Figure 2).
//!
//! A network operator writes only three things (Figure 3):
//!
//! 1. a dataset (via [`alchemy::ModelSpec`]'s data loader),
//! 2. objectives (the optimization metric, e.g. F1), and
//! 3. a platform with constraints (throughput, latency, resources).
//!
//! Compilation runs as a staged [`session::Compiler`] session —
//! [`session::Session::search`] → [`session::Searched::train`] →
//! [`session::Trained::check`] → [`session::Feasible::codegen`] — with an
//! observable event stream ([`session::CompileObserver`]), cooperative
//! cancellation ([`session::CancelToken`], best-so-far partial artifacts),
//! and portable results
//! ([`pipeline::CompiledArtifact::save_json`] /
//! [`pipeline::CompiledArtifact::load_json`]). [`generate`] and
//! [`generate_with`] are thin shims over a default session that run every
//! stage back to back.
//!
//! ```no_run
//! use homunculus_core::alchemy::{Metric, ModelSpec, Platform};
//! use homunculus_core::pipeline::CompilerOptions;
//! use homunculus_core::session::Compiler;
//! use homunculus_datasets::nslkdd::NslKddGenerator;
//!
//! # fn main() -> Result<(), homunculus_core::CoreError> {
//! let dataset = NslKddGenerator::new(42).generate(4_000);
//! let model = ModelSpec::builder("anomaly_detection")
//!     .optimization_metric(Metric::F1)
//!     .data(dataset)
//!     .build()?;
//!
//! let mut platform = Platform::taurus();
//! platform
//!     .constraints_mut()
//!     .throughput_gpps(1.0)
//!     .latency_ns(500.0)
//!     .grid(16, 16);
//! platform.schedule(model)?;
//!
//! // Staged: inspect candidate sets before committing to the retrain.
//! let searched = Compiler::new(CompilerOptions::fast()).open(&platform)?.search()?;
//! println!("{} BO evaluations", searched.evaluations());
//! let artifact = searched.train()?.check()?.codegen()?;
//! println!("best objective: {:.3}", artifact.best().objective);
//! println!("{}", artifact.code());
//! artifact.save_json("anomaly_detection.artifact.json")?;
//! # Ok(())
//! # }
//! ```

pub mod alchemy;
pub mod candidates;
pub mod fusion;
pub mod pipeline;
pub mod schedule;
pub mod session;
pub mod spaces;
pub mod trainer;

use std::error::Error;
use std::fmt;

pub use pipeline::{generate, generate_with};
pub use session::{
    CancelToken, CompileEvent, CompileObserver, CompileStage, Compiler, LogObserver,
};

/// Errors produced by the compiler.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The Alchemy program was malformed (missing dataset, empty name...).
    InvalidProgram(String),
    /// No candidate algorithm survived platform pre-filtering.
    NoCandidates(String),
    /// The search finished without a single feasible model.
    NoFeasibleModel(String),
    /// A session checkpoint failed to decode or does not match the
    /// platform it is being resumed against.
    Checkpoint(String),
    /// An underlying subsystem failed.
    Subsystem(String),
    /// The static verification layer found error-severity defects (the
    /// message carries the rendered `HA`-coded diagnostics). Raised by
    /// the artifact-load validation hook and by the opt-in
    /// [`session::Compiler::verify_artifacts`] gate.
    Analysis(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidProgram(msg) => write!(f, "invalid alchemy program: {msg}"),
            CoreError::NoCandidates(msg) => write!(f, "no candidate algorithms: {msg}"),
            CoreError::NoFeasibleModel(msg) => write!(f, "no feasible model found: {msg}"),
            CoreError::Checkpoint(msg) => write!(f, "invalid checkpoint: {msg}"),
            CoreError::Subsystem(msg) => write!(f, "subsystem failure: {msg}"),
            CoreError::Analysis(msg) => write!(f, "static verification failed: {msg}"),
        }
    }
}

impl Error for CoreError {}

impl From<homunculus_ml::MlError> for CoreError {
    fn from(e: homunculus_ml::MlError) -> Self {
        CoreError::Subsystem(e.to_string())
    }
}

impl From<homunculus_datasets::DatasetError> for CoreError {
    fn from(e: homunculus_datasets::DatasetError) -> Self {
        CoreError::Subsystem(e.to_string())
    }
}

impl From<homunculus_optimizer::OptimizerError> for CoreError {
    fn from(e: homunculus_optimizer::OptimizerError) -> Self {
        CoreError::Subsystem(e.to_string())
    }
}

impl From<homunculus_backends::BackendError> for CoreError {
    fn from(e: homunculus_backends::BackendError) -> Self {
        CoreError::Subsystem(e.to_string())
    }
}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_conversions() {
        assert_eq!(
            CoreError::NoCandidates("x".into()).to_string(),
            "no candidate algorithms: x"
        );
        let e: CoreError = homunculus_ml::MlError::EmptyInput("y").into();
        assert!(matches!(e, CoreError::Subsystem(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}

//! The compiler driver: Figure 2's optimization core + backend generation.
//!
//! For every scheduled model the driver runs **parallel candidate runs**
//! (one BO search per surviving algorithm, mirroring the paper's parallel
//! exploration of candidate models), where each BO evaluation is:
//!
//! 1. decode the suggested configuration and **train** it (`trainer`),
//! 2. lower to IR and **estimate** resources/performance on the target,
//! 3. **check feasibility** against the platform constraints,
//! 4. report `(objective, feasible, metrics)` back to the optimizer.
//!
//! After the searches, the best feasible candidate wins; it is retrained
//! with the final epoch budget and handed to the backend code generator.

use crate::alchemy::{Algorithm, Metric, ModelSpec, Platform};
use crate::candidates::candidate_algorithms;
use crate::spaces::design_space_for;
use crate::trainer::{normalized_split, normalized_split_with, train_candidate, TrainBudget};
use crate::{CoreError, Result};
use homunculus_backends::model::ModelIr;
use homunculus_backends::resources::{Constraints, Performance, ResourceEstimate, ResourceVector};
use homunculus_datasets::dataset::{Normalizer, Split};
use homunculus_ml::quantize::FixedPoint;
use homunculus_optimizer::space::Configuration;
use homunculus_optimizer::{BayesianOptimizer, Evaluation, OptimizationHistory, OptimizerOptions};
use homunculus_runtime::{
    Compile, CompiledPipeline, Deployment, DeploymentBuilder, PipelineServer,
};
use serde::{Deserialize, Serialize};

/// Compiler knobs: search/training budgets and reproducibility.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompilerOptions {
    /// BO evaluation budget per (model, algorithm) pair.
    pub bo_budget: usize,
    /// Random-initialization samples within that budget.
    pub doe_samples: usize,
    /// Training epochs per BO evaluation.
    pub train_epochs: usize,
    /// Training epochs for the final (winning) model.
    pub final_epochs: usize,
    /// Optional cap on dataset size during the search (stratified
    /// subsample) — evaluation stays on the full split.
    pub sample_cap: Option<usize>,
    /// Run candidate algorithms on parallel threads.
    pub parallel: bool,
    /// Root RNG seed.
    pub seed: u64,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        CompilerOptions {
            bo_budget: 20,
            doe_samples: 5,
            train_epochs: 30,
            final_epochs: 60,
            sample_cap: None,
            parallel: true,
            seed: 0,
        }
    }
}

impl CompilerOptions {
    /// A small-budget preset for tests and examples (seconds, not minutes).
    pub fn fast() -> Self {
        CompilerOptions {
            bo_budget: 8,
            doe_samples: 3,
            train_epochs: 10,
            final_epochs: 20,
            sample_cap: Some(1_200),
            parallel: true,
            seed: 0,
        }
    }

    /// The paper-scale preset (Figure 4 uses ~20 iterations).
    pub fn thorough() -> Self {
        CompilerOptions::default()
    }

    /// Sets the BO budget.
    pub fn bo_budget(mut self, budget: usize) -> Self {
        self.bo_budget = budget;
        self
    }

    /// Sets the root seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-evaluation epoch budget.
    pub fn train_epochs(mut self, epochs: usize) -> Self {
        self.train_epochs = epochs;
        self
    }
}

/// The compile result for one scheduled model.
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// Model (application) name.
    pub name: String,
    /// Winning algorithm.
    pub algorithm: Algorithm,
    /// Objective value of the final trained model on the held-out split.
    pub objective: f64,
    /// The metric the objective was measured with.
    pub metric: Metric,
    /// The winning configuration.
    pub configuration: Configuration,
    /// Resource/performance estimate of the final model.
    pub estimate: ResourceEstimate,
    /// The final trained model IR.
    pub ir: ModelIr,
    /// The IR lowered to the integer fixed-point execution engine
    /// (Q3.12, the Taurus word format) — what actually runs per packet.
    /// `None` only if lowering failed, which a trained IR should never do.
    pub compiled: Option<CompiledPipeline>,
    /// The feature normalizer the final model was trained under; fresh
    /// traffic must be normalized with it before `compiled.classify`.
    pub normalizer: Normalizer,
    /// Generated platform code.
    pub code: String,
    /// The winning algorithm's optimization history (Figure 4's series).
    pub history: OptimizationHistory,
    /// Histories of all algorithm runs (winner included).
    pub algorithm_histories: Vec<(Algorithm, OptimizationHistory)>,
}

/// The full compile result: per-model reports + combined code/envelope.
#[derive(Debug, Clone)]
pub struct CompiledArtifact {
    reports: Vec<ModelReport>,
    combined_resources: ResourceVector,
    combined_performance: Performance,
    combined_code: String,
}

impl CompiledArtifact {
    /// Per-model reports, in schedule order.
    pub fn reports(&self) -> &[ModelReport] {
        &self.reports
    }

    /// The primary (first-scheduled) model's report.
    pub fn best(&self) -> &ModelReport {
        &self.reports[0]
    }

    /// Looks up a report by model name.
    pub fn report(&self, name: &str) -> Option<&ModelReport> {
        self.reports.iter().find(|r| r.name == name)
    }

    /// Total resources across the schedule (Table 3's accounting).
    pub fn combined_resources(&self) -> &ResourceVector {
        &self.combined_resources
    }

    /// Combined performance under the throughput-consistency rule.
    pub fn combined_performance(&self) -> Performance {
        self.combined_performance
    }

    /// The generated data-plane source (all models concatenated).
    pub fn code(&self) -> &str {
        &self.combined_code
    }

    /// Builds a multi-tenant [`PipelineServer`] from the schedule's
    /// winning models: one tenant per [`ModelReport`], registered under
    /// the model's name with its deployment normalizer, all compiled
    /// through one shared LUT cache (so a many-model schedule
    /// materializes at most one sigmoid/tanh table per fixed-point
    /// format).
    ///
    /// Look tenants up by model name via
    /// [`PipelineServer::tenant_id`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Subsystem`] if a winning IR fails to lower —
    /// which a trained IR never should.
    pub fn build_server(&self) -> Result<PipelineServer> {
        let mut server = PipelineServer::new();
        for report in &self.reports {
            server
                .register_model(
                    &report.name,
                    &report.ir,
                    FixedPoint::taurus_default(),
                    Some(report.normalizer.clone()),
                )
                .map_err(|e| {
                    CoreError::Subsystem(format!(
                        "registering winning model '{}' for serving failed: {e}",
                        report.name
                    ))
                })?;
        }
        Ok(server)
    }

    /// Launches a persistent [`Deployment`] serving the schedule's winning
    /// models: resident workers configured by `builder`, one tenant per
    /// [`ModelReport`] (registered in schedule order under the model's
    /// name with its deployment normalizer), all compiled through the
    /// deployment's shared LUT cache. Unlike
    /// [`build_server`](CompiledArtifact::build_server), the returned
    /// session amortizes worker launch across every subsequent
    /// [`submit`](Deployment::submit).
    ///
    /// Look tenants up by model name via [`Deployment::tenant_id`]; add
    /// QoS weights afterwards by registering extra tenants with
    /// [`Deployment::add_model_with`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Subsystem`] if a winning IR fails to lower —
    /// which a trained IR never should.
    pub fn build_deployment(&self, builder: DeploymentBuilder) -> Result<Deployment> {
        let deployment = builder.build();
        for report in &self.reports {
            deployment
                .add_model(
                    &report.name,
                    &report.ir,
                    FixedPoint::taurus_default(),
                    Some(report.normalizer.clone()),
                )
                .map_err(|e| {
                    CoreError::Subsystem(format!(
                        "deploying winning model '{}' failed: {e}",
                        report.name
                    ))
                })?;
        }
        Ok(deployment)
    }
}

/// Compiles a platform with default options — the paper's
/// `homunculus.generate(platform)` entry point.
///
/// # Errors
///
/// See [`generate_with`].
pub fn generate(platform: &Platform) -> Result<CompiledArtifact> {
    generate_with(platform, &CompilerOptions::default())
}

/// Compiles a platform: search + train + feasibility-check + codegen for
/// every scheduled model.
///
/// # Errors
///
/// - [`CoreError::InvalidProgram`] when no schedule is installed.
/// - [`CoreError::NoCandidates`] when the pre-filter removes everything.
/// - [`CoreError::NoFeasibleModel`] when the search budget ends with no
///   feasible configuration.
pub fn generate_with(platform: &Platform, options: &CompilerOptions) -> Result<CompiledArtifact> {
    let schedule = platform
        .schedule_expr()
        .ok_or_else(|| CoreError::InvalidProgram("platform has no scheduled models".into()))?;
    let specs = schedule.models();

    // Multiple models share the device: each gets an equal slice of the
    // resource budget (the Table 4 experiment: "they are each allocated
    // half of the switch's resources").
    let share = specs.len().max(1) as f64;
    let constraints = scaled_constraints(&platform.effective_constraints(), share);

    let mut reports = Vec::with_capacity(specs.len());
    for (index, spec) in specs.iter().enumerate() {
        let report = compile_model(spec, platform, &constraints, options, index as u64)?;
        reports.push(report);
    }

    let resources: Vec<ResourceVector> = reports
        .iter()
        .map(|r| r.estimate.resources.clone())
        .collect();
    let performances: Vec<Performance> = reports.iter().map(|r| r.estimate.performance).collect();
    let combined_resources = schedule.combined_resources(&resources);
    let combined_performance = schedule.combined_performance(&performances);
    let combined_code = reports
        .iter()
        .map(|r| r.code.as_str())
        .collect::<Vec<_>>()
        .join("\n");

    Ok(CompiledArtifact {
        reports,
        combined_resources,
        combined_performance,
        combined_code,
    })
}

/// Divides every resource cap by `share` (performance clauses are
/// per-model and stay unchanged).
fn scaled_constraints(constraints: &Constraints, share: f64) -> Constraints {
    let mut scaled = Constraints::new();
    if let Some(t) = constraints.min_throughput_gpps {
        scaled = scaled.throughput_gpps(t);
    }
    if let Some(l) = constraints.max_latency_ns {
        scaled = scaled.latency_ns(l);
    }
    for (name, cap) in constraints.budget.iter() {
        scaled = scaled.resource(name.clone(), cap / share);
    }
    scaled
}

/// Compiles one model: candidate selection, parallel BO runs, final
/// training, and code generation.
fn compile_model(
    spec: &ModelSpec,
    platform: &Platform,
    constraints: &Constraints,
    options: &CompilerOptions,
    model_index: u64,
) -> Result<ModelReport> {
    let algorithms = candidate_algorithms(spec, platform)?;
    let search_dataset = match options.sample_cap {
        Some(cap) if spec.dataset.len() > cap => {
            let fraction = cap as f64 / spec.dataset.len() as f64;
            spec.dataset.stratified_split(fraction, options.seed)?.test
        }
        _ => spec.dataset.clone(),
    };
    let split = normalized_split(&search_dataset, spec.test_fraction, options.seed)?;

    // Parallel candidate runs (Figure 2's "Parallel Candidate Runs").
    // A panic in one candidate's search is captured and surfaced as a
    // CoreError for that algorithm instead of aborting the whole compile:
    // the remaining candidates still finish, and the caller sees which
    // search died and why.
    let runs: Vec<(Algorithm, Result<OptimizationHistory>)> =
        if options.parallel && algorithms.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = algorithms
                    .iter()
                    .map(|&algorithm| {
                        let split_ref = &split;
                        let handle = scope.spawn(move || {
                            search_algorithm(
                                algorithm,
                                spec,
                                platform,
                                constraints,
                                split_ref,
                                options,
                                model_index,
                            )
                        });
                        (algorithm, handle)
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|(algorithm, handle)| {
                        let run = handle.join().unwrap_or_else(|payload| {
                            Err(CoreError::Subsystem(format!(
                                "search thread for {} panicked: {}",
                                algorithm.name(),
                                panic_message(payload.as_ref())
                            )))
                        });
                        (algorithm, run)
                    })
                    .collect()
            })
        } else {
            algorithms
                .iter()
                .map(|&algorithm| {
                    (
                        algorithm,
                        search_algorithm(
                            algorithm,
                            spec,
                            platform,
                            constraints,
                            &split,
                            options,
                            model_index,
                        ),
                    )
                })
                .collect()
        };

    // Final model selection across algorithms. Within each algorithm's
    // history the winner is chosen with an efficiency tie-break (§3: "the
    // most efficient model will use as many resources as needed without
    // over-provisioning"): among configurations within EFFICIENCY_SLACK of
    // the best objective, the one with the fewest parameters wins. The
    // slack sits at the noise floor of the objective estimate: candidates
    // are scored on a few-hundred-row held-out split, where an F1 reading
    // carries a standard error of several percentage points, so a sub-0.025
    // difference is not evidence that the bigger model is actually better.
    const EFFICIENCY_SLACK: f64 = 0.025;
    let mut algorithm_histories = Vec::new();
    let mut winner: Option<(Algorithm, Configuration, f64)> = None;
    let mut first_error: Option<CoreError> = None;
    for (algorithm, run) in runs {
        // One failed (or panicked) search does not doom the compile as
        // long as another candidate produced a feasible model; the error
        // is only surfaced when nothing won.
        let history = match run {
            Ok(history) => history,
            Err(error) => {
                first_error.get_or_insert(error);
                continue;
            }
        };
        if let Some(best) = history.best_efficient(EFFICIENCY_SLACK, "params") {
            let better = winner
                .as_ref()
                .map_or(true, |(_, _, obj)| best.evaluation.objective > *obj);
            if better {
                winner = Some((
                    algorithm,
                    best.configuration.clone(),
                    best.evaluation.objective,
                ));
            }
        }
        algorithm_histories.push((algorithm, history));
    }
    let (algorithm, configuration, winner_objective) = match winner {
        Some(winner) => winner,
        None => {
            return Err(first_error.unwrap_or_else(|| {
                CoreError::NoFeasibleModel(format!(
                    "model '{}': search budget exhausted without a feasible configuration",
                    spec.name
                ))
            }))
        }
    };

    // Retrain the winner with the final budget on the full dataset.
    // Training is stochastic and an unlucky initialization can collapse
    // into a degenerate model (e.g. one-class predictions, F1 = 0) even
    // for a configuration that scored well during the search — so take
    // the best of a few deterministic restarts, stopping early once the
    // retrain is in range of the search-time score.
    const FINAL_RESTARTS: u64 = 3;
    let (final_split, normalizer) =
        normalized_split_with(&spec.dataset, spec.test_fraction, options.seed)?;
    let search_objective = winner_objective;
    let mut trained: Option<crate::trainer::TrainedCandidate> = None;
    for restart in 0..FINAL_RESTARTS {
        let final_budget = TrainBudget {
            epochs: options.final_epochs,
            seed: (options.seed ^ 0xF1A4).wrapping_add(restart.wrapping_mul(0x9E37_79B9)),
        };
        let attempt = train_candidate(
            algorithm,
            &configuration,
            &final_split,
            spec.optimization_metric,
            final_budget,
        )?;
        let good_enough = attempt.objective >= search_objective - EFFICIENCY_SLACK;
        let better = trained
            .as_ref()
            .map_or(true, |t| attempt.objective > t.objective);
        if better {
            trained = Some(attempt);
        }
        if good_enough {
            break;
        }
    }
    let trained = trained.expect("at least one final training restart ran");
    let target = platform.effective_target();
    let estimate = target.as_target().estimate(&trained.ir)?;
    let code = target.as_target().generate_code(&trained.ir, &spec.name)?;
    // Lower the winner to the integer runtime — the executable twin of
    // the generated data-plane code. A trained IR always lowers; failure
    // would indicate an IR bug, so it degrades to None rather than
    // invalidating an otherwise complete compile.
    let compiled = trained.ir.compile(FixedPoint::taurus_default()).ok();

    let history = algorithm_histories
        .iter()
        .find(|(a, _)| *a == algorithm)
        .map(|(_, h)| h.clone())
        .expect("winner came from a recorded run");

    Ok(ModelReport {
        name: spec.name.clone(),
        algorithm,
        objective: trained.objective,
        metric: spec.optimization_metric,
        configuration,
        estimate,
        ir: trained.ir,
        compiled,
        normalizer,
        code,
        history,
        algorithm_histories,
    })
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(message) = payload.downcast_ref::<&'static str>() {
        message
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message
    } else {
        "non-string panic payload"
    }
}

/// Violation sentinel for configurations that failed to train or to
/// estimate at all: large against real violation scores (O(1..100)) so the
/// phase-1 feasibility descent never walks toward them, but finite enough
/// to survive the surrogate's f32 cast.
const BROKEN_CANDIDATE_VIOLATION: f64 = 1e6;

/// One algorithm's BO search: the black-box objective is train + estimate
/// + feasibility-check.
fn search_algorithm(
    algorithm: Algorithm,
    spec: &ModelSpec,
    platform: &Platform,
    constraints: &Constraints,
    split: &Split,
    options: &CompilerOptions,
    model_index: u64,
) -> Result<OptimizationHistory> {
    let space = design_space_for(algorithm, spec, platform)?;
    let target = platform.effective_target();
    let seed = options
        .seed
        .wrapping_add(model_index.wrapping_mul(0x9E37))
        .wrapping_add(algorithm as u64 * 0x79B9);
    let optimizer_options = OptimizerOptions::default()
        .budget(options.bo_budget)
        .doe_samples(options.doe_samples.min(options.bo_budget))
        .seed(seed);
    let budget = TrainBudget {
        epochs: options.train_epochs,
        seed,
    };

    let history = BayesianOptimizer::new(space, optimizer_options).run(|config| {
        match train_candidate(algorithm, config, split, spec.optimization_metric, budget) {
            Ok(candidate) => match target.as_target().check(&candidate.ir, constraints) {
                Ok(report) => {
                    let mut evaluation = Evaluation::new(candidate.objective)
                        .feasible(report.is_feasible())
                        .with_violation(report.violation_score())
                        .with_metric("params", candidate.ir.param_count() as f64);
                    if let Ok(estimate) = target.as_target().estimate(&candidate.ir) {
                        for (name, value) in estimate.resources.iter() {
                            evaluation = evaluation.with_metric(name.clone(), *value);
                        }
                        evaluation = evaluation
                            .with_metric("latency_ns", estimate.performance.latency_ns)
                            .with_metric("throughput_gpps", estimate.performance.throughput_gpps);
                    }
                    evaluation
                }
                // An uncheckable configuration must not look attractive
                // to the phase-1 violation descent (violation would
                // default to 0.0 — the global minimum). The sentinel is
                // large against real violation scores (O(1..100)) but
                // stays finite through the surrogate's f32 cast.
                Err(_) => Evaluation::new(candidate.objective)
                    .feasible(false)
                    .with_violation(BROKEN_CANDIDATE_VIOLATION),
            },
            // A configuration that fails to train at all is infeasible —
            // same poisoning guard as above.
            Err(_) => Evaluation::new(0.0)
                .feasible(false)
                .with_violation(BROKEN_CANDIDATE_VIOLATION),
        }
    })?;
    Ok(history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alchemy::Metric;
    use homunculus_datasets::iot::IotTrafficGenerator;
    use homunculus_datasets::nslkdd::NslKddGenerator;

    fn tiny_options() -> CompilerOptions {
        CompilerOptions {
            bo_budget: 8,
            doe_samples: 4,
            train_epochs: 12,
            final_epochs: 25,
            sample_cap: Some(600),
            parallel: true,
            seed: 0,
        }
    }

    fn ad_platform(n: usize) -> Platform {
        let spec = ModelSpec::builder("anomaly_detection")
            .optimization_metric(Metric::F1)
            .algorithm(Algorithm::Dnn)
            .data(NslKddGenerator::new(1).generate(n))
            .build()
            .unwrap();
        let mut platform = Platform::taurus();
        platform
            .constraints_mut()
            .throughput_gpps(1.0)
            .latency_ns(500.0)
            .grid(16, 16);
        platform.schedule(spec).unwrap();
        platform
    }

    #[test]
    fn end_to_end_ad_compile() {
        let artifact = generate_with(&ad_platform(900), &tiny_options()).unwrap();
        let best = artifact.best();
        assert_eq!(best.name, "anomaly_detection");
        assert_eq!(best.algorithm, Algorithm::Dnn);
        assert!(best.objective > 0.5, "objective {}", best.objective);
        assert!(best.code.contains("@spatial object AnomalyDetection"));
        assert!(best.estimate.resources.get("cus") > 0.0);
        assert_eq!(best.estimate.performance.throughput_gpps, 1.0);
        // History has exactly the budgeted points.
        assert_eq!(best.history.points().len(), 8);
        // The winner carries its compiled integer twin, ready to serve.
        let compiled = best
            .compiled
            .as_ref()
            .expect("trained winner lowers to the integer runtime");
        assert_eq!(compiled.n_features(), 7);
        assert_eq!(compiled.n_classes(), 2);
        let mut scratch = homunculus_runtime::Scratch::new();
        assert!(compiled.classify(&[0.25; 7], &mut scratch) < 2);
    }

    #[test]
    fn unscheduled_platform_rejected() {
        let platform = Platform::taurus();
        assert!(matches!(
            generate_with(&platform, &tiny_options()),
            Err(CoreError::InvalidProgram(_))
        ));
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate_with(&ad_platform(600), &tiny_options()).unwrap();
        let b = generate_with(&ad_platform(600), &tiny_options()).unwrap();
        assert_eq!(a.best().objective, b.best().objective);
        assert_eq!(a.best().code, b.best().code);
    }

    #[test]
    fn kmeans_on_tofino_respects_mat_budget() {
        let spec = ModelSpec::builder("traffic_classification")
            .optimization_metric(Metric::VMeasure)
            .data(IotTrafficGenerator::new(2).generate(700))
            .build()
            .unwrap();
        let mut platform = Platform::tofino();
        platform.constraints_mut().mats(3);
        platform.schedule(spec).unwrap();
        let artifact = generate_with(&platform, &tiny_options()).unwrap();
        let best = artifact.best();
        assert_eq!(best.algorithm, Algorithm::KMeans);
        assert!(
            best.estimate.resources.get("mats") <= 3.0,
            "mats {}",
            best.estimate.resources.get("mats")
        );
        assert!(best.code.contains("table cluster_0"));
    }

    #[test]
    fn multi_model_schedule_sums_resources() {
        let g = NslKddGenerator::new(3);
        let a = ModelSpec::builder("a")
            .algorithm(Algorithm::Dnn)
            .data(g.generate(500))
            .build()
            .unwrap();
        let b = ModelSpec::builder("b")
            .algorithm(Algorithm::Dnn)
            .data(NslKddGenerator::new(4).generate(500))
            .build()
            .unwrap();
        let mut platform = Platform::taurus();
        platform
            .constraints_mut()
            .throughput_gpps(1.0)
            .latency_ns(1_000.0);
        platform.schedule(a >> b).unwrap();
        let artifact = generate_with(&platform, &tiny_options()).unwrap();
        assert_eq!(artifact.reports().len(), 2);
        let sum = artifact.reports()[0].estimate.resources.get("cus")
            + artifact.reports()[1].estimate.resources.get("cus");
        assert_eq!(artifact.combined_resources().get("cus"), sum);
        // Sequential composition sums latency.
        let lat = artifact.reports()[0].estimate.performance.latency_ns
            + artifact.reports()[1].estimate.performance.latency_ns;
        assert!((artifact.combined_performance().latency_ns - lat).abs() < 1e-9);
        assert!(artifact.report("a").is_some());
        assert!(artifact.report("missing").is_none());
        // Combined code contains both pipelines.
        assert!(artifact.code().matches("@spatial object").count() >= 2);

        // The artifact serves: one tenant per winning model, and served
        // verdicts match the report's own compiled pipeline run in
        // isolation on normalized features.
        let server = artifact.build_server().unwrap();
        assert_eq!(server.tenant_count(), 2);
        let tenant = server.tenant_id("a").unwrap();
        let raw = homunculus_ml::tensor::Matrix::from_fn(16, 7, |r, c| (r * 7 + c) as f32 * 0.05);
        let output = server
            .serve(
                &[homunculus_runtime::TenantBatch::new(tenant, raw.clone())],
                &homunculus_runtime::ServeOptions::default().workers(2),
            )
            .unwrap();
        let report = artifact.report("a").unwrap();
        let mut normalized = raw;
        for r in 0..normalized.rows() {
            report.normalizer.apply(normalized.row_mut(r));
        }
        let isolated = report
            .compiled
            .as_ref()
            .unwrap()
            .classify_batch(&normalized, 1);
        assert_eq!(output.verdicts()[0], isolated);

        // The persistent path serves the same artifact: one submit to a
        // resident-worker deployment yields the same verdicts.
        let deployment = artifact
            .build_deployment(homunculus_runtime::Deployment::builder().workers(2))
            .unwrap();
        assert_eq!(deployment.tenant_count(), 2);
        let tenant = deployment.tenant_id("a").unwrap();
        let raw = homunculus_ml::tensor::Matrix::from_fn(16, 7, |r, c| (r * 7 + c) as f32 * 0.05);
        let deployed = deployment
            .submit(homunculus_runtime::TenantBatch::new(tenant, raw))
            .unwrap()
            .wait();
        assert_eq!(deployed.into_vec(), isolated);
        deployment.shutdown();
    }

    #[test]
    fn infeasible_constraints_reported() {
        // A 2x2 grid cannot host any DNN at 1 GPkt/s with latency 500 ns:
        // candidate pre-filtering should already reject everything.
        let spec = ModelSpec::builder("impossible")
            .algorithm(Algorithm::Dnn)
            .data(NslKddGenerator::new(5).generate(300))
            .build()
            .unwrap();
        let mut platform = Platform::taurus();
        platform.constraints_mut().grid(2, 2).latency_ns(10.0);
        platform.schedule(spec).unwrap();
        let result = generate_with(&platform, &tiny_options());
        assert!(
            matches!(
                result,
                Err(CoreError::NoCandidates(_)) | Err(CoreError::NoFeasibleModel(_))
            ),
            "expected failure, got {result:?}"
        );
    }
}

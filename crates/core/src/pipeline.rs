//! Compiler options, model reports, and the compiled artifact.
//!
//! The compile pipeline itself — search → train → feasibility-check →
//! codegen (Figure 2's optimization core + backend generation) — lives in
//! [`crate::session`] as a staged [`Compiler`] session. This module holds
//! what flows *out* of it: per-model
//! [`ModelReport`]s, the [`CompiledArtifact`] (with its portable JSON
//! form — compile once, serve forever), and the one-shot [`generate`] /
//! [`generate_with`] entry points, which are thin shims over a default
//! session and produce bit-identical artifacts.

use crate::alchemy::{Algorithm, Metric, Platform};
use crate::session::Compiler;
use crate::{CoreError, Result};
use homunculus_backends::model::ModelIr;
use homunculus_backends::resources::{Performance, ResourceEstimate, ResourceVector};
use homunculus_datasets::dataset::Normalizer;
use homunculus_ml::quantize::FixedPoint;
use homunculus_optimizer::space::Configuration;
use homunculus_optimizer::OptimizationHistory;
use homunculus_runtime::{
    Compile, CompiledPipeline, Deployment, DeploymentBuilder, PipelineServer, TenantId,
};
use serde::{Deserialize, Serialize};
use serde_json::{json, ToJson, Value};

/// Compiler knobs: search/training budgets and reproducibility.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompilerOptions {
    /// BO evaluation budget per (model, algorithm) pair.
    pub bo_budget: usize,
    /// Random-initialization samples within that budget.
    pub doe_samples: usize,
    /// Training epochs per BO evaluation.
    pub train_epochs: usize,
    /// Training epochs for the final (winning) model.
    pub final_epochs: usize,
    /// Optional cap on dataset size during the search (stratified
    /// subsample) — evaluation stays on the full split.
    pub sample_cap: Option<usize>,
    /// Run candidate searches (and scheduled models) on parallel threads.
    pub parallel: bool,
    /// Root RNG seed.
    pub seed: u64,
    /// Optional wall-clock deadline for the whole session. When it
    /// expires the session trips its own [`CancelToken`] at the next BO
    /// iteration boundary — in-flight training finishes, and the
    /// remaining stages run on best-so-far state, yielding a *partial*
    /// artifact (or a checkpoint to resume later). `None` means no
    /// deadline. The deadline never touches an RNG stream: results up to
    /// the cut are bit-identical to an unbudgeted run's prefix.
    ///
    /// [`CancelToken`]: crate::session::CancelToken
    pub time_budget: Option<std::time::Duration>,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        CompilerOptions {
            bo_budget: 20,
            doe_samples: 5,
            train_epochs: 30,
            final_epochs: 60,
            sample_cap: None,
            parallel: true,
            seed: 0,
            time_budget: None,
        }
    }
}

impl CompilerOptions {
    /// A small-budget preset for tests and examples (seconds, not minutes).
    pub fn fast() -> Self {
        CompilerOptions {
            bo_budget: 8,
            doe_samples: 3,
            train_epochs: 10,
            final_epochs: 20,
            sample_cap: Some(1_200),
            parallel: true,
            seed: 0,
            time_budget: None,
        }
    }

    /// The paper-scale preset (Figure 4 uses ~20 iterations).
    pub fn thorough() -> Self {
        CompilerOptions::default()
    }

    /// Sets the BO budget.
    pub fn bo_budget(mut self, budget: usize) -> Self {
        self.bo_budget = budget;
        self
    }

    /// Sets the root seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-evaluation epoch budget.
    pub fn train_epochs(mut self, epochs: usize) -> Self {
        self.train_epochs = epochs;
        self
    }

    /// Arms a wall-clock deadline for the session (see
    /// [`time_budget`](CompilerOptions::time_budget)).
    pub fn time_budget(mut self, budget: std::time::Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }
}

/// JSON document form: every field by name, with `time_budget` in whole
/// nanoseconds (or `null`) — the options block of a session checkpoint,
/// so a resumed compile re-runs under exactly the options that produced
/// the recorded histories.
impl ToJson for CompilerOptions {
    fn to_json(&self) -> Value {
        json!({
            "bo_budget": self.bo_budget,
            "doe_samples": self.doe_samples,
            "train_epochs": self.train_epochs,
            "final_epochs": self.final_epochs,
            "sample_cap": self.sample_cap,
            "parallel": self.parallel,
            "seed": self.seed,
            "time_budget_ns": self.time_budget.map(|d| d.as_nanos() as u64),
        })
    }
}

impl CompilerOptions {
    /// Decodes the [`ToJson`] document form.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Checkpoint`] on missing or mistyped fields.
    pub fn from_json(value: &Value) -> Result<Self> {
        let count = |field: &str| {
            value[field]
                .as_i64()
                .filter(|&v| v >= 0)
                .map(|v| v as usize)
                .ok_or_else(|| CoreError::Checkpoint(format!("options need numeric '{field}'")))
        };
        let sample_cap = match &value["sample_cap"] {
            Value::Null => None,
            _ => Some(count("sample_cap")?),
        };
        let time_budget = match &value["time_budget_ns"] {
            Value::Null => None,
            v => Some(std::time::Duration::from_nanos(
                v.as_i64().filter(|&ns| ns >= 0).ok_or_else(|| {
                    CoreError::Checkpoint("options need numeric 'time_budget_ns'".into())
                })? as u64,
            )),
        };
        Ok(CompilerOptions {
            bo_budget: count("bo_budget")?,
            doe_samples: count("doe_samples")?,
            train_epochs: count("train_epochs")?,
            final_epochs: count("final_epochs")?,
            sample_cap,
            parallel: value["parallel"]
                .as_bool()
                .ok_or_else(|| CoreError::Checkpoint("options need boolean 'parallel'".into()))?,
            seed: value["seed"]
                .as_i64()
                .filter(|&v| v >= 0)
                .ok_or_else(|| CoreError::Checkpoint("options need numeric 'seed'".into()))?
                as u64,
            time_budget,
        })
    }
}

/// The compile result for one scheduled model.
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// Model (application) name.
    pub name: String,
    /// Winning algorithm.
    pub algorithm: Algorithm,
    /// Objective value of the final trained model on the held-out split.
    pub objective: f64,
    /// The metric the objective was measured with.
    pub metric: Metric,
    /// The winning configuration.
    pub configuration: Configuration,
    /// Resource/performance estimate of the final model.
    pub estimate: ResourceEstimate,
    /// The final trained model IR.
    pub ir: ModelIr,
    /// The fixed-point format `compiled` was lowered with (Q3.12, the
    /// Taurus word format, unless a future codegen stage chooses
    /// otherwise). Recorded in the portable JSON form so a reloaded
    /// artifact re-lowers with the *same* quantization — bit-identical
    /// verdicts — even if the workspace default ever changes.
    pub format: FixedPoint,
    /// The IR lowered to the integer fixed-point execution engine —
    /// what actually runs per packet. `None` only if lowering failed,
    /// which a trained IR should never do.
    pub compiled: Option<CompiledPipeline>,
    /// The feature normalizer the final model was trained under; fresh
    /// traffic must be normalized with it before `compiled.classify`.
    pub normalizer: Normalizer,
    /// Generated platform code.
    pub code: String,
    /// The winning algorithm's optimization history (Figure 4's series).
    pub history: OptimizationHistory,
    /// Histories of all algorithm runs (winner included).
    pub algorithm_histories: Vec<(Algorithm, OptimizationHistory)>,
}

/// JSON document form of a report. The executable `compiled` pipeline is
/// **not** serialized: it is a pure function of the IR and is re-lowered
/// on load, so a reloaded report classifies bit-identically to the
/// in-process one without pinning the runtime's internal layout into the
/// wire format.
impl ToJson for ModelReport {
    fn to_json(&self) -> Value {
        let algorithm_histories: Vec<Value> = self
            .algorithm_histories
            .iter()
            .map(
                |(algorithm, history)| json!({ "algorithm": algorithm.name(), "history": history }),
            )
            .collect();
        json!({
            "name": self.name,
            "algorithm": self.algorithm.name(),
            "objective": self.objective,
            "metric": self.metric.name(),
            "configuration": self.configuration,
            "estimate": self.estimate,
            "ir": self.ir,
            "fixed_point": {
                "int_bits": self.format.int_bits(),
                "frac_bits": self.format.frac_bits(),
            },
            "normalizer": self.normalizer,
            "code": self.code,
            "history": self.history,
            "algorithm_histories": algorithm_histories,
        })
    }
}

impl ModelReport {
    /// Decodes the [`ToJson`] document form, re-lowering the IR to the
    /// integer runtime (so `compiled` is ready to classify). Re-lowering
    /// rebuilds the full execution state, including the packed
    /// narrow-lane weight storage when the format fits `i16`/`i8` — a
    /// reloaded artifact serves from the same kernel tier, bit for bit,
    /// as the process that compiled it.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Subsystem`] on malformed fields.
    pub fn from_json(value: &Value) -> Result<Self> {
        let text = |field: &str| {
            value[field]
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| CoreError::Subsystem(format!("report needs string '{field}'")))
        };
        let algorithm = Algorithm::from_name(&text("algorithm")?)
            .ok_or_else(|| CoreError::Subsystem("unknown algorithm name in report".into()))?;
        let metric = Metric::from_name(&text("metric")?)
            .ok_or_else(|| CoreError::Subsystem("unknown metric name in report".into()))?;
        let objective = value["objective"]
            .as_f64()
            .ok_or_else(|| CoreError::Subsystem("report needs numeric objective".into()))?;
        let ir = ModelIr::from_json(&value["ir"])?;
        let normalizer = Normalizer::from_json(&value["normalizer"])?;
        let algorithm_histories = value["algorithm_histories"]
            .as_array()
            .ok_or_else(|| CoreError::Subsystem("report needs algorithm_histories".into()))?
            .iter()
            .map(|entry| {
                let algorithm = entry["algorithm"]
                    .as_str()
                    .and_then(Algorithm::from_name)
                    .ok_or_else(|| {
                        CoreError::Subsystem("unknown algorithm in history entry".into())
                    })?;
                Ok((
                    algorithm,
                    OptimizationHistory::from_json(&entry["history"])?,
                ))
            })
            .collect::<Result<Vec<_>>>()?;
        // The lowering format travels with the report: re-lowering with
        // anything else would quantize differently from the pipeline
        // that produced the artifact's verdicts.
        let fixed_point = &value["fixed_point"];
        let bits = |field: &str| {
            fixed_point[field]
                .as_i64()
                .filter(|&b| b >= 0)
                .map(|b| b as u32)
                .ok_or_else(|| CoreError::Subsystem(format!("report needs fixed_point.{field}")))
        };
        let format = FixedPoint::new(bits("int_bits")?, bits("frac_bits")?)
            .map_err(|e| CoreError::Subsystem(format!("invalid fixed_point format: {e}")))?;
        // Re-lower: the compiled pipeline is derived state, rebuilt from
        // the decoded IR exactly as the codegen stage built it.
        let compiled = ir.compile(format).ok();
        Ok(ModelReport {
            name: text("name")?,
            algorithm,
            objective,
            metric,
            configuration: Configuration::from_json(&value["configuration"])?,
            estimate: ResourceEstimate::from_json(&value["estimate"])?,
            ir,
            format,
            compiled,
            normalizer,
            code: text("code")?,
            history: OptimizationHistory::from_json(&value["history"])?,
            algorithm_histories,
        })
    }
}

/// Version tag written into every artifact document.
const ARTIFACT_FORMAT: &str = "homunculus.artifact/v1";

/// The full compile result: per-model reports + combined code/envelope.
#[derive(Debug, Clone)]
pub struct CompiledArtifact {
    reports: Vec<ModelReport>,
    combined_resources: ResourceVector,
    combined_performance: Performance,
    combined_code: String,
    partial: bool,
}

impl CompiledArtifact {
    /// Assembles an artifact from the codegen stage's outputs.
    pub(crate) fn assemble(
        reports: Vec<ModelReport>,
        combined_resources: ResourceVector,
        combined_performance: Performance,
        combined_code: String,
        partial: bool,
    ) -> Self {
        CompiledArtifact {
            reports,
            combined_resources,
            combined_performance,
            combined_code,
            partial,
        }
    }

    /// Per-model reports, in schedule order.
    pub fn reports(&self) -> &[ModelReport] {
        &self.reports
    }

    /// The primary (first-scheduled) model's report.
    pub fn best(&self) -> &ModelReport {
        &self.reports[0]
    }

    /// Looks up a report by model name.
    pub fn report(&self, name: &str) -> Option<&ModelReport> {
        self.reports.iter().find(|r| r.name == name)
    }

    /// Whether the producing session was cancelled: the reports hold the
    /// best models found *before* cancellation (fewer BO iterations than
    /// budgeted), fully trained and servable, rather than the completed
    /// search's winners.
    pub fn is_partial(&self) -> bool {
        self.partial
    }

    /// Total resources across the schedule (Table 3's accounting).
    pub fn combined_resources(&self) -> &ResourceVector {
        &self.combined_resources
    }

    /// Combined performance under the throughput-consistency rule.
    pub fn combined_performance(&self) -> Performance {
        self.combined_performance
    }

    /// The generated data-plane source (all models concatenated).
    pub fn code(&self) -> &str {
        &self.combined_code
    }

    /// Serializes the artifact to a pretty-printed JSON string — the
    /// portable form: everything needed to serve (IRs, normalizers,
    /// generated code, histories) survives; the executable pipelines are
    /// re-lowered on load and classify bit-identically.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Subsystem`] on serialization failure.
    pub fn to_json_string(&self) -> Result<String> {
        serde_json::to_string_pretty(&self.to_json())
            .map_err(|e| CoreError::Subsystem(format!("serializing artifact: {e}")))
    }

    /// Decodes an artifact from its
    /// [`to_json_string`](CompiledArtifact::to_json_string) form,
    /// re-lowering every report's IR so the artifact is immediately
    /// servable.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Subsystem`] on parse failure, an unknown
    /// format tag, or malformed fields.
    pub fn from_json_str(text: &str) -> Result<Self> {
        let value = serde_json::from_str(text)
            .map_err(|e| CoreError::Subsystem(format!("parsing artifact: {e}")))?;
        CompiledArtifact::from_json(&value)
    }

    /// Decodes an artifact document. See
    /// [`from_json_str`](CompiledArtifact::from_json_str).
    ///
    /// # Errors
    ///
    /// As [`from_json_str`](CompiledArtifact::from_json_str).
    pub fn from_json(value: &Value) -> Result<Self> {
        let format = value["format"].as_str().unwrap_or("<missing>");
        if format != ARTIFACT_FORMAT {
            return Err(CoreError::Subsystem(format!(
                "unsupported artifact format '{format}' (expected '{ARTIFACT_FORMAT}')"
            )));
        }
        let reports = value["reports"]
            .as_array()
            .ok_or_else(|| CoreError::Subsystem("artifact needs a reports array".into()))?
            .iter()
            .map(ModelReport::from_json)
            .collect::<Result<Vec<_>>>()?;
        if reports.is_empty() {
            return Err(CoreError::Subsystem(
                "artifact carries no model reports".into(),
            ));
        }
        Ok(CompiledArtifact {
            reports,
            combined_resources: ResourceVector::from_json(&value["combined_resources"])?,
            combined_performance: Performance::from_json(&value["combined_performance"])?,
            combined_code: value["combined_code"]
                .as_str()
                .ok_or_else(|| CoreError::Subsystem("artifact needs combined_code".into()))?
                .to_string(),
            partial: value["partial"].as_bool().unwrap_or(false),
        })
    }

    /// Writes the artifact as JSON to `path` — compile once, serve
    /// forever: a later process reloads it with
    /// [`load_json`](CompiledArtifact::load_json) and drives
    /// [`build_deployment`](CompiledArtifact::build_deployment) with
    /// bit-identical verdicts, no recompilation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Subsystem`] on serialization or I/O failure.
    pub fn save_json<P: AsRef<std::path::Path>>(&self, path: P) -> Result<()> {
        let path = path.as_ref();
        std::fs::write(path, self.to_json_string()?).map_err(|e| {
            CoreError::Subsystem(format!("writing artifact to {}: {e}", path.display()))
        })
    }

    /// Reads an artifact saved with [`save_json`](CompiledArtifact::save_json)
    /// and runs the static verification layer over it: an artifact with
    /// error-severity `HA` diagnostics (non-finite weights, width
    /// mismatches, degenerate normalizers, broken chain widths) is
    /// refused instead of served. Warnings pass. Use
    /// [`from_json_str`](CompiledArtifact::from_json_str) to decode
    /// without the gate (e.g. for inspection tooling).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Subsystem`] on I/O or decode failure and
    /// [`CoreError::Analysis`] when the verification gate fires.
    pub fn load_json<P: AsRef<std::path::Path>>(path: P) -> Result<Self> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| {
            CoreError::Subsystem(format!("reading artifact from {}: {e}", path.display()))
        })?;
        let artifact = CompiledArtifact::from_json_str(&text)?;
        artifact.verify()?;
        Ok(artifact)
    }

    /// Runs the static verification layer (`homunculus-analysis`) over
    /// every report: interval analysis for per-kernel no-saturation
    /// certificates plus the full artifact lint set. The target word
    /// width is unknown at this point (artifacts do not record their
    /// platform), so format-overflow checks run in their advisory form.
    pub fn analyze(&self) -> homunculus_analysis::ArtifactAnalysis {
        let inputs: Vec<homunculus_analysis::ModelInput<'_>> = self
            .reports
            .iter()
            .map(|report| homunculus_analysis::ModelInput {
                name: &report.name,
                ir: &report.ir,
                format: report.format,
                normalizer: Some(&report.normalizer),
                word_bits: None,
            })
            .collect();
        homunculus_analysis::analyze_models(&inputs)
    }

    /// The validation hook behind [`load_json`](CompiledArtifact::load_json)
    /// and [`load_bin`](CompiledArtifact::load_bin): runs
    /// [`analyze`](CompiledArtifact::analyze) and refuses the artifact on
    /// any error-severity diagnostic.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Analysis`] with every `HA`-coded error
    /// rendered into the message.
    pub fn verify(&self) -> Result<()> {
        let analysis = self.analyze();
        if analysis.has_errors() {
            let rendered: Vec<String> = analysis
                .diagnostics()
                .filter(|d| d.severity == homunculus_analysis::Severity::Error)
                .map(|d| d.to_string())
                .collect();
            return Err(CoreError::Analysis(rendered.join("; ")));
        }
        Ok(())
    }

    /// Encodes the artifact in the compact binary wire format (the
    /// `HJB1` document encoding: length-prefixed, varint-free,
    /// dependency-free, f64/f32 **bit-exact**) — the same document as
    /// the JSON form, several times smaller, for fleets pulling
    /// artifacts at boot. Decode with
    /// [`from_bin_bytes`](CompiledArtifact::from_bin_bytes).
    pub fn to_bin_bytes(&self) -> Vec<u8> {
        serde_json::to_vec_binary(self.to_json())
    }

    /// Decodes an artifact from its
    /// [`to_bin_bytes`](CompiledArtifact::to_bin_bytes) form,
    /// re-lowering every report's IR — a decoded artifact drives
    /// [`build_deployment`](CompiledArtifact::build_deployment) with
    /// verdicts bit-identical to the artifact that was encoded.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Subsystem`] on a corrupt or truncated
    /// document, an unknown format tag, or malformed fields.
    pub fn from_bin_bytes(bytes: &[u8]) -> Result<Self> {
        let value = serde_json::from_slice_binary(bytes)
            .map_err(|e| CoreError::Subsystem(format!("decoding binary artifact: {e}")))?;
        CompiledArtifact::from_json(&value)
    }

    /// Writes the artifact in the binary wire format — the compact twin
    /// of [`save_json`](CompiledArtifact::save_json).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Subsystem`] on I/O failure.
    pub fn save_bin<P: AsRef<std::path::Path>>(&self, path: P) -> Result<()> {
        let path = path.as_ref();
        std::fs::write(path, self.to_bin_bytes()).map_err(|e| {
            CoreError::Subsystem(format!("writing artifact to {}: {e}", path.display()))
        })
    }

    /// Reads an artifact saved with [`save_bin`](CompiledArtifact::save_bin),
    /// gated by the same static verification as
    /// [`load_json`](CompiledArtifact::load_json).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Subsystem`] on I/O or decode failure and
    /// [`CoreError::Analysis`] when the verification gate fires.
    pub fn load_bin<P: AsRef<std::path::Path>>(path: P) -> Result<Self> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| {
            CoreError::Subsystem(format!("reading artifact from {}: {e}", path.display()))
        })?;
        let artifact = CompiledArtifact::from_bin_bytes(&bytes)?;
        artifact.verify()?;
        Ok(artifact)
    }

    /// Builds a multi-tenant [`PipelineServer`] from the schedule's
    /// winning models: one tenant per [`ModelReport`], registered under
    /// the model's name with its deployment normalizer, all compiled
    /// through one shared LUT cache (so a many-model schedule
    /// materializes at most one sigmoid/tanh table per fixed-point
    /// format).
    ///
    /// Look tenants up by model name via
    /// [`PipelineServer::tenant_id`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Subsystem`] if a winning IR fails to lower —
    /// which a trained IR never should.
    pub fn build_server(&self) -> Result<PipelineServer> {
        let mut server = PipelineServer::new();
        for report in &self.reports {
            server
                .register_model(
                    &report.name,
                    &report.ir,
                    report.format,
                    Some(report.normalizer.clone()),
                )
                .map_err(|e| {
                    CoreError::Subsystem(format!(
                        "registering winning model '{}' for serving failed: {e}",
                        report.name
                    ))
                })?;
        }
        Ok(server)
    }

    /// Launches a persistent [`Deployment`] serving the schedule's winning
    /// models: resident workers configured by `builder`, one tenant per
    /// [`ModelReport`] (registered in schedule order under the model's
    /// name with its deployment normalizer), all compiled through the
    /// deployment's shared LUT cache. Unlike
    /// [`build_server`](CompiledArtifact::build_server), the returned
    /// session amortizes worker launch across every subsequent
    /// [`submit`](Deployment::submit).
    ///
    /// Look tenants up by model name via [`Deployment::tenant_id`]; add
    /// QoS weights afterwards by registering extra tenants with
    /// [`Deployment::add_model_with`]. The ingress knobs on `builder` —
    /// per-worker ring capacity, row-budget admission, submit deadlines,
    /// and the windowed-fairness horizon
    /// (`DeploymentBuilder::fairness_window_rows`) — all apply to the
    /// returned session exactly as for a hand-built deployment.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Subsystem`] if a winning IR fails to lower —
    /// which a trained IR never should.
    pub fn build_deployment(&self, builder: DeploymentBuilder) -> Result<Deployment> {
        let deployment = builder.build();
        for report in &self.reports {
            deployment
                .add_model(
                    &report.name,
                    &report.ir,
                    report.format,
                    Some(report.normalizer.clone()),
                )
                .map_err(|e| {
                    CoreError::Subsystem(format!(
                        "deploying winning model '{}' failed: {e}",
                        report.name
                    ))
                })?;
        }
        Ok(deployment)
    }

    /// Registers a *subset* of this artifact's winning models on an
    /// existing deployment — the placement primitive for serving tiers
    /// that draw different tenant sets from one or more artifacts (e.g.
    /// edge switches serving one artifact's anomaly detector while core
    /// switches serve another's traffic classifier). Returns the minted
    /// tenant ids in `names` order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Subsystem`] when a name matches no report or
    /// the deployment rejects a registration (e.g. a duplicate tenant
    /// name from a previously placed artifact).
    pub fn deploy_models(&self, deployment: &Deployment, names: &[&str]) -> Result<Vec<TenantId>> {
        let mut tenants = Vec::with_capacity(names.len());
        for &name in names {
            let report = self
                .reports
                .iter()
                .find(|r| r.name == name)
                .ok_or_else(|| {
                    CoreError::Subsystem(format!(
                        "artifact has no model named '{name}' (available: {})",
                        self.reports
                            .iter()
                            .map(|r| r.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ))
                })?;
            let tenant = deployment
                .add_model(
                    &report.name,
                    &report.ir,
                    report.format,
                    Some(report.normalizer.clone()),
                )
                .map_err(|e| CoreError::Subsystem(format!("placing model '{name}' failed: {e}")))?;
            tenants.push(tenant);
        }
        Ok(tenants)
    }
}

/// JSON document form: `{"format", "partial", "reports": [..],
/// "combined_resources", "combined_performance", "combined_code"}`.
impl ToJson for CompiledArtifact {
    fn to_json(&self) -> Value {
        json!({
            "format": ARTIFACT_FORMAT,
            "partial": self.partial,
            "reports": self.reports,
            "combined_resources": self.combined_resources,
            "combined_performance": self.combined_performance,
            "combined_code": self.combined_code,
        })
    }
}

/// Compiles a platform with default options — the paper's
/// `homunculus.generate(platform)` entry point.
///
/// # Errors
///
/// See [`generate_with`].
pub fn generate(platform: &Platform) -> Result<CompiledArtifact> {
    generate_with(platform, &CompilerOptions::default())
}

/// Compiles a platform: search + train + feasibility-check + codegen for
/// every scheduled model. This is a thin shim over a default
/// [`Compiler`] session running all four stages
/// back to back — staged compiles with the same options produce
/// bit-identical artifacts (stage boundaries never touch an RNG stream);
/// use a session directly for observability, cancellation, or
/// between-stage inspection.
///
/// # Errors
///
/// - [`CoreError::InvalidProgram`] when no schedule is installed.
/// - [`CoreError::NoCandidates`] when the pre-filter removes everything.
/// - [`CoreError::NoFeasibleModel`] when the search budget ends with no
///   feasible configuration.
pub fn generate_with(platform: &Platform, options: &CompilerOptions) -> Result<CompiledArtifact> {
    Compiler::new(*options).open(platform)?.compile()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alchemy::{Metric, ModelSpec};
    use homunculus_datasets::iot::IotTrafficGenerator;
    use homunculus_datasets::nslkdd::NslKddGenerator;

    fn tiny_options() -> CompilerOptions {
        CompilerOptions {
            bo_budget: 8,
            doe_samples: 4,
            train_epochs: 12,
            final_epochs: 25,
            sample_cap: Some(600),
            parallel: true,
            seed: 0,
            time_budget: None,
        }
    }

    #[test]
    fn options_json_roundtrip_preserves_every_field() {
        let mut options = tiny_options();
        options.time_budget = Some(std::time::Duration::from_millis(1_500));
        let reloaded = CompilerOptions::from_json(&options.to_json()).unwrap();
        assert_eq!(reloaded, options);

        // `null` optionals decode as None.
        let defaults = CompilerOptions::default();
        assert_eq!(
            CompilerOptions::from_json(&defaults.to_json()).unwrap(),
            defaults
        );

        // Mistyped fields are typed checkpoint errors, not panics.
        let mut doc = options.to_json();
        if let Value::Object(map) = &mut doc {
            map.insert("seed".into(), Value::String("not a number".into()));
        }
        assert!(matches!(
            CompilerOptions::from_json(&doc),
            Err(CoreError::Checkpoint(_))
        ));
    }

    fn ad_platform(n: usize) -> Platform {
        let spec = ModelSpec::builder("anomaly_detection")
            .optimization_metric(Metric::F1)
            .algorithm(Algorithm::Dnn)
            .data(NslKddGenerator::new(1).generate(n))
            .build()
            .unwrap();
        let mut platform = Platform::taurus();
        platform
            .constraints_mut()
            .throughput_gpps(1.0)
            .latency_ns(500.0)
            .grid(16, 16);
        platform.schedule(spec).unwrap();
        platform
    }

    #[test]
    fn end_to_end_ad_compile() {
        let artifact = generate_with(&ad_platform(900), &tiny_options()).unwrap();
        let best = artifact.best();
        assert_eq!(best.name, "anomaly_detection");
        assert_eq!(best.algorithm, Algorithm::Dnn);
        assert!(best.objective > 0.5, "objective {}", best.objective);
        assert!(best.code.contains("@spatial object AnomalyDetection"));
        assert!(best.estimate.resources.get("cus") > 0.0);
        assert_eq!(best.estimate.performance.throughput_gpps, 1.0);
        // History has exactly the budgeted points.
        assert_eq!(best.history.points().len(), 8);
        // An uncancelled compile is never partial.
        assert!(!artifact.is_partial());
        // The winner carries its compiled integer twin, ready to serve.
        let compiled = best
            .compiled
            .as_ref()
            .expect("trained winner lowers to the integer runtime");
        assert_eq!(compiled.n_features(), 7);
        assert_eq!(compiled.n_classes(), 2);
        let mut scratch = homunculus_runtime::Scratch::new();
        assert!(compiled.classify(&[0.25; 7], &mut scratch) < 2);
    }

    #[test]
    fn shim_matches_staged_session_bit_for_bit() {
        let shimmed = generate_with(&ad_platform(600), &tiny_options()).unwrap();
        let staged = Compiler::new(tiny_options())
            .open(&ad_platform(600))
            .unwrap()
            .search()
            .unwrap()
            .train()
            .unwrap()
            .check()
            .unwrap()
            .codegen()
            .unwrap();
        assert_eq!(shimmed.best().objective, staged.best().objective);
        assert_eq!(shimmed.best().code, staged.best().code);
        assert_eq!(shimmed.best().ir, staged.best().ir);
        assert_eq!(shimmed.best().configuration, staged.best().configuration);
        assert_eq!(
            shimmed.best().history.points(),
            staged.best().history.points()
        );
    }

    #[test]
    fn artifact_json_roundtrip_preserves_everything() {
        let artifact = generate_with(&ad_platform(600), &tiny_options()).unwrap();
        let text = artifact.to_json_string().unwrap();
        let reloaded = CompiledArtifact::from_json_str(&text).unwrap();
        assert_eq!(reloaded.reports().len(), artifact.reports().len());
        assert_eq!(reloaded.is_partial(), artifact.is_partial());
        assert_eq!(reloaded.code(), artifact.code());
        assert_eq!(
            reloaded.combined_performance(),
            artifact.combined_performance()
        );
        assert_eq!(reloaded.combined_resources(), artifact.combined_resources());
        let (a, b) = (artifact.best(), reloaded.best());
        assert_eq!(a.name, b.name);
        assert_eq!(a.algorithm, b.algorithm);
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.metric, b.metric);
        assert_eq!(a.configuration, b.configuration);
        assert_eq!(a.estimate, b.estimate);
        assert_eq!(a.ir, b.ir, "weights must round-trip bit-exactly");
        assert_eq!(a.normalizer, b.normalizer);
        assert_eq!(a.history, b.history);
        assert_eq!(a.algorithm_histories, b.algorithm_histories);
        // The reloaded report re-lowered its pipeline and classifies
        // identically.
        let mut scratch = homunculus_runtime::Scratch::new();
        let features = [0.3f32, -0.1, 0.8, 0.0, 0.5, -0.7, 0.2];
        assert_eq!(
            a.compiled
                .as_ref()
                .unwrap()
                .classify(&features, &mut scratch),
            b.compiled
                .as_ref()
                .unwrap()
                .classify(&features, &mut scratch),
        );
        // Re-lowering rebuilds the packed narrow-lane storage too: a
        // reloaded Q3.12 artifact serves from the i16 kernel tier, not a
        // scalar fallback.
        assert_eq!(
            b.compiled.as_ref().unwrap().packed_width(),
            Some(homunculus_ml::quantize::PackedWidth::I16),
        );
    }

    #[test]
    fn artifact_decode_rejects_garbage() {
        assert!(CompiledArtifact::from_json_str("not json").is_err());
        assert!(CompiledArtifact::from_json_str("{}").is_err());
        assert!(CompiledArtifact::from_json_str(
            "{\"format\": \"homunculus.artifact/v0\", \"reports\": []}"
        )
        .is_err());
        assert!(CompiledArtifact::from_json_str(
            "{\"format\": \"homunculus.artifact/v1\", \"reports\": []}"
        )
        .is_err());
    }

    #[test]
    fn unscheduled_platform_rejected() {
        let platform = Platform::taurus();
        assert!(matches!(
            generate_with(&platform, &tiny_options()),
            Err(CoreError::InvalidProgram(_))
        ));
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate_with(&ad_platform(600), &tiny_options()).unwrap();
        let b = generate_with(&ad_platform(600), &tiny_options()).unwrap();
        assert_eq!(a.best().objective, b.best().objective);
        assert_eq!(a.best().code, b.best().code);
    }

    #[test]
    fn kmeans_on_tofino_respects_mat_budget() {
        let spec = ModelSpec::builder("traffic_classification")
            .optimization_metric(Metric::VMeasure)
            .data(IotTrafficGenerator::new(2).generate(700))
            .build()
            .unwrap();
        let mut platform = Platform::tofino();
        platform.constraints_mut().mats(3);
        platform.schedule(spec).unwrap();
        let artifact = generate_with(&platform, &tiny_options()).unwrap();
        let best = artifact.best();
        assert_eq!(best.algorithm, Algorithm::KMeans);
        assert!(
            best.estimate.resources.get("mats") <= 3.0,
            "mats {}",
            best.estimate.resources.get("mats")
        );
        assert!(best.code.contains("table cluster_0"));
    }

    #[test]
    fn multi_model_schedule_sums_resources() {
        let g = NslKddGenerator::new(3);
        let a = ModelSpec::builder("a")
            .algorithm(Algorithm::Dnn)
            .data(g.generate(500))
            .build()
            .unwrap();
        let b = ModelSpec::builder("b")
            .algorithm(Algorithm::Dnn)
            .data(NslKddGenerator::new(4).generate(500))
            .build()
            .unwrap();
        let mut platform = Platform::taurus();
        platform
            .constraints_mut()
            .throughput_gpps(1.0)
            .latency_ns(1_000.0);
        platform.schedule(a >> b).unwrap();
        let artifact = generate_with(&platform, &tiny_options()).unwrap();
        assert_eq!(artifact.reports().len(), 2);
        let sum = artifact.reports()[0].estimate.resources.get("cus")
            + artifact.reports()[1].estimate.resources.get("cus");
        assert_eq!(artifact.combined_resources().get("cus"), sum);
        // Sequential composition sums latency.
        let lat = artifact.reports()[0].estimate.performance.latency_ns
            + artifact.reports()[1].estimate.performance.latency_ns;
        assert!((artifact.combined_performance().latency_ns - lat).abs() < 1e-9);
        assert!(artifact.report("a").is_some());
        assert!(artifact.report("missing").is_none());
        // Combined code contains both pipelines.
        assert!(artifact.code().matches("@spatial object").count() >= 2);

        // The artifact serves: one tenant per winning model, and served
        // verdicts match the report's own compiled pipeline run in
        // isolation on normalized features.
        let server = artifact.build_server().unwrap();
        assert_eq!(server.tenant_count(), 2);
        let tenant = server.tenant_id("a").unwrap();
        let raw = homunculus_ml::tensor::Matrix::from_fn(16, 7, |r, c| (r * 7 + c) as f32 * 0.05);
        #[allow(deprecated)]
        let output = server
            .serve(
                &[homunculus_runtime::TenantBatch::new(tenant, raw.clone())],
                &homunculus_runtime::ServeOptions::default().workers(2),
            )
            .unwrap();
        let report = artifact.report("a").unwrap();
        let mut normalized = raw;
        for r in 0..normalized.rows() {
            report.normalizer.apply(normalized.row_mut(r));
        }
        let isolated = report
            .compiled
            .as_ref()
            .unwrap()
            .classify_batch(&normalized, 1);
        assert_eq!(output.verdicts()[0], isolated);

        // The persistent path serves the same artifact: one submit to a
        // resident-worker deployment yields the same verdicts — ring
        // ingress and admission knobs included.
        let deployment = artifact
            .build_deployment(
                homunculus_runtime::Deployment::builder()
                    .workers(2)
                    .ring_capacity(8)
                    .chunk_rows(4)
                    .max_queued_rows(1024)
                    .fairness_window_rows(512),
            )
            .unwrap();
        assert_eq!(deployment.tenant_count(), 2);
        let tenant = deployment.tenant_id("a").unwrap();
        let raw = homunculus_ml::tensor::Matrix::from_fn(16, 7, |r, c| (r * 7 + c) as f32 * 0.05);
        let deployed = deployment
            .submit(homunculus_runtime::TenantBatch::new(tenant, raw))
            .unwrap()
            .wait();
        assert_eq!(deployed.into_vec(), isolated);
        deployment.shutdown();
    }

    #[test]
    fn infeasible_constraints_reported() {
        // A 2x2 grid cannot host any DNN at 1 GPkt/s with latency 500 ns:
        // candidate pre-filtering should already reject everything.
        let spec = ModelSpec::builder("impossible")
            .algorithm(Algorithm::Dnn)
            .data(NslKddGenerator::new(5).generate(300))
            .build()
            .unwrap();
        let mut platform = Platform::taurus();
        platform.constraints_mut().grid(2, 2).latency_ns(10.0);
        platform.schedule(spec).unwrap();
        let result = generate_with(&platform, &tiny_options());
        assert!(
            matches!(
                result,
                Err(CoreError::NoCandidates(_)) | Err(CoreError::NoFeasibleModel(_))
            ),
            "expected failure, got {result:?}"
        );
    }
}

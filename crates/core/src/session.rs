//! Staged compilation sessions: observable stages, cooperative
//! cancellation, and typed stage handles.
//!
//! [`generate_with`](crate::pipeline::generate_with) hides the whole
//! compile — search, train, feasibility check, code generation — behind
//! one blocking call. A [`Compiler`] session exposes the same pipeline as
//! **typed stage handles** instead, so callers can inspect, log, persist,
//! or stop between stages:
//!
//! | Stage call | Hands back | What ran |
//! |---|---|---|
//! | [`Compiler::open`] | [`Session`] | schedule validation, resource-share scaling |
//! | [`Session::search`] | [`Searched`] | per-app BO candidate searches (parallel across algorithms) |
//! | [`Searched::train`] | [`Trained`] | winner selection + final retrain with restarts |
//! | [`Trained::check`] | [`Feasible`] | resource/performance estimation of the final models |
//! | [`Feasible::codegen`] | [`CompiledArtifact`] | backend code generation + integer lowering |
//!
//! Every stage emits [`CompileEvent`]s through an optional
//! [`CompileObserver`] — per-BO-iteration [`CompileEvent::CandidateEvaluated`],
//! per-stage [`CompileEvent::StageStarted`]/[`CompileEvent::StageFinished`]
//! with wall-clock timings, and [`CompileEvent::FeasibilityRejected`]
//! naming the violated constraint — and honors a cooperative
//! [`CancelToken`] at BO iteration boundaries: cancelling yields the
//! best-so-far models as a *partial* artifact
//! ([`CompiledArtifact::is_partial`]), not an error. (The one case with
//! nothing to yield — cancellation before *any* feasible candidate was
//! evaluated — fails like an exhausted search, with
//! [`CoreError::NoFeasibleModel`] naming the cancellation.)
//!
//! The one-shot entry points are thin shims over a default session, so a
//! staged compile is bit-identical to `generate_with` under the same
//! options: stage boundaries never touch an RNG stream.
//!
//! ```no_run
//! use homunculus_core::alchemy::{Metric, ModelSpec, Platform};
//! use homunculus_core::pipeline::CompilerOptions;
//! use homunculus_core::session::{CompileEvent, Compiler};
//! use homunculus_datasets::nslkdd::NslKddGenerator;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), homunculus_core::CoreError> {
//! let model = ModelSpec::builder("anomaly_detection")
//!     .optimization_metric(Metric::F1)
//!     .data(NslKddGenerator::new(42).generate(4_000))
//!     .build()?;
//! let mut platform = Platform::taurus();
//! platform
//!     .constraints_mut()
//!     .throughput_gpps(1.0)
//!     .latency_ns(500.0)
//!     .grid(16, 16);
//! platform.schedule(model)?;
//!
//! let compiler = Compiler::new(CompilerOptions::fast()).observe(Arc::new(
//!     |event: &CompileEvent| {
//!         if let CompileEvent::CandidateEvaluated { iteration, objective, .. } = event {
//!             println!("iteration {iteration}: objective {objective:.3}");
//!         }
//!     },
//! ));
//! let searched = compiler.open(&platform)?.search()?;
//! println!("{} BO evaluations ran", searched.evaluations());
//! let artifact = searched.train()?.check()?.codegen()?;
//! artifact.save_json("anomaly_detection.artifact.json")?;
//! # Ok(())
//! # }
//! ```

use crate::alchemy::Metric;
use crate::alchemy::{Algorithm, ModelSpec, Platform};
use crate::candidates::candidate_algorithms;
use crate::pipeline::{CompiledArtifact, CompilerOptions, ModelReport};
use crate::spaces::design_space_for;
use crate::trainer::{
    normalized_split, normalized_split_with, retrain_winner, train_candidate, TrainBudget,
    EFFICIENCY_SLACK,
};
use crate::{CoreError, Result};
use homunculus_backends::model::ModelIr;
use homunculus_backends::resources::{Constraints, Performance, ResourceEstimate, ResourceVector};
use homunculus_datasets::dataset::{Normalizer, Split};
use homunculus_ml::quantize::FixedPoint;
use homunculus_optimizer::space::Configuration;
use homunculus_optimizer::{
    BayesianOptimizer, Evaluation, OptimizationHistory, OptimizerOptions, SearchControl,
};
use homunculus_runtime::Compile;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A cooperative cancellation handle shared between a session and the
/// caller that wants to stop it. Cloning is cheap (one `Arc`); cancelling
/// from any clone is observed by all. The session honors cancellation at
/// BO **iteration boundaries**: in-flight training finishes, no further
/// candidates are evaluated, and the remaining stages run on the
/// best-so-far state so the caller still receives a usable (partial)
/// artifact — provided at least one feasible candidate was evaluated
/// before the cancel landed; a session with no winner at all has nothing
/// to build and fails with [`CoreError::NoFeasibleModel`], exactly as an
/// exhausted search would.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// The four stages of a compile session, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompileStage {
    /// BO candidate search across algorithms (per scheduled model).
    Search,
    /// Winner selection and final retraining.
    Train,
    /// Resource/performance estimation and feasibility verdicts.
    Check,
    /// Backend code generation and integer lowering.
    Codegen,
}

impl CompileStage {
    /// Lowercase stage name for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            CompileStage::Search => "search",
            CompileStage::Train => "train",
            CompileStage::Check => "check",
            CompileStage::Codegen => "codegen",
        }
    }
}

/// One observable moment of a compile session.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileEvent {
    /// A stage began. `model` is `None` for the stage as a whole and
    /// `Some(name)` for each scheduled model's slice of it.
    StageStarted {
        /// Which stage.
        stage: CompileStage,
        /// The model this event scopes to, if per-model.
        model: Option<String>,
    },
    /// A stage (or a model's slice of it) completed, successfully or not.
    StageFinished {
        /// Which stage.
        stage: CompileStage,
        /// The model this event scopes to, if per-model.
        model: Option<String>,
        /// Wall-clock duration of the stage in nanoseconds.
        elapsed_ns: u64,
    },
    /// One BO iteration finished: a candidate was trained and checked
    /// (emitted from the optimizer loop, per evaluation, in order within
    /// each algorithm's search — searches of different algorithms run in
    /// parallel, so events of different algorithms interleave).
    CandidateEvaluated {
        /// The scheduled model being searched.
        model: String,
        /// The algorithm whose design space produced the candidate.
        algorithm: Algorithm,
        /// 0-based evaluation index within this algorithm's search.
        iteration: usize,
        /// The candidate's objective on the held-out split.
        objective: f64,
        /// Whether the candidate fit the platform budget.
        feasible: bool,
        /// Relative constraint-violation magnitude (0.0 when feasible).
        violation: f64,
    },
    /// A candidate (or a final model, during [`Trained::check`]) violated
    /// the platform constraints.
    FeasibilityRejected {
        /// The scheduled model.
        model: String,
        /// The algorithm the rejected candidate belongs to.
        algorithm: Algorithm,
        /// Human-readable description of the violated constraint(s),
        /// e.g. `"cus usage 310.0 > cap 256.0"`.
        constraint: String,
    },
    /// One final-retrain restart finished (emitted from the trainer).
    FinalTrainAttempt {
        /// The scheduled model being retrained.
        model: String,
        /// The winning algorithm.
        algorithm: Algorithm,
        /// 0-based restart index.
        restart: u64,
        /// The restart's objective on the held-out split.
        objective: f64,
    },
    /// The session observed its [`CancelToken`]; subsequent stages run on
    /// best-so-far state and the artifact is marked partial.
    Cancelled {
        /// The stage during which cancellation was first observed.
        stage: CompileStage,
    },
}

/// Receives [`CompileEvent`]s as a session runs. Implementations must be
/// `Send + Sync`: candidate searches run on parallel threads, so events
/// of different algorithms arrive concurrently. Closures qualify:
///
/// ```
/// use homunculus_core::session::{CompileEvent, CompileObserver};
///
/// let printer = |event: &CompileEvent| println!("{event:?}");
/// fn takes_observer(_: &dyn CompileObserver) {}
/// takes_observer(&printer);
/// ```
pub trait CompileObserver: Send + Sync {
    /// Called once per event, possibly from several threads.
    fn on_event(&self, event: &CompileEvent);
}

impl<F> CompileObserver for F
where
    F: Fn(&CompileEvent) + Send + Sync,
{
    fn on_event(&self, event: &CompileEvent) {
        self(event)
    }
}

/// A [`CompileObserver`] that records every event — handy in tests and
/// for post-hoc timing reports (the `compile_stages` bench uses one).
#[derive(Debug, Default)]
pub struct CollectingObserver {
    events: std::sync::Mutex<Vec<CompileEvent>>,
}

impl CollectingObserver {
    /// An empty collector.
    pub fn new() -> Self {
        CollectingObserver::default()
    }

    /// A snapshot of the events recorded so far, in arrival order.
    pub fn events(&self) -> Vec<CompileEvent> {
        self.events.lock().expect("observer poisoned").clone()
    }

    /// Number of recorded events matching `predicate`.
    pub fn count(&self, predicate: impl Fn(&CompileEvent) -> bool) -> usize {
        self.events
            .lock()
            .expect("observer poisoned")
            .iter()
            .filter(|e| predicate(e))
            .count()
    }
}

impl CompileObserver for CollectingObserver {
    fn on_event(&self, event: &CompileEvent) {
        self.events
            .lock()
            .expect("observer poisoned")
            .push(event.clone());
    }
}

/// Session-wide state threaded through every stage handle.
struct Ctx<'p> {
    platform: &'p Platform,
    options: CompilerOptions,
    observer: Option<Arc<dyn CompileObserver>>,
    cancel: CancelToken,
    /// Per-model resource budget: the platform constraints with every
    /// resource cap divided by the number of scheduled models (the Table 4
    /// experiment: "they are each allocated half of the switch's
    /// resources"). Performance clauses are per-model and stay unchanged.
    constraints: Constraints,
    /// Set once the session has emitted [`CompileEvent::Cancelled`].
    cancel_reported: AtomicBool,
}

impl Ctx<'_> {
    fn emit(&self, event: CompileEvent) {
        if let Some(observer) = &self.observer {
            observer.on_event(&event);
        }
    }

    /// The scheduled model specs, in schedule order.
    fn specs(&self) -> Vec<&ModelSpec> {
        self.platform
            .schedule_expr()
            .expect("schedule validated by Compiler::open")
            .models()
    }

    /// Emits [`CompileEvent::Cancelled`] the first time the session sees
    /// its token tripped during `stage`.
    fn note_cancelled(&self, stage: CompileStage) {
        if self.cancel.is_cancelled() && !self.cancel_reported.swap(true, Ordering::Relaxed) {
            self.emit(CompileEvent::Cancelled { stage });
        }
    }

    /// Runs `body` bracketed by stage start/finish events with wall-clock
    /// timing (the finish event fires even when the stage errors, so
    /// observers always see the bracket closed).
    fn staged<T>(
        &self,
        stage: CompileStage,
        model: Option<&str>,
        body: impl FnOnce() -> Result<T>,
    ) -> Result<T> {
        self.emit(CompileEvent::StageStarted {
            stage,
            model: model.map(str::to_string),
        });
        let start = Instant::now();
        let result = body();
        self.emit(CompileEvent::StageFinished {
            stage,
            model: model.map(str::to_string),
            elapsed_ns: start.elapsed().as_nanos() as u64,
        });
        result
    }
}

/// Configures and opens compile sessions. See the [module docs](self) for
/// the stage table and a full example.
pub struct Compiler {
    options: CompilerOptions,
    observer: Option<Arc<dyn CompileObserver>>,
    cancel: CancelToken,
}

impl Compiler {
    /// A compiler with the given options, no observer, and a fresh cancel
    /// token.
    pub fn new(options: CompilerOptions) -> Self {
        Compiler {
            options,
            observer: None,
            cancel: CancelToken::new(),
        }
    }

    /// Installs an event observer (replacing any previous one).
    #[must_use]
    pub fn observe(mut self, observer: Arc<dyn CompileObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// A clone of the session's [`CancelToken`] — keep it before calling
    /// [`open`](Compiler::open) to be able to stop the session from
    /// another thread.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Opens a session over a scheduled platform.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidProgram`] when the platform has no
    /// scheduled models.
    pub fn open(self, platform: &Platform) -> Result<Session<'_>> {
        let schedule = platform
            .schedule_expr()
            .ok_or_else(|| CoreError::InvalidProgram("platform has no scheduled models".into()))?;
        let share = schedule.models().len().max(1) as f64;
        let constraints = scaled_constraints(&platform.effective_constraints(), share);
        Ok(Session {
            ctx: Ctx {
                platform,
                options: self.options,
                observer: self.observer,
                cancel: self.cancel,
                constraints,
                cancel_reported: AtomicBool::new(false),
            },
        })
    }
}

/// An open compile session, ready to [`search`](Session::search).
pub struct Session<'p> {
    ctx: Ctx<'p>,
}

impl<'p> Session<'p> {
    /// Runs all four stages back to back — what
    /// [`generate_with`](crate::pipeline::generate_with) does.
    ///
    /// # Errors
    ///
    /// See the individual stages.
    pub fn compile(self) -> Result<CompiledArtifact> {
        self.search()?.train()?.check()?.codegen()
    }

    /// Stage 1 — **search**: one BO candidate search per surviving
    /// algorithm per scheduled model (parallel across algorithms when
    /// [`CompilerOptions::parallel`] is set), each evaluation training a
    /// candidate and checking it against the platform budget.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoCandidates`] when platform pre-filtering
    /// removes every algorithm for some model. Individual search failures
    /// are *recorded*, not raised — they only surface from
    /// [`Searched::train`] if no sibling search produced a winner.
    pub fn search(self) -> Result<Searched<'p>> {
        let ctx = self.ctx;
        let searches = ctx.staged(CompileStage::Search, None, || {
            ctx.note_cancelled(CompileStage::Search);
            let specs = ctx.specs();
            let mut searches = Vec::with_capacity(specs.len());
            for (index, spec) in specs.iter().enumerate() {
                let runs = ctx.staged(CompileStage::Search, Some(&spec.name), || {
                    search_model(&ctx, spec, index as u64)
                })?;
                searches.push(SearchedModel {
                    name: spec.name.clone(),
                    runs,
                });
            }
            Ok(searches)
        })?;
        Ok(Searched { ctx, searches })
    }
}

/// One model's candidate sets after the search stage: every algorithm's
/// full [`OptimizationHistory`] (or the error that ended its search).
pub struct SearchedModel {
    name: String,
    runs: Vec<(Algorithm, Result<OptimizationHistory>)>,
}

impl SearchedModel {
    /// The scheduled model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Every algorithm's search outcome, in candidate-preference order.
    pub fn runs(&self) -> &[(Algorithm, Result<OptimizationHistory>)] {
        &self.runs
    }

    /// Total BO evaluations across this model's searches.
    pub fn evaluations(&self) -> usize {
        self.runs
            .iter()
            .filter_map(|(_, run)| run.as_ref().ok())
            .map(|history| history.points().len())
            .sum()
    }

    /// The best feasible candidate across all algorithms (efficiency
    /// tie-break applied within each history), if any search found one.
    pub fn best(&self) -> Option<(Algorithm, f64)> {
        self.runs
            .iter()
            .filter_map(|(algorithm, run)| {
                let history = run.as_ref().ok()?;
                let best = history.best_efficient(EFFICIENCY_SLACK, "params")?;
                Some((*algorithm, best.evaluation.objective))
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    }
}

/// Stage-1 output: per-app BO candidate sets, ready to
/// [`train`](Searched::train).
pub struct Searched<'p> {
    ctx: Ctx<'p>,
    searches: Vec<SearchedModel>,
}

impl<'p> Searched<'p> {
    /// Per-model candidate sets, in schedule order.
    pub fn searches(&self) -> &[SearchedModel] {
        &self.searches
    }

    /// Total BO evaluations across the whole session.
    pub fn evaluations(&self) -> usize {
        self.searches.iter().map(SearchedModel::evaluations).sum()
    }

    /// Stage 2 — **train**: selects each model's winner (best feasible
    /// objective across algorithms, cheapest-within-slack tie-break) and
    /// retrains it on the full dataset with the final epoch budget and
    /// deterministic restarts.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoFeasibleModel`] (or the first recorded
    /// search error) for a model whose searches produced no feasible
    /// candidate, and [`CoreError::Subsystem`] for training failures.
    pub fn train(self) -> Result<Trained<'p>> {
        let ctx = self.ctx;
        let searches = self.searches;
        let models = ctx.staged(CompileStage::Train, None, || {
            ctx.note_cancelled(CompileStage::Train);
            let specs = ctx.specs();
            let mut models = Vec::with_capacity(searches.len());
            for (spec, search) in specs.iter().zip(searches) {
                let model = ctx.staged(CompileStage::Train, Some(&spec.name), || {
                    train_model(&ctx, spec, search)
                })?;
                models.push(model);
            }
            Ok(models)
        })?;
        Ok(Trained { ctx, models })
    }
}

/// One model after winner selection and final retraining.
pub struct TrainedModel {
    name: String,
    algorithm: Algorithm,
    metric: Metric,
    configuration: Configuration,
    objective: f64,
    ir: ModelIr,
    normalizer: Normalizer,
    history: OptimizationHistory,
    algorithm_histories: Vec<(Algorithm, OptimizationHistory)>,
}

impl TrainedModel {
    /// The scheduled model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The winning algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The metric the objective was measured with.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The feature normalizer the final model was trained under.
    pub fn normalizer(&self) -> &Normalizer {
        &self.normalizer
    }

    /// The winning configuration.
    pub fn configuration(&self) -> &Configuration {
        &self.configuration
    }

    /// The final retrained objective on the held-out split.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// The final trained model IR.
    pub fn ir(&self) -> &ModelIr {
        &self.ir
    }
}

/// Stage-2 output: winners retrained, ready to [`check`](Trained::check).
pub struct Trained<'p> {
    ctx: Ctx<'p>,
    models: Vec<TrainedModel>,
}

impl<'p> Trained<'p> {
    /// Per-model winners, in schedule order.
    pub fn models(&self) -> &[TrainedModel] {
        &self.models
    }

    /// Stage 3 — **check**: estimates each final model's resources and
    /// performance on the target and re-checks them against the per-model
    /// constraint share. The verdict is *advisory* for the final models —
    /// every candidate already passed this exact check inside the search
    /// loop, so a final violation (possible only for data-dependent shapes
    /// like tree depth shifting on the full dataset) is reported through
    /// [`Feasible::violations`] and [`CompileEvent::FeasibilityRejected`]
    /// rather than discarding a trained winner.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Subsystem`] when the target cannot estimate a
    /// final IR at all.
    pub fn check(self) -> Result<Feasible<'p>> {
        let ctx = self.ctx;
        let trained = self.models;
        let models = ctx.staged(CompileStage::Check, None, || {
            ctx.note_cancelled(CompileStage::Check);
            let target = ctx.platform.effective_target();
            let mut models = Vec::with_capacity(trained.len());
            for model in trained {
                let name = model.name.clone();
                let checked = ctx.staged(CompileStage::Check, Some(&name), || {
                    let estimate = target.as_target().estimate(&model.ir)?;
                    let report = target.as_target().check(&model.ir, &ctx.constraints)?;
                    let violations: Vec<String> =
                        report.violations.iter().map(|v| v.to_string()).collect();
                    if !report.is_feasible() {
                        ctx.emit(CompileEvent::FeasibilityRejected {
                            model: model.name.clone(),
                            algorithm: model.algorithm,
                            constraint: violations.join("; "),
                        });
                    }
                    Ok(CheckedModel {
                        model,
                        estimate,
                        violations,
                    })
                })?;
                models.push(checked);
            }
            Ok(models)
        })?;
        Ok(Feasible { ctx, models })
    }
}

/// One model with its final resource estimate and feasibility verdict.
pub struct CheckedModel {
    model: TrainedModel,
    estimate: ResourceEstimate,
    violations: Vec<String>,
}

impl CheckedModel {
    /// The trained model under the verdict.
    pub fn model(&self) -> &TrainedModel {
        &self.model
    }

    /// The final resource/performance estimate.
    pub fn estimate(&self) -> &ResourceEstimate {
        &self.estimate
    }

    /// Violated constraints (empty when the final model fits its share).
    pub fn violations(&self) -> &[String] {
        &self.violations
    }
}

/// Stage-3 output: estimated and verdicted models, ready to
/// [`codegen`](Feasible::codegen).
pub struct Feasible<'p> {
    ctx: Ctx<'p>,
    models: Vec<CheckedModel>,
}

impl Feasible<'_> {
    /// Per-model verdicts, in schedule order.
    pub fn models(&self) -> &[CheckedModel] {
        &self.models
    }

    /// Whether every final model fits its constraint share.
    pub fn is_feasible(&self) -> bool {
        self.models.iter().all(|m| m.violations.is_empty())
    }

    /// Every `(model name, violation)` pair across the schedule.
    pub fn violations(&self) -> Vec<(String, String)> {
        self.models
            .iter()
            .flat_map(|m| {
                m.violations
                    .iter()
                    .map(|v| (m.model.name.clone(), v.clone()))
            })
            .collect()
    }

    /// Stage 4 — **codegen**: generates target code for every winner,
    /// lowers it to the integer runtime, and assembles the
    /// [`CompiledArtifact`] (combined resources/performance under the
    /// schedule's composition rules). An artifact built after cancellation
    /// is marked [partial](CompiledArtifact::is_partial).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Subsystem`] for code-generation failures.
    pub fn codegen(self) -> Result<CompiledArtifact> {
        let ctx = self.ctx;
        let checked = self.models;
        ctx.staged(CompileStage::Codegen, None, || {
            ctx.note_cancelled(CompileStage::Codegen);
            let target = ctx.platform.effective_target();
            let mut reports = Vec::with_capacity(checked.len());
            for CheckedModel {
                model, estimate, ..
            } in checked
            {
                let name = model.name.clone();
                let report = ctx.staged(CompileStage::Codegen, Some(&name), || {
                    let code = target.as_target().generate_code(&model.ir, &model.name)?;
                    // Lower the winner to the integer runtime — the
                    // executable twin of the generated data-plane code. A
                    // trained IR always lowers; failure would indicate an
                    // IR bug, so it degrades to None rather than
                    // invalidating an otherwise complete compile. The
                    // format is recorded on the report so save/load and
                    // the serving builders re-lower identically.
                    let format = FixedPoint::taurus_default();
                    let compiled = model.ir.compile(format).ok();
                    Ok(ModelReport {
                        name: model.name,
                        algorithm: model.algorithm,
                        objective: model.objective,
                        metric: model.metric,
                        configuration: model.configuration,
                        estimate,
                        ir: model.ir,
                        format,
                        compiled,
                        normalizer: model.normalizer,
                        code,
                        history: model.history,
                        algorithm_histories: model.algorithm_histories,
                    })
                })?;
                reports.push(report);
            }

            let schedule = ctx
                .platform
                .schedule_expr()
                .expect("schedule validated by Compiler::open");
            let resources: Vec<ResourceVector> = reports
                .iter()
                .map(|r| r.estimate.resources.clone())
                .collect();
            let performances: Vec<Performance> =
                reports.iter().map(|r| r.estimate.performance).collect();
            let combined_resources = schedule.combined_resources(&resources);
            let combined_performance = schedule.combined_performance(&performances);
            let combined_code = reports
                .iter()
                .map(|r| r.code.as_str())
                .collect::<Vec<_>>()
                .join("\n");
            Ok(CompiledArtifact::assemble(
                reports,
                combined_resources,
                combined_performance,
                combined_code,
                ctx.cancel.is_cancelled(),
            ))
        })
    }
}

/// Divides every resource cap by `share` (performance clauses are
/// per-model and stay unchanged).
fn scaled_constraints(constraints: &Constraints, share: f64) -> Constraints {
    let mut scaled = Constraints::new();
    if let Some(t) = constraints.min_throughput_gpps {
        scaled = scaled.throughput_gpps(t);
    }
    if let Some(l) = constraints.max_latency_ns {
        scaled = scaled.latency_ns(l);
    }
    for (name, cap) in constraints.budget.iter() {
        scaled = scaled.resource(name.clone(), cap / share);
    }
    scaled
}

/// Stage-1 body for one model: candidate selection and the per-algorithm
/// BO runs (Figure 2's "Parallel Candidate Runs"). A panic in one
/// candidate's search is captured and surfaced as a `CoreError` for that
/// algorithm instead of aborting the whole compile: the remaining
/// candidates still finish, and the caller sees which search died and why.
fn search_model(
    ctx: &Ctx<'_>,
    spec: &ModelSpec,
    model_index: u64,
) -> Result<Vec<(Algorithm, Result<OptimizationHistory>)>> {
    let options = &ctx.options;
    let algorithms = candidate_algorithms(spec, ctx.platform)?;
    let search_dataset = match options.sample_cap {
        Some(cap) if spec.dataset.len() > cap => {
            let fraction = cap as f64 / spec.dataset.len() as f64;
            spec.dataset.stratified_split(fraction, options.seed)?.test
        }
        _ => spec.dataset.clone(),
    };
    let split = normalized_split(&search_dataset, spec.test_fraction, options.seed)?;

    let runs: Vec<(Algorithm, Result<OptimizationHistory>)> =
        if options.parallel && algorithms.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = algorithms
                    .iter()
                    .map(|&algorithm| {
                        let split_ref = &split;
                        let handle = scope.spawn(move || {
                            search_algorithm(ctx, spec, algorithm, split_ref, model_index)
                        });
                        (algorithm, handle)
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|(algorithm, handle)| {
                        let run = handle.join().unwrap_or_else(|payload| {
                            Err(CoreError::Subsystem(format!(
                                "search thread for {} panicked: {}",
                                algorithm.name(),
                                panic_message(payload.as_ref())
                            )))
                        });
                        (algorithm, run)
                    })
                    .collect()
            })
        } else {
            algorithms
                .iter()
                .map(|&algorithm| {
                    (
                        algorithm,
                        search_algorithm(ctx, spec, algorithm, &split, model_index),
                    )
                })
                .collect()
        };
    Ok(runs)
}

/// Stage-2 body for one model: winner selection across algorithms with the
/// efficiency tie-break (§3: "the most efficient model will use as many
/// resources as needed without over-provisioning" — among configurations
/// within [`EFFICIENCY_SLACK`] of the best objective, the one with the
/// fewest parameters wins), then the final retrain.
fn train_model(ctx: &Ctx<'_>, spec: &ModelSpec, search: SearchedModel) -> Result<TrainedModel> {
    let mut algorithm_histories = Vec::new();
    let mut winner: Option<(Algorithm, Configuration, f64)> = None;
    let mut first_error: Option<CoreError> = None;
    for (algorithm, run) in search.runs {
        // One failed (or panicked) search does not doom the compile as
        // long as another candidate produced a feasible model; the error
        // is only surfaced when nothing won.
        let history = match run {
            Ok(history) => history,
            Err(error) => {
                first_error.get_or_insert(error);
                continue;
            }
        };
        if let Some(best) = history.best_efficient(EFFICIENCY_SLACK, "params") {
            let better = winner
                .as_ref()
                .map_or(true, |(_, _, obj)| best.evaluation.objective > *obj);
            if better {
                winner = Some((
                    algorithm,
                    best.configuration.clone(),
                    best.evaluation.objective,
                ));
            }
        }
        algorithm_histories.push((algorithm, history));
    }
    let (algorithm, configuration, winner_objective) = match winner {
        Some(winner) => winner,
        None => {
            // A session cancelled before any feasible candidate existed
            // has no best-so-far to hand back: "partial artifact" needs
            // at least one winner. Name the cancellation so the caller
            // can tell an early cancel from a genuinely exhausted search.
            let reason = if ctx.cancel.is_cancelled() {
                "session cancelled before a feasible configuration was found"
            } else {
                "search budget exhausted without a feasible configuration"
            };
            return Err(first_error.unwrap_or_else(|| {
                CoreError::NoFeasibleModel(format!("model '{}': {reason}", spec.name))
            }));
        }
    };

    let (final_split, normalizer) =
        normalized_split_with(&spec.dataset, spec.test_fraction, ctx.options.seed)?;
    let trained = retrain_winner(
        algorithm,
        &configuration,
        &final_split,
        spec.optimization_metric,
        &ctx.options,
        winner_objective,
        |restart, objective| {
            ctx.emit(CompileEvent::FinalTrainAttempt {
                model: spec.name.clone(),
                algorithm,
                restart,
                objective,
            });
        },
    )?;

    let history = algorithm_histories
        .iter()
        .find(|(a, _)| *a == algorithm)
        .map(|(_, h)| h.clone())
        .expect("winner came from a recorded run");

    Ok(TrainedModel {
        name: spec.name.clone(),
        algorithm,
        metric: spec.optimization_metric,
        configuration,
        objective: trained.objective,
        ir: trained.ir,
        normalizer,
        history,
        algorithm_histories,
    })
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(message) = payload.downcast_ref::<&'static str>() {
        message
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message
    } else {
        "non-string panic payload"
    }
}

/// Violation sentinel for configurations that failed to train or to
/// estimate at all: large against real violation scores (O(1..100)) so the
/// phase-1 feasibility descent never walks toward them, but finite enough
/// to survive the surrogate's f32 cast.
const BROKEN_CANDIDATE_VIOLATION: f64 = 1e6;

/// One algorithm's BO search: the black-box objective is
/// train-estimate-feasibility-check. Emits
/// [`CompileEvent::CandidateEvaluated`] per iteration through the
/// optimizer's monitor hook, and honors the session's [`CancelToken`] at
/// iteration boundaries (a stopped search returns its truncated
/// best-so-far history as `Ok`).
fn search_algorithm(
    ctx: &Ctx<'_>,
    spec: &ModelSpec,
    algorithm: Algorithm,
    split: &Split,
    model_index: u64,
) -> Result<OptimizationHistory> {
    let options = &ctx.options;
    let space = design_space_for(algorithm, spec, ctx.platform)?;
    let target = ctx.platform.effective_target();
    let seed = options
        .seed
        .wrapping_add(model_index.wrapping_mul(0x9E37))
        .wrapping_add(algorithm as u64 * 0x79B9);
    let optimizer_options = OptimizerOptions::default()
        .budget(options.bo_budget)
        .doe_samples(options.doe_samples.min(options.bo_budget))
        .seed(seed);
    let budget = TrainBudget {
        epochs: options.train_epochs,
        seed,
    };

    let objective = |config: &Configuration| {
        match train_candidate(algorithm, config, split, spec.optimization_metric, budget) {
            Ok(candidate) => match target.as_target().check(&candidate.ir, &ctx.constraints) {
                Ok(report) => {
                    if !report.is_feasible() && ctx.observer.is_some() {
                        let constraint = report
                            .violations
                            .iter()
                            .map(|v| v.to_string())
                            .collect::<Vec<_>>()
                            .join("; ");
                        ctx.emit(CompileEvent::FeasibilityRejected {
                            model: spec.name.clone(),
                            algorithm,
                            constraint,
                        });
                    }
                    let mut evaluation = Evaluation::new(candidate.objective)
                        .feasible(report.is_feasible())
                        .with_violation(report.violation_score())
                        .with_metric("params", candidate.ir.param_count() as f64);
                    if let Ok(estimate) = target.as_target().estimate(&candidate.ir) {
                        for (name, value) in estimate.resources.iter() {
                            evaluation = evaluation.with_metric(name.clone(), *value);
                        }
                        evaluation = evaluation
                            .with_metric("latency_ns", estimate.performance.latency_ns)
                            .with_metric("throughput_gpps", estimate.performance.throughput_gpps);
                    }
                    evaluation
                }
                // An uncheckable configuration must not look attractive
                // to the phase-1 violation descent (violation would
                // default to 0.0 — the global minimum). The sentinel is
                // large against real violation scores (O(1..100)) but
                // stays finite through the surrogate's f32 cast.
                Err(_) => Evaluation::new(candidate.objective)
                    .feasible(false)
                    .with_violation(BROKEN_CANDIDATE_VIOLATION),
            },
            // A configuration that fails to train at all is infeasible —
            // same poisoning guard as above.
            Err(_) => Evaluation::new(0.0)
                .feasible(false)
                .with_violation(BROKEN_CANDIDATE_VIOLATION),
        }
    };
    let monitor = |point: &homunculus_optimizer::EvaluatedPoint| {
        ctx.emit(CompileEvent::CandidateEvaluated {
            model: spec.name.clone(),
            algorithm,
            iteration: point.iteration,
            objective: point.evaluation.objective,
            feasible: point.evaluation.is_feasible,
            violation: point.evaluation.violation,
        });
        if ctx.cancel.is_cancelled() {
            SearchControl::Stop
        } else {
            SearchControl::Continue
        }
    };
    let history = BayesianOptimizer::new(space, optimizer_options).run_with(objective, monitor)?;
    Ok(history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alchemy::Metric;
    use homunculus_datasets::nslkdd::NslKddGenerator;

    fn tiny_options() -> CompilerOptions {
        CompilerOptions {
            bo_budget: 6,
            doe_samples: 3,
            train_epochs: 8,
            final_epochs: 15,
            sample_cap: Some(400),
            parallel: true,
            seed: 0,
        }
    }

    fn ad_platform(n: usize) -> Platform {
        let spec = ModelSpec::builder("anomaly_detection")
            .optimization_metric(Metric::F1)
            .algorithm(Algorithm::Dnn)
            .data(NslKddGenerator::new(1).generate(n))
            .build()
            .unwrap();
        let mut platform = Platform::taurus();
        platform
            .constraints_mut()
            .throughput_gpps(1.0)
            .latency_ns(500.0)
            .grid(16, 16);
        platform.schedule(spec).unwrap();
        platform
    }

    #[test]
    fn open_requires_a_schedule() {
        let platform = Platform::taurus();
        assert!(matches!(
            Compiler::new(tiny_options()).open(&platform),
            Err(CoreError::InvalidProgram(_))
        ));
    }

    #[test]
    fn stages_expose_intermediate_state() {
        let platform = ad_platform(500);
        let searched = Compiler::new(tiny_options())
            .open(&platform)
            .unwrap()
            .search()
            .unwrap();
        assert_eq!(searched.searches().len(), 1);
        assert_eq!(searched.searches()[0].name(), "anomaly_detection");
        assert_eq!(searched.evaluations(), 6);
        let (algorithm, objective) = searched.searches()[0].best().expect("feasible candidate");
        assert_eq!(algorithm, Algorithm::Dnn);
        assert!(objective > 0.0);

        let trained = searched.train().unwrap();
        assert_eq!(trained.models().len(), 1);
        assert_eq!(trained.models()[0].algorithm(), Algorithm::Dnn);

        let feasible = trained.check().unwrap();
        assert!(feasible.is_feasible(), "{:?}", feasible.violations());
        assert!(feasible.models()[0].estimate().resources.get("cus") > 0.0);

        let artifact = feasible.codegen().unwrap();
        assert!(!artifact.is_partial());
        assert!(artifact.best().code.contains("@spatial object"));
    }

    #[test]
    fn cancelled_session_yields_partial_artifact() {
        let platform = ad_platform(500);
        let compiler = Compiler::new(tiny_options());
        let token = compiler.cancel_token();
        token.cancel();
        let artifact = compiler.open(&platform).unwrap().compile().unwrap();
        assert!(artifact.is_partial());
        // The cancelled search stopped at the first iteration boundary —
        // one evaluation, not the full budget.
        assert_eq!(artifact.best().history.points().len(), 1);
        // The partial artifact is still a usable model.
        let compiled = artifact.best().compiled.as_ref().unwrap();
        let mut scratch = homunculus_runtime::Scratch::new();
        assert!(compiled.classify(&[0.1; 7], &mut scratch) < 2);
    }

    #[test]
    fn observer_sees_stage_brackets_and_iterations() {
        let platform = ad_platform(500);
        let observer = Arc::new(CollectingObserver::new());
        let artifact = Compiler::new(tiny_options())
            .observe(observer.clone())
            .open(&platform)
            .unwrap()
            .compile()
            .unwrap();
        assert_eq!(
            observer.count(|e| matches!(
                e,
                CompileEvent::StageStarted {
                    stage: CompileStage::Search,
                    model: None
                }
            )),
            1
        );
        for stage in [
            CompileStage::Search,
            CompileStage::Train,
            CompileStage::Check,
            CompileStage::Codegen,
        ] {
            assert_eq!(
                observer.count(|e| matches!(e, CompileEvent::StageFinished { stage: s, model: None, .. } if *s == stage)),
                1,
                "missing whole-stage finish for {}",
                stage.name()
            );
        }
        // One CandidateEvaluated per recorded history point.
        assert_eq!(
            observer.count(|e| matches!(e, CompileEvent::CandidateEvaluated { .. })),
            artifact
                .reports()
                .iter()
                .flat_map(|r| r.algorithm_histories.iter())
                .map(|(_, h)| h.points().len())
                .sum::<usize>()
        );
        // The final retrain reported at least one attempt.
        assert!(observer.count(|e| matches!(e, CompileEvent::FinalTrainAttempt { .. })) >= 1);
        assert_eq!(
            observer.count(|e| matches!(e, CompileEvent::Cancelled { .. })),
            0
        );
    }

    #[test]
    fn cancel_before_any_feasible_candidate_names_the_cancellation() {
        // A platform tight enough that the single evaluated candidate is
        // infeasible (latency 40 ns rejects every sampled DNN, but the
        // pre-filter's minimal configuration squeaks through): cancelling
        // immediately leaves no best-so-far, so the session fails like an
        // exhausted search — with the cancellation named in the error.
        let spec = ModelSpec::builder("tight")
            .optimization_metric(Metric::F1)
            .algorithm(Algorithm::Dnn)
            .data(NslKddGenerator::new(1).generate(400))
            .build()
            .unwrap();
        let mut platform = Platform::taurus();
        platform
            .constraints_mut()
            .throughput_gpps(1.0)
            .latency_ns(40.0)
            .grid(16, 16);
        platform.schedule(spec).unwrap();
        let compiler = Compiler::new(tiny_options());
        compiler.cancel_token().cancel();
        match compiler.open(&platform).unwrap().compile() {
            Err(CoreError::NoFeasibleModel(message)) => {
                assert!(
                    message.contains("cancelled"),
                    "error should name the cancellation: {message}"
                );
            }
            Err(CoreError::NoCandidates(_)) => {
                panic!("pre-filter rejected everything; tighten the test setup instead")
            }
            other => panic!("expected NoFeasibleModel, got {other:?}"),
        }
    }

    #[test]
    fn cancel_token_is_shared_and_idempotent() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        clone.cancel();
        clone.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn stage_names() {
        assert_eq!(CompileStage::Search.name(), "search");
        assert_eq!(CompileStage::Train.name(), "train");
        assert_eq!(CompileStage::Check.name(), "check");
        assert_eq!(CompileStage::Codegen.name(), "codegen");
    }
}

//! Staged compilation sessions: observable stages, cooperative
//! cancellation, and typed stage handles.
//!
//! [`generate_with`](crate::pipeline::generate_with) hides the whole
//! compile — search, train, feasibility check, code generation — behind
//! one blocking call. A [`Compiler`] session exposes the same pipeline as
//! **typed stage handles** instead, so callers can inspect, log, persist,
//! or stop between stages:
//!
//! | Stage call | Hands back | What ran |
//! |---|---|---|
//! | [`Compiler::open`] | [`Session`] | schedule validation, resource-share scaling |
//! | [`Session::search`] | [`Searched`] | per-app BO candidate searches (parallel across algorithms) |
//! | [`Searched::train`] | [`Trained`] | winner selection + final retrain with restarts |
//! | [`Trained::check`] | [`Feasible`] | resource/performance estimation of the final models |
//! | [`Feasible::codegen`] | [`CompiledArtifact`] | backend code generation + integer lowering |
//!
//! Every stage emits [`CompileEvent`]s through an optional
//! [`CompileObserver`] — per-BO-iteration [`CompileEvent::CandidateEvaluated`],
//! per-stage [`CompileEvent::StageStarted`]/[`CompileEvent::StageFinished`]
//! with wall-clock timings, and [`CompileEvent::FeasibilityRejected`]
//! naming the violated constraint — and honors a cooperative
//! [`CancelToken`] at BO iteration boundaries: cancelling yields the
//! best-so-far models as a *partial* artifact
//! ([`CompiledArtifact::is_partial`]), not an error. (The one case with
//! nothing to yield — cancellation before *any* feasible candidate was
//! evaluated — fails like an exhausted search, with
//! [`CoreError::NoFeasibleModel`] naming the cancellation.)
//!
//! # Compiling as a service
//!
//! Three more capabilities turn the staged pipeline into a compile
//! *service*:
//!
//! - **Checkpoint/resume.** [`Searched::save_checkpoint`] (JSON) and
//!   [`Searched::save_checkpoint_bin`] (the compact `HJB1` binary wire
//!   format) persist the search stage as a versioned
//!   [`CHECKPOINT_FORMAT`] document — options plus every algorithm's
//!   recorded [`OptimizationHistory`]. [`Compiler::resume`] reconstructs
//!   the [`Searched`] handle in a fresh process: recorded points are
//!   **replayed, not re-evaluated** (the BO surrogate warm-starts from
//!   the reloaded history; the RNG stream is replayed and each recorded
//!   configuration verified against it), and the remaining budget runs
//!   live. The resumed artifact is bit-identical to an uninterrupted
//!   run. Decode failures, version mismatches, and platform drift all
//!   surface as typed [`CoreError::Checkpoint`] errors, never panics.
//! - **Parallel stages.** With [`CompilerOptions::parallel`] set, the
//!   search and train stages fan out across scheduled models on scoped
//!   threads (on top of the existing per-algorithm fan-out).
//! - **Deadlines.** [`CompilerOptions::time_budget`] arms a wall-clock
//!   deadline that trips the session's own [`CancelToken`] at the next
//!   BO iteration boundary — the session degrades to a partial artifact
//!   (or a checkpoint to resume later) instead of overrunning.
//!
//! ## The parallel determinism contract
//!
//! Parallelism never changes *results*, only wall-clock and event
//! arrival order. Every `(model, algorithm)` search derives its seed
//! from the root seed, the model's schedule index, and the algorithm —
//! never from thread identity or timing — and final retrains use their
//! own derived seeds, so a parallel compile is **bit-identical** to a
//! sequential one under the same options: same winners, same weights,
//! same artifact bytes. The only observable difference is that
//! [`CompileEvent`]s of different models/algorithms interleave; events
//! are delivered one at a time (the session serializes observer calls
//! under a lock), so observers like [`LogObserver`] need no locking of
//! their own beyond their sink.
//!
//! The one-shot entry points are thin shims over a default session, so a
//! staged compile is bit-identical to `generate_with` under the same
//! options: stage boundaries never touch an RNG stream.
//!
//! ```no_run
//! use homunculus_core::alchemy::{Metric, ModelSpec, Platform};
//! use homunculus_core::pipeline::CompilerOptions;
//! use homunculus_core::session::{CompileEvent, Compiler};
//! use homunculus_datasets::nslkdd::NslKddGenerator;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), homunculus_core::CoreError> {
//! let model = ModelSpec::builder("anomaly_detection")
//!     .optimization_metric(Metric::F1)
//!     .data(NslKddGenerator::new(42).generate(4_000))
//!     .build()?;
//! let mut platform = Platform::taurus();
//! platform
//!     .constraints_mut()
//!     .throughput_gpps(1.0)
//!     .latency_ns(500.0)
//!     .grid(16, 16);
//! platform.schedule(model)?;
//!
//! let compiler = Compiler::new(CompilerOptions::fast()).observe(Arc::new(
//!     |event: &CompileEvent| {
//!         if let CompileEvent::CandidateEvaluated { iteration, objective, .. } = event {
//!             println!("iteration {iteration}: objective {objective:.3}");
//!         }
//!     },
//! ));
//! let searched = compiler.open(&platform)?.search()?;
//! println!("{} BO evaluations ran", searched.evaluations());
//! let artifact = searched.train()?.check()?.codegen()?;
//! artifact.save_json("anomaly_detection.artifact.json")?;
//! # Ok(())
//! # }
//! ```

use crate::alchemy::Metric;
use crate::alchemy::{Algorithm, ModelSpec, Platform};
use crate::candidates::candidate_algorithms;
use crate::pipeline::{CompiledArtifact, CompilerOptions, ModelReport};
use crate::spaces::design_space_for;
use crate::trainer::{
    normalized_split, normalized_split_with, retrain_winner, train_candidate, TrainBudget,
    EFFICIENCY_SLACK,
};
use crate::{CoreError, Result};
use homunculus_backends::model::ModelIr;
use homunculus_backends::resources::{Constraints, Performance, ResourceEstimate, ResourceVector};
use homunculus_datasets::dataset::{Normalizer, Split};
use homunculus_ml::quantize::FixedPoint;
use homunculus_optimizer::space::Configuration;
use homunculus_optimizer::{
    BayesianOptimizer, Evaluation, OptimizationHistory, OptimizerError, OptimizerOptions,
    SearchControl,
};
use homunculus_runtime::Compile;
use serde_json::{json, Value};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Version tag of the session checkpoint document format (see
/// [`Searched::save_checkpoint`]).
pub const CHECKPOINT_FORMAT: &str = "homunculus.checkpoint/v1";

/// A cooperative cancellation handle shared between a session and the
/// caller that wants to stop it. Cloning is cheap (one `Arc`); cancelling
/// from any clone is observed by all. The session honors cancellation at
/// BO **iteration boundaries**: in-flight training finishes, no further
/// candidates are evaluated, and the remaining stages run on the
/// best-so-far state so the caller still receives a usable (partial)
/// artifact — provided at least one feasible candidate was evaluated
/// before the cancel landed; a session with no winner at all has nothing
/// to build and fails with [`CoreError::NoFeasibleModel`], exactly as an
/// exhausted search would.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// The four stages of a compile session, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompileStage {
    /// BO candidate search across algorithms (per scheduled model).
    Search,
    /// Winner selection and final retraining.
    Train,
    /// Resource/performance estimation and feasibility verdicts.
    Check,
    /// Backend code generation and integer lowering.
    Codegen,
}

impl CompileStage {
    /// Lowercase stage name for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            CompileStage::Search => "search",
            CompileStage::Train => "train",
            CompileStage::Check => "check",
            CompileStage::Codegen => "codegen",
        }
    }
}

/// One observable moment of a compile session.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileEvent {
    /// A stage began. `model` is `None` for the stage as a whole and
    /// `Some(name)` for each scheduled model's slice of it.
    StageStarted {
        /// Which stage.
        stage: CompileStage,
        /// The model this event scopes to, if per-model.
        model: Option<String>,
    },
    /// A stage (or a model's slice of it) completed, successfully or not.
    StageFinished {
        /// Which stage.
        stage: CompileStage,
        /// The model this event scopes to, if per-model.
        model: Option<String>,
        /// Wall-clock duration of the stage in nanoseconds.
        elapsed_ns: u64,
    },
    /// One BO iteration finished: a candidate was trained and checked
    /// (emitted from the optimizer loop, per evaluation, in order within
    /// each algorithm's search — searches of different algorithms run in
    /// parallel, so events of different algorithms interleave).
    CandidateEvaluated {
        /// The scheduled model being searched.
        model: String,
        /// The algorithm whose design space produced the candidate.
        algorithm: Algorithm,
        /// 0-based evaluation index within this algorithm's search.
        iteration: usize,
        /// The candidate's objective on the held-out split.
        objective: f64,
        /// Whether the candidate fit the platform budget.
        feasible: bool,
        /// Relative constraint-violation magnitude (0.0 when feasible).
        violation: f64,
    },
    /// A candidate (or a final model, during [`Trained::check`]) violated
    /// the platform constraints.
    FeasibilityRejected {
        /// The scheduled model.
        model: String,
        /// The algorithm the rejected candidate belongs to.
        algorithm: Algorithm,
        /// Human-readable description of the violated constraint(s),
        /// e.g. `"cus usage 310.0 > cap 256.0"`.
        constraint: String,
    },
    /// One final-retrain restart finished (emitted from the trainer).
    FinalTrainAttempt {
        /// The scheduled model being retrained.
        model: String,
        /// The winning algorithm.
        algorithm: Algorithm,
        /// 0-based restart index.
        restart: u64,
        /// The restart's objective on the held-out split.
        objective: f64,
    },
    /// The session observed its [`CancelToken`]; subsequent stages run on
    /// best-so-far state and the artifact is marked partial.
    Cancelled {
        /// The stage during which cancellation was first observed.
        stage: CompileStage,
    },
    /// The static verification gate ([`Compiler::verify_artifacts`])
    /// reported one finding while checking a final model during
    /// [`Trained::check`]. Warnings are informational; any error-severity
    /// finding fails the stage with [`CoreError::Analysis`].
    AnalyzerDiagnostic {
        /// The scheduled model the finding scopes to (the artifact as a
        /// whole for cross-model findings such as chain-width breaks).
        model: Option<String>,
        /// The `HA`-coded finding.
        diagnostic: homunculus_analysis::Diagnostic,
    },
}

/// Receives [`CompileEvent`]s as a session runs. Implementations must be
/// `Send + Sync`: candidate searches run on parallel threads, so events
/// of different algorithms arrive concurrently. Closures qualify:
///
/// ```
/// use homunculus_core::session::{CompileEvent, CompileObserver};
///
/// let printer = |event: &CompileEvent| println!("{event:?}");
/// fn takes_observer(_: &dyn CompileObserver) {}
/// takes_observer(&printer);
/// ```
pub trait CompileObserver: Send + Sync {
    /// Called once per event, possibly from several threads.
    fn on_event(&self, event: &CompileEvent);
}

impl<F> CompileObserver for F
where
    F: Fn(&CompileEvent) + Send + Sync,
{
    fn on_event(&self, event: &CompileEvent) {
        self(event)
    }
}

/// A [`CompileObserver`] that records every event — handy in tests and
/// for post-hoc timing reports (the `compile_stages` bench uses one).
#[derive(Debug, Default)]
pub struct CollectingObserver {
    events: std::sync::Mutex<Vec<CompileEvent>>,
}

impl CollectingObserver {
    /// An empty collector.
    pub fn new() -> Self {
        CollectingObserver::default()
    }

    /// A snapshot of the events recorded so far, in arrival order.
    pub fn events(&self) -> Vec<CompileEvent> {
        self.events.lock().expect("observer poisoned").clone()
    }

    /// Number of recorded events matching `predicate`.
    pub fn count(&self, predicate: impl Fn(&CompileEvent) -> bool) -> usize {
        self.events
            .lock()
            .expect("observer poisoned")
            .iter()
            .filter(|e| predicate(e))
            .count()
    }
}

impl CompileObserver for CollectingObserver {
    fn on_event(&self, event: &CompileEvent) {
        self.events
            .lock()
            .expect("observer poisoned")
            .push(event.clone());
    }
}

/// A [`CompileObserver`] that renders every event as one timestamped,
/// human-readable line on an [`io::Write`](std::io::Write) sink —
/// the service-mode answer to ad-hoc `println!` closures. Timestamps are
/// seconds since the observer was created. Write errors are swallowed:
/// a full pipe must not abort a compile.
///
/// ```no_run
/// use homunculus_core::session::{Compiler, LogObserver};
/// use homunculus_core::pipeline::CompilerOptions;
/// use std::sync::Arc;
///
/// let compiler = Compiler::new(CompilerOptions::fast())
///     .observe(Arc::new(LogObserver::stdout()));
/// ```
pub struct LogObserver<W: Write + Send> {
    sink: Mutex<W>,
    start: Instant,
}

impl LogObserver<std::io::Stdout> {
    /// A logger on standard output.
    pub fn stdout() -> Self {
        LogObserver::new(std::io::stdout())
    }
}

impl<W: Write + Send> LogObserver<W> {
    /// A logger writing to `sink`, timestamps starting now.
    pub fn new(sink: W) -> Self {
        LogObserver {
            sink: Mutex::new(sink),
            start: Instant::now(),
        }
    }
}

impl<W: Write + Send> CompileObserver for LogObserver<W> {
    fn on_event(&self, event: &CompileEvent) {
        let t = self.start.elapsed().as_secs_f64();
        let mut sink = self.sink.lock().unwrap_or_else(|p| p.into_inner());
        let _ = match event {
            CompileEvent::StageStarted { stage, model } => match model {
                Some(model) => writeln!(sink, "[{t:9.3}s] {:>7} {model}: started", stage.name()),
                None => writeln!(sink, "[{t:9.3}s] {:>7} started", stage.name()),
            },
            CompileEvent::StageFinished {
                stage,
                model,
                elapsed_ns,
            } => {
                let secs = *elapsed_ns as f64 / 1e9;
                match model {
                    Some(model) => writeln!(
                        sink,
                        "[{t:9.3}s] {:>7} {model}: finished in {secs:.3}s",
                        stage.name()
                    ),
                    None => writeln!(
                        sink,
                        "[{t:9.3}s] {:>7} finished in {secs:.3}s",
                        stage.name()
                    ),
                }
            }
            CompileEvent::CandidateEvaluated {
                model,
                algorithm,
                iteration,
                objective,
                feasible,
                violation,
            } => {
                let verdict = if *feasible {
                    "feasible".to_string()
                } else {
                    format!("infeasible, violation {violation:.3}")
                };
                writeln!(
                    sink,
                    "[{t:9.3}s]  search {model}/{}: iteration {iteration} objective \
                     {objective:.4} ({verdict})",
                    algorithm.name()
                )
            }
            CompileEvent::FeasibilityRejected {
                model,
                algorithm,
                constraint,
            } => writeln!(
                sink,
                "[{t:9.3}s]   check {model}/{}: rejected — {constraint}",
                algorithm.name()
            ),
            CompileEvent::FinalTrainAttempt {
                model,
                algorithm,
                restart,
                objective,
            } => writeln!(
                sink,
                "[{t:9.3}s]   train {model}/{}: restart {restart} objective {objective:.4}",
                algorithm.name()
            ),
            CompileEvent::Cancelled { stage } => {
                writeln!(
                    sink,
                    "[{t:9.3}s] cancelled during {} — continuing on best-so-far state",
                    stage.name()
                )
            }
            CompileEvent::AnalyzerDiagnostic { model, diagnostic } => match model {
                Some(model) => writeln!(sink, "[{t:9.3}s] analyze {model}: {diagnostic}"),
                None => writeln!(sink, "[{t:9.3}s] analyze: {diagnostic}"),
            },
        };
    }
}

/// Session-wide state threaded through every stage handle.
struct Ctx<'p> {
    platform: &'p Platform,
    options: CompilerOptions,
    observer: Option<Arc<dyn CompileObserver>>,
    cancel: CancelToken,
    /// Per-model resource budget: the platform constraints with every
    /// resource cap divided by the number of scheduled models (the Table 4
    /// experiment: "they are each allocated half of the switch's
    /// resources"). Performance clauses are per-model and stay unchanged.
    constraints: Constraints,
    /// Set once the session has emitted [`CompileEvent::Cancelled`].
    cancel_reported: AtomicBool,
    /// Serializes observer delivery: stages fan out across threads, but
    /// events arrive one at a time (the module-docs determinism
    /// contract).
    emit_lock: Mutex<()>,
    /// The armed [`CompilerOptions::time_budget`] deadline, if any.
    deadline: Option<Instant>,
    /// Run the static verification gate during [`Trained::check`]
    /// (see [`Compiler::verify_artifacts`]).
    verify: bool,
}

impl Ctx<'_> {
    fn emit(&self, event: CompileEvent) {
        if let Some(observer) = &self.observer {
            let _serialized = self.emit_lock.lock().unwrap_or_else(|p| p.into_inner());
            observer.on_event(&event);
        }
    }

    /// Trips the session's [`CancelToken`] once the
    /// [`CompilerOptions::time_budget`] deadline has passed. Polled at BO
    /// iteration boundaries and stage transitions; never touches an RNG
    /// stream, so the work finished before the cut is bit-identical to an
    /// unbudgeted run's prefix.
    fn check_deadline(&self) {
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.cancel.cancel();
            }
        }
    }

    /// The scheduled model specs, in schedule order.
    fn specs(&self) -> Vec<&ModelSpec> {
        self.platform
            .schedule_expr()
            .expect("schedule validated by Compiler::open")
            .models()
    }

    /// Emits [`CompileEvent::Cancelled`] the first time the session sees
    /// its token tripped during `stage` (polling the deadline first, so
    /// an expired [`CompilerOptions::time_budget`] is observed at every
    /// stage transition even when no BO iteration is running).
    fn note_cancelled(&self, stage: CompileStage) {
        self.check_deadline();
        if self.cancel.is_cancelled() && !self.cancel_reported.swap(true, Ordering::Relaxed) {
            self.emit(CompileEvent::Cancelled { stage });
        }
    }

    /// Runs `body` bracketed by stage start/finish events with wall-clock
    /// timing (the finish event fires even when the stage errors, so
    /// observers always see the bracket closed).
    fn staged<T>(
        &self,
        stage: CompileStage,
        model: Option<&str>,
        body: impl FnOnce() -> Result<T>,
    ) -> Result<T> {
        self.emit(CompileEvent::StageStarted {
            stage,
            model: model.map(str::to_string),
        });
        let start = Instant::now();
        let result = body();
        self.emit(CompileEvent::StageFinished {
            stage,
            model: model.map(str::to_string),
            elapsed_ns: start.elapsed().as_nanos() as u64,
        });
        result
    }
}

/// Configures and opens compile sessions. See the [module docs](self) for
/// the stage table and a full example.
pub struct Compiler {
    options: CompilerOptions,
    observer: Option<Arc<dyn CompileObserver>>,
    cancel: CancelToken,
    verify: bool,
}

impl Compiler {
    /// A compiler with the given options, no observer, a fresh cancel
    /// token, and the static verification gate off.
    pub fn new(options: CompilerOptions) -> Self {
        Compiler {
            options,
            observer: None,
            cancel: CancelToken::new(),
            verify: false,
        }
    }

    /// Installs an event observer (replacing any previous one).
    #[must_use]
    pub fn observe(mut self, observer: Arc<dyn CompileObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Turns the static verification gate on (or off): during
    /// [`Trained::check`] every final model — and the schedule as a whole
    /// — is run through the `homunculus-analysis` interval walk and
    /// linter against the codegen fixed-point format and the target's
    /// native word width. Every finding is emitted as
    /// [`CompileEvent::AnalyzerDiagnostic`]; error-severity findings fail
    /// the stage with [`CoreError::Analysis`]. Off by default — a
    /// session-local toggle, deliberately not a [`CompilerOptions`] field
    /// (options round-trip through checkpoints; the gate is about *this*
    /// run's posture, and [`Compiler::resume`] keeps it).
    #[must_use]
    pub fn verify_artifacts(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// A clone of the session's [`CancelToken`] — keep it before calling
    /// [`open`](Compiler::open) to be able to stop the session from
    /// another thread.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Opens a session over a scheduled platform.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidProgram`] when the platform has no
    /// scheduled models.
    pub fn open(self, platform: &Platform) -> Result<Session<'_>> {
        let schedule = platform
            .schedule_expr()
            .ok_or_else(|| CoreError::InvalidProgram("platform has no scheduled models".into()))?;
        let share = schedule.models().len().max(1) as f64;
        let constraints = scaled_constraints(&platform.effective_constraints(), share);
        Ok(Session {
            ctx: Ctx {
                platform,
                options: self.options,
                observer: self.observer,
                cancel: self.cancel,
                constraints,
                cancel_reported: AtomicBool::new(false),
                emit_lock: Mutex::new(()),
                deadline: self
                    .options
                    .time_budget
                    .map(|budget| Instant::now() + budget),
                verify: self.verify,
            },
        })
    }

    /// Resumes a checkpointed search in a fresh process: reads a
    /// [`Searched::save_checkpoint`] /
    /// [`Searched::save_checkpoint_bin`] document (the two encodings are
    /// sniffed apart by magic), re-opens a session over `platform` under
    /// the **checkpoint's** options (this compiler's own options are
    /// ignored — resuming under different options could not reproduce the
    /// recorded points; its observer and cancel token are kept, and any
    /// [`CompilerOptions::time_budget`] is re-armed fresh), and replays
    /// the recorded histories through the search stage. Recorded points
    /// are verified against the replayed RNG stream and **not**
    /// re-evaluated (no [`CompileEvent::CandidateEvaluated`] fires for
    /// them); remaining budget runs live, warm-starting the BO surrogate
    /// from the reloaded points. Searches the checkpoint recorded as
    /// failed stay failed. The returned [`Searched`] is bit-identical to
    /// one from an uninterrupted [`Session::search`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Checkpoint`] when the document is corrupt,
    /// carries an unknown format version, or does not match `platform`
    /// (different schedule, algorithms, seed, or options drift), and
    /// [`CoreError::Subsystem`] when the file cannot be read at all.
    pub fn resume<P: AsRef<Path>>(self, platform: &Platform, path: P) -> Result<Searched<'_>> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| {
            CoreError::Subsystem(format!("reading checkpoint from {}: {e}", path.display()))
        })?;
        let document = if serde_json::sniff_binary(&bytes) {
            serde_json::from_slice_binary(&bytes)
                .map_err(|e| CoreError::Checkpoint(format!("binary checkpoint: {e}")))?
        } else {
            let text = std::str::from_utf8(&bytes).map_err(|e| {
                CoreError::Checkpoint(format!("checkpoint is neither binary nor UTF-8: {e}"))
            })?;
            serde_json::from_str(text)
                .map_err(|e| CoreError::Checkpoint(format!("checkpoint JSON: {e}")))?
        };
        let recorded = RecordedSearch::from_json(&document)?;
        let compiler = Compiler {
            options: recorded.options,
            observer: self.observer,
            cancel: self.cancel,
            verify: self.verify,
        };
        let session = compiler.open(platform)?;
        run_search(session.ctx, Some(recorded.models))
    }
}

/// A decoded [`CHECKPOINT_FORMAT`] document: the options that produced
/// the recorded searches, plus each model's per-algorithm outcomes.
struct RecordedSearch {
    options: CompilerOptions,
    models: Vec<RecordedModel>,
}

/// One model's recorded search outcomes, in candidate-preference order.
struct RecordedModel {
    name: String,
    runs: Vec<RecordedRun>,
}

/// One algorithm's recorded outcome: a full (possibly truncated) history,
/// or the error message that ended its search.
struct RecordedRun {
    algorithm: Algorithm,
    outcome: std::result::Result<OptimizationHistory, String>,
}

impl RecordedSearch {
    fn from_json(document: &Value) -> Result<RecordedSearch> {
        let bad = |msg: &str| CoreError::Checkpoint(msg.into());
        match document["format"].as_str() {
            Some(CHECKPOINT_FORMAT) => {}
            Some(other) => {
                return Err(CoreError::Checkpoint(format!(
                    "unsupported checkpoint format '{other}' (this build reads \
                     '{CHECKPOINT_FORMAT}')"
                )))
            }
            None => return Err(bad("document carries no 'format' tag")),
        }
        let options = CompilerOptions::from_json(&document["options"])?;
        let models = document["models"]
            .as_array()
            .ok_or_else(|| bad("checkpoint needs a 'models' array"))?
            .iter()
            .map(|model| {
                let name = model["name"]
                    .as_str()
                    .ok_or_else(|| bad("model entry needs a 'name'"))?
                    .to_string();
                let runs = model["runs"]
                    .as_array()
                    .ok_or_else(|| bad("model entry needs a 'runs' array"))?
                    .iter()
                    .map(|run| {
                        let algorithm = run["algorithm"]
                            .as_str()
                            .and_then(Algorithm::from_name)
                            .ok_or_else(|| bad("run entry needs a known 'algorithm'"))?;
                        let outcome = match run["error"].as_str() {
                            Some(message) => Err(message.to_string()),
                            None => Ok(OptimizationHistory::from_json(&run["history"]).map_err(
                                |e| {
                                    CoreError::Checkpoint(format!(
                                        "model '{name}' ({}): {e}",
                                        algorithm.name()
                                    ))
                                },
                            )?),
                        };
                        Ok(RecordedRun { algorithm, outcome })
                    })
                    .collect::<Result<Vec<RecordedRun>>>()?;
                Ok(RecordedModel { name, runs })
            })
            .collect::<Result<Vec<RecordedModel>>>()?;
        Ok(RecordedSearch { options, models })
    }
}

/// An open compile session, ready to [`search`](Session::search).
pub struct Session<'p> {
    ctx: Ctx<'p>,
}

impl<'p> Session<'p> {
    /// Runs all four stages back to back — what
    /// [`generate_with`](crate::pipeline::generate_with) does.
    ///
    /// # Errors
    ///
    /// See the individual stages.
    pub fn compile(self) -> Result<CompiledArtifact> {
        self.search()?.train()?.check()?.codegen()
    }

    /// Stage 1 — **search**: one BO candidate search per surviving
    /// algorithm per scheduled model (parallel across models *and*
    /// algorithms when [`CompilerOptions::parallel`] is set — results are
    /// bit-identical either way; see the module docs' determinism
    /// contract), each evaluation training a candidate and checking it
    /// against the platform budget.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoCandidates`] when platform pre-filtering
    /// removes every algorithm for some model. Individual search failures
    /// are *recorded*, not raised — they only surface from
    /// [`Searched::train`] if no sibling search produced a winner.
    pub fn search(self) -> Result<Searched<'p>> {
        run_search(self.ctx, None)
    }
}

/// The search-stage body, shared by [`Session::search`] (cold: `warm` is
/// `None`) and [`Compiler::resume`] (warm: one [`RecordedModel`] per
/// scheduled model, replayed instead of re-evaluated).
fn run_search(ctx: Ctx<'_>, warm: Option<Vec<RecordedModel>>) -> Result<Searched<'_>> {
    let searches = ctx.staged(CompileStage::Search, None, || {
        ctx.note_cancelled(CompileStage::Search);
        let specs = ctx.specs();
        let warm: Vec<Option<RecordedModel>> = match warm {
            Some(models) => {
                let scheduled: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
                let recorded: Vec<&str> = models.iter().map(|m| m.name.as_str()).collect();
                if recorded != scheduled {
                    return Err(CoreError::Checkpoint(format!(
                        "checkpoint records models [{}] but the platform schedules [{}]",
                        recorded.join(", "),
                        scheduled.join(", ")
                    )));
                }
                models.into_iter().map(Some).collect()
            }
            None => specs.iter().map(|_| None).collect(),
        };
        map_models(&ctx, warm, |index, warm| {
            let spec = ctx.specs()[index];
            let runs = ctx.staged(CompileStage::Search, Some(&spec.name), || {
                search_model(&ctx, spec, index as u64, warm.as_ref())
            })?;
            Ok(SearchedModel {
                name: spec.name.clone(),
                runs,
            })
        })
    })?;
    Ok(Searched { ctx, searches })
}

/// Fans one closure across the scheduled models — on scoped threads when
/// [`CompilerOptions::parallel`] is set and there is more than one model,
/// sequentially otherwise. Results come back in schedule order and the
/// first error by *schedule index* wins (matching sequential semantics);
/// a panicked model thread surfaces as [`CoreError::Subsystem`] naming
/// the panic. Safe to nest: the per-algorithm fan-out inside
/// [`search_model`] runs in its own inner scope.
fn map_models<I, T, F>(ctx: &Ctx<'_>, inputs: Vec<I>, f: F) -> Result<Vec<T>>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> Result<T> + Sync,
{
    if ctx.options.parallel && inputs.len() > 1 {
        std::thread::scope(|scope| {
            let handles: Vec<_> = inputs
                .into_iter()
                .enumerate()
                .map(|(index, input)| {
                    let f = &f;
                    scope.spawn(move || f(index, input))
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| {
                    handle.join().unwrap_or_else(|payload| {
                        Err(CoreError::Subsystem(format!(
                            "model thread panicked: {}",
                            panic_message(payload.as_ref())
                        )))
                    })
                })
                .collect()
        })
    } else {
        inputs
            .into_iter()
            .enumerate()
            .map(|(index, input)| f(index, input))
            .collect()
    }
}

/// One model's candidate sets after the search stage: every algorithm's
/// full [`OptimizationHistory`] (or the error that ended its search).
pub struct SearchedModel {
    name: String,
    runs: Vec<(Algorithm, Result<OptimizationHistory>)>,
}

impl SearchedModel {
    /// The scheduled model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Every algorithm's search outcome, in candidate-preference order.
    pub fn runs(&self) -> &[(Algorithm, Result<OptimizationHistory>)] {
        &self.runs
    }

    /// Total BO evaluations across this model's searches.
    pub fn evaluations(&self) -> usize {
        self.runs
            .iter()
            .filter_map(|(_, run)| run.as_ref().ok())
            .map(|history| history.points().len())
            .sum()
    }

    /// The best feasible candidate across all algorithms (efficiency
    /// tie-break applied within each history), if any search found one.
    pub fn best(&self) -> Option<(Algorithm, f64)> {
        self.runs
            .iter()
            .filter_map(|(algorithm, run)| {
                let history = run.as_ref().ok()?;
                let best = history.best_efficient(EFFICIENCY_SLACK, "params")?;
                Some((*algorithm, best.evaluation.objective))
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    }
}

/// Stage-1 output: per-app BO candidate sets, ready to
/// [`train`](Searched::train).
pub struct Searched<'p> {
    ctx: Ctx<'p>,
    searches: Vec<SearchedModel>,
}

impl<'p> Searched<'p> {
    /// Per-model candidate sets, in schedule order.
    pub fn searches(&self) -> &[SearchedModel] {
        &self.searches
    }

    /// Total BO evaluations across the whole session.
    pub fn evaluations(&self) -> usize {
        self.searches.iter().map(SearchedModel::evaluations).sum()
    }

    /// The search stage as a versioned [`CHECKPOINT_FORMAT`] document:
    /// the session options plus every algorithm's recorded history (or
    /// the error that ended its search). [`Compiler::resume`] turns the
    /// document back into a [`Searched`] handle — in this process or any
    /// other — bit-identically.
    pub fn checkpoint(&self) -> Value {
        let models: Vec<Value> = self
            .searches
            .iter()
            .map(|model| {
                let runs: Vec<Value> = model
                    .runs
                    .iter()
                    .map(|(algorithm, run)| match run {
                        Ok(history) => {
                            json!({ "algorithm": algorithm.name(), "history": history })
                        }
                        Err(error) => {
                            json!({ "algorithm": algorithm.name(), "error": error.to_string() })
                        }
                    })
                    .collect();
                json!({ "name": model.name, "runs": runs })
            })
            .collect();
        json!({
            "format": CHECKPOINT_FORMAT,
            "options": self.ctx.options,
            "models": models,
        })
    }

    /// The checkpoint as a JSON string (the portable, greppable form).
    pub fn checkpoint_json(&self) -> String {
        serde_json::to_string(&self.checkpoint()).expect("JSON printing is infallible")
    }

    /// The checkpoint in the compact `HJB1` binary wire format — the
    /// same document as [`checkpoint_json`](Searched::checkpoint_json),
    /// several times smaller, f64 bit-exact.
    pub fn checkpoint_bin_bytes(&self) -> Vec<u8> {
        serde_json::to_vec_binary(self.checkpoint())
    }

    /// Writes the JSON checkpoint to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Subsystem`] on I/O failure.
    pub fn save_checkpoint<P: AsRef<Path>>(&self, path: P) -> Result<()> {
        let path = path.as_ref();
        std::fs::write(path, self.checkpoint_json()).map_err(|e| {
            CoreError::Subsystem(format!("writing checkpoint to {}: {e}", path.display()))
        })
    }

    /// Writes the binary checkpoint to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Subsystem`] on I/O failure.
    pub fn save_checkpoint_bin<P: AsRef<Path>>(&self, path: P) -> Result<()> {
        let path = path.as_ref();
        std::fs::write(path, self.checkpoint_bin_bytes()).map_err(|e| {
            CoreError::Subsystem(format!("writing checkpoint to {}: {e}", path.display()))
        })
    }

    /// Stage 2 — **train**: selects each model's winner (best feasible
    /// objective across algorithms, cheapest-within-slack tie-break) and
    /// retrains it on the full dataset with the final epoch budget and
    /// deterministic restarts — in parallel across models when
    /// [`CompilerOptions::parallel`] is set (bit-identical either way:
    /// retrain seeds derive from the configuration, never the thread).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoFeasibleModel`] (or the first recorded
    /// search error) for a model whose searches produced no feasible
    /// candidate, and [`CoreError::Subsystem`] for training failures.
    pub fn train(self) -> Result<Trained<'p>> {
        let ctx = self.ctx;
        let searches = self.searches;
        let models = ctx.staged(CompileStage::Train, None, || {
            ctx.note_cancelled(CompileStage::Train);
            map_models(&ctx, searches, |index, search| {
                let spec = ctx.specs()[index];
                ctx.staged(CompileStage::Train, Some(&spec.name), || {
                    train_model(&ctx, spec, search)
                })
            })
        })?;
        Ok(Trained { ctx, models })
    }
}

/// One model after winner selection and final retraining.
pub struct TrainedModel {
    name: String,
    algorithm: Algorithm,
    metric: Metric,
    configuration: Configuration,
    objective: f64,
    ir: ModelIr,
    normalizer: Normalizer,
    history: OptimizationHistory,
    algorithm_histories: Vec<(Algorithm, OptimizationHistory)>,
}

impl TrainedModel {
    /// The scheduled model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The winning algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The metric the objective was measured with.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The feature normalizer the final model was trained under.
    pub fn normalizer(&self) -> &Normalizer {
        &self.normalizer
    }

    /// The winning configuration.
    pub fn configuration(&self) -> &Configuration {
        &self.configuration
    }

    /// The final retrained objective on the held-out split.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// The final trained model IR.
    pub fn ir(&self) -> &ModelIr {
        &self.ir
    }
}

/// Stage-2 output: winners retrained, ready to [`check`](Trained::check).
pub struct Trained<'p> {
    ctx: Ctx<'p>,
    models: Vec<TrainedModel>,
}

impl<'p> Trained<'p> {
    /// Per-model winners, in schedule order.
    pub fn models(&self) -> &[TrainedModel] {
        &self.models
    }

    /// Stage 3 — **check**: estimates each final model's resources and
    /// performance on the target and re-checks them against the per-model
    /// constraint share. The verdict is *advisory* for the final models —
    /// every candidate already passed this exact check inside the search
    /// loop, so a final violation (possible only for data-dependent shapes
    /// like tree depth shifting on the full dataset) is reported through
    /// [`Feasible::violations`] and [`CompileEvent::FeasibilityRejected`]
    /// rather than discarding a trained winner.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Subsystem`] when the target cannot estimate a
    /// final IR at all.
    pub fn check(self) -> Result<Feasible<'p>> {
        let ctx = self.ctx;
        let trained = self.models;
        let models = ctx.staged(CompileStage::Check, None, || {
            ctx.note_cancelled(CompileStage::Check);
            let target = ctx.platform.effective_target();
            let mut models = Vec::with_capacity(trained.len());
            for model in trained {
                let name = model.name.clone();
                let checked = ctx.staged(CompileStage::Check, Some(&name), || {
                    let estimate = target.as_target().estimate(&model.ir)?;
                    let report = target.as_target().check(&model.ir, &ctx.constraints)?;
                    let violations: Vec<String> =
                        report.violations.iter().map(|v| v.to_string()).collect();
                    if !report.is_feasible() {
                        ctx.emit(CompileEvent::FeasibilityRejected {
                            model: model.name.clone(),
                            algorithm: model.algorithm,
                            constraint: violations.join("; "),
                        });
                    }
                    Ok(CheckedModel {
                        model,
                        estimate,
                        violations,
                    })
                })?;
                models.push(checked);
            }
            if ctx.verify {
                verify_models(&ctx, &models, target.as_target().word_bits())?;
            }
            Ok(models)
        })?;
        Ok(Feasible { ctx, models })
    }
}

/// The opt-in static verification gate (see
/// [`Compiler::verify_artifacts`]): runs the `homunculus-analysis`
/// interval walk and linter over every final model against the format
/// codegen will lower with and the target's native word width, emits
/// every finding as [`CompileEvent::AnalyzerDiagnostic`], and fails on
/// error-severity findings.
fn verify_models(ctx: &Ctx<'_>, models: &[CheckedModel], word_bits: u32) -> Result<()> {
    let format = FixedPoint::taurus_default();
    let inputs: Vec<homunculus_analysis::ModelInput<'_>> = models
        .iter()
        .map(|checked| homunculus_analysis::ModelInput {
            name: &checked.model.name,
            ir: &checked.model.ir,
            format,
            normalizer: Some(&checked.model.normalizer),
            word_bits: Some(word_bits),
        })
        .collect();
    let analysis = homunculus_analysis::analyze_models(&inputs);
    let mut errors: Vec<String> = Vec::new();
    for diagnostic in analysis.diagnostics() {
        ctx.emit(CompileEvent::AnalyzerDiagnostic {
            model: diagnostic.model.clone(),
            diagnostic: diagnostic.clone(),
        });
        if diagnostic.severity == homunculus_analysis::Severity::Error {
            errors.push(diagnostic.to_string());
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(CoreError::Analysis(errors.join("; ")))
    }
}

/// Appends the analyzer's kernel certificates to generated code as
/// trailing `//` comments (both Spatial and P4 use C-style comments).
/// One line per kernel: its interval-analysis absolute bound and the
/// headroom factor left before the fixed-point format saturates.
fn append_certificate_comments(
    mut code: String,
    certificates: &[homunculus_analysis::KernelCertificate],
) -> String {
    if certificates.is_empty() {
        return code;
    }
    if !code.ends_with('\n') {
        code.push('\n');
    }
    code.push_str("// --- static analysis certificates ---\n");
    for certificate in certificates {
        code.push_str(&format!(
            "// certificate kernel=\"{}\" certified={} abs_bound={} headroom={:.2}\n",
            certificate.kernel, certificate.certified, certificate.abs_bound, certificate.headroom,
        ));
    }
    code
}

/// One model with its final resource estimate and feasibility verdict.
pub struct CheckedModel {
    model: TrainedModel,
    estimate: ResourceEstimate,
    violations: Vec<String>,
}

impl CheckedModel {
    /// The trained model under the verdict.
    pub fn model(&self) -> &TrainedModel {
        &self.model
    }

    /// The final resource/performance estimate.
    pub fn estimate(&self) -> &ResourceEstimate {
        &self.estimate
    }

    /// Violated constraints (empty when the final model fits its share).
    pub fn violations(&self) -> &[String] {
        &self.violations
    }
}

/// Stage-3 output: estimated and verdicted models, ready to
/// [`codegen`](Feasible::codegen).
pub struct Feasible<'p> {
    ctx: Ctx<'p>,
    models: Vec<CheckedModel>,
}

impl Feasible<'_> {
    /// Per-model verdicts, in schedule order.
    pub fn models(&self) -> &[CheckedModel] {
        &self.models
    }

    /// Whether every final model fits its constraint share.
    pub fn is_feasible(&self) -> bool {
        self.models.iter().all(|m| m.violations.is_empty())
    }

    /// Every `(model name, violation)` pair across the schedule.
    pub fn violations(&self) -> Vec<(String, String)> {
        self.models
            .iter()
            .flat_map(|m| {
                m.violations
                    .iter()
                    .map(|v| (m.model.name.clone(), v.clone()))
            })
            .collect()
    }

    /// Stage 4 — **codegen**: generates target code for every winner,
    /// lowers it to the integer runtime, and assembles the
    /// [`CompiledArtifact`] (combined resources/performance under the
    /// schedule's composition rules). An artifact built after cancellation
    /// is marked [partial](CompiledArtifact::is_partial).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Subsystem`] for code-generation failures.
    pub fn codegen(self) -> Result<CompiledArtifact> {
        let ctx = self.ctx;
        let checked = self.models;
        ctx.staged(CompileStage::Codegen, None, || {
            ctx.note_cancelled(CompileStage::Codegen);
            let target = ctx.platform.effective_target();
            let mut reports = Vec::with_capacity(checked.len());
            for CheckedModel {
                model, estimate, ..
            } in checked
            {
                let name = model.name.clone();
                let report = ctx.staged(CompileStage::Codegen, Some(&name), || {
                    // Lower the winner to the integer runtime — the
                    // executable twin of the generated data-plane code. A
                    // trained IR always lowers; failure would indicate an
                    // IR bug, so it degrades to None rather than
                    // invalidating an otherwise complete compile. The
                    // format is recorded on the report so save/load and
                    // the serving builders re-lower identically.
                    let format = FixedPoint::taurus_default();
                    let mut code = target.as_target().generate_code(&model.ir, &model.name)?;
                    // Stamp the analyzer's per-kernel no-saturation
                    // certificates into the generated program: operators
                    // reviewing data-plane code see the proven value
                    // bounds next to the kernels they bound.
                    let analysis =
                        homunculus_analysis::analyze_model(&homunculus_analysis::ModelInput {
                            name: &name,
                            ir: &model.ir,
                            format,
                            normalizer: Some(&model.normalizer),
                            word_bits: Some(target.as_target().word_bits()),
                        });
                    code = append_certificate_comments(code, &analysis.certificates);
                    let compiled = model.ir.compile(format).ok();
                    Ok(ModelReport {
                        name: model.name,
                        algorithm: model.algorithm,
                        objective: model.objective,
                        metric: model.metric,
                        configuration: model.configuration,
                        estimate,
                        ir: model.ir,
                        format,
                        compiled,
                        normalizer: model.normalizer,
                        code,
                        history: model.history,
                        algorithm_histories: model.algorithm_histories,
                    })
                })?;
                reports.push(report);
            }

            let schedule = ctx
                .platform
                .schedule_expr()
                .expect("schedule validated by Compiler::open");
            let resources: Vec<ResourceVector> = reports
                .iter()
                .map(|r| r.estimate.resources.clone())
                .collect();
            let performances: Vec<Performance> =
                reports.iter().map(|r| r.estimate.performance).collect();
            let combined_resources = schedule.combined_resources(&resources);
            let combined_performance = schedule.combined_performance(&performances);
            let combined_code = reports
                .iter()
                .map(|r| r.code.as_str())
                .collect::<Vec<_>>()
                .join("\n");
            Ok(CompiledArtifact::assemble(
                reports,
                combined_resources,
                combined_performance,
                combined_code,
                ctx.cancel.is_cancelled(),
            ))
        })
    }
}

/// Divides every resource cap by `share` (performance clauses are
/// per-model and stay unchanged).
fn scaled_constraints(constraints: &Constraints, share: f64) -> Constraints {
    let mut scaled = Constraints::new();
    if let Some(t) = constraints.min_throughput_gpps {
        scaled = scaled.throughput_gpps(t);
    }
    if let Some(l) = constraints.max_latency_ns {
        scaled = scaled.latency_ns(l);
    }
    for (name, cap) in constraints.budget.iter() {
        scaled = scaled.resource(name.clone(), cap / share);
    }
    scaled
}

/// Stage-1 body for one model: candidate selection and the per-algorithm
/// BO runs (Figure 2's "Parallel Candidate Runs"). A panic in one
/// candidate's search is captured and surfaced as a `CoreError` for that
/// algorithm instead of aborting the whole compile: the remaining
/// candidates still finish, and the caller sees which search died and why.
///
/// With `warm` recorded outcomes (a [`Compiler::resume`]), each
/// algorithm's recorded history is replayed instead of re-evaluated and
/// only the remaining budget runs live; recorded errors stay errors. The
/// recorded algorithm list must match what the platform admits now —
/// drift is a [`CoreError::Checkpoint`].
fn search_model(
    ctx: &Ctx<'_>,
    spec: &ModelSpec,
    model_index: u64,
    warm: Option<&RecordedModel>,
) -> Result<Vec<(Algorithm, Result<OptimizationHistory>)>> {
    let options = &ctx.options;
    let algorithms = candidate_algorithms(spec, ctx.platform)?;
    if let Some(warm) = warm {
        let recorded: Vec<Algorithm> = warm.runs.iter().map(|run| run.algorithm).collect();
        if recorded != algorithms {
            let names =
                |list: &[Algorithm]| list.iter().map(|a| a.name()).collect::<Vec<_>>().join(", ");
            return Err(CoreError::Checkpoint(format!(
                "model '{}': checkpoint records searches for [{}] but the platform admits [{}]",
                spec.name,
                names(&recorded),
                names(&algorithms)
            )));
        }
    }
    let search_dataset = match options.sample_cap {
        Some(cap) if spec.dataset.len() > cap => {
            let fraction = cap as f64 / spec.dataset.len() as f64;
            spec.dataset.stratified_split(fraction, options.seed)?.test
        }
        _ => spec.dataset.clone(),
    };
    let split = normalized_split(&search_dataset, spec.test_fraction, options.seed)?;

    let run_one = |algorithm: Algorithm, index: usize| -> Result<OptimizationHistory> {
        match warm.map(|w| &w.runs[index].outcome) {
            Some(Err(message)) => Err(CoreError::Subsystem(message.clone())),
            Some(Ok(history)) => {
                search_algorithm(ctx, spec, algorithm, &split, model_index, Some(history))
            }
            None => search_algorithm(ctx, spec, algorithm, &split, model_index, None),
        }
    };

    let runs: Vec<(Algorithm, Result<OptimizationHistory>)> =
        if options.parallel && algorithms.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = algorithms
                    .iter()
                    .enumerate()
                    .map(|(index, &algorithm)| {
                        let run_one = &run_one;
                        let handle = scope.spawn(move || run_one(algorithm, index));
                        (algorithm, handle)
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|(algorithm, handle)| {
                        let run = handle.join().unwrap_or_else(|payload| {
                            Err(CoreError::Subsystem(format!(
                                "search thread for {} panicked: {}",
                                algorithm.name(),
                                panic_message(payload.as_ref())
                            )))
                        });
                        (algorithm, run)
                    })
                    .collect()
            })
        } else {
            algorithms
                .iter()
                .enumerate()
                .map(|(index, &algorithm)| (algorithm, run_one(algorithm, index)))
                .collect()
        };
    // Ordinary search failures are recorded per algorithm (a sibling may
    // still win), but a checkpoint that fails replay verification is not
    // a search outcome — the whole resume is invalid and must say so.
    if let Some((_, Err(CoreError::Checkpoint(message)))) = runs
        .iter()
        .find(|(_, run)| matches!(run, Err(CoreError::Checkpoint(_))))
    {
        return Err(CoreError::Checkpoint(message.clone()));
    }
    Ok(runs)
}

/// Stage-2 body for one model: winner selection across algorithms with the
/// efficiency tie-break (§3: "the most efficient model will use as many
/// resources as needed without over-provisioning" — among configurations
/// within [`EFFICIENCY_SLACK`] of the best objective, the one with the
/// fewest parameters wins), then the final retrain.
fn train_model(ctx: &Ctx<'_>, spec: &ModelSpec, search: SearchedModel) -> Result<TrainedModel> {
    let mut algorithm_histories = Vec::new();
    let mut winner: Option<(Algorithm, Configuration, f64)> = None;
    let mut first_error: Option<CoreError> = None;
    for (algorithm, run) in search.runs {
        // One failed (or panicked) search does not doom the compile as
        // long as another candidate produced a feasible model; the error
        // is only surfaced when nothing won.
        let history = match run {
            Ok(history) => history,
            Err(error) => {
                first_error.get_or_insert(error);
                continue;
            }
        };
        if let Some(best) = history.best_efficient(EFFICIENCY_SLACK, "params") {
            let better = winner
                .as_ref()
                .map_or(true, |(_, _, obj)| best.evaluation.objective > *obj);
            if better {
                winner = Some((
                    algorithm,
                    best.configuration.clone(),
                    best.evaluation.objective,
                ));
            }
        }
        algorithm_histories.push((algorithm, history));
    }
    let (algorithm, configuration, winner_objective) = match winner {
        Some(winner) => winner,
        None => {
            // A session cancelled before any feasible candidate existed
            // has no best-so-far to hand back: "partial artifact" needs
            // at least one winner. Name the cancellation so the caller
            // can tell an early cancel from a genuinely exhausted search.
            let reason = if ctx.cancel.is_cancelled() {
                "session cancelled before a feasible configuration was found"
            } else {
                "search budget exhausted without a feasible configuration"
            };
            return Err(first_error.unwrap_or_else(|| {
                CoreError::NoFeasibleModel(format!("model '{}': {reason}", spec.name))
            }));
        }
    };

    let (final_split, normalizer) =
        normalized_split_with(&spec.dataset, spec.test_fraction, ctx.options.seed)?;
    let trained = retrain_winner(
        algorithm,
        &configuration,
        &final_split,
        spec.optimization_metric,
        &ctx.options,
        winner_objective,
        |restart, objective| {
            ctx.emit(CompileEvent::FinalTrainAttempt {
                model: spec.name.clone(),
                algorithm,
                restart,
                objective,
            });
        },
    )?;

    let history = algorithm_histories
        .iter()
        .find(|(a, _)| *a == algorithm)
        .map(|(_, h)| h.clone())
        .expect("winner came from a recorded run");

    Ok(TrainedModel {
        name: spec.name.clone(),
        algorithm,
        metric: spec.optimization_metric,
        configuration,
        objective: trained.objective,
        ir: trained.ir,
        normalizer,
        history,
        algorithm_histories,
    })
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(message) = payload.downcast_ref::<&'static str>() {
        message
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message
    } else {
        "non-string panic payload"
    }
}

/// Violation sentinel for configurations that failed to train or to
/// estimate at all: large against real violation scores (O(1..100)) so the
/// phase-1 feasibility descent never walks toward them, but finite enough
/// to survive the surrogate's f32 cast.
const BROKEN_CANDIDATE_VIOLATION: f64 = 1e6;

/// One algorithm's BO search: the black-box objective is
/// train-estimate-feasibility-check. Emits
/// [`CompileEvent::CandidateEvaluated`] per iteration through the
/// optimizer's monitor hook, and honors the session's [`CancelToken`] at
/// iteration boundaries (a stopped search returns its truncated
/// best-so-far history as `Ok`). With a `warm` history the optimizer
/// replays the recorded points (no objective calls, no
/// `CandidateEvaluated` events) and continues live from where they stop;
/// replay-verification failures surface as [`CoreError::Checkpoint`].
fn search_algorithm(
    ctx: &Ctx<'_>,
    spec: &ModelSpec,
    algorithm: Algorithm,
    split: &Split,
    model_index: u64,
    warm: Option<&OptimizationHistory>,
) -> Result<OptimizationHistory> {
    let options = &ctx.options;
    let space = design_space_for(algorithm, spec, ctx.platform)?;
    let target = ctx.platform.effective_target();
    let seed = options
        .seed
        .wrapping_add(model_index.wrapping_mul(0x9E37))
        .wrapping_add(algorithm as u64 * 0x79B9);
    let optimizer_options = OptimizerOptions::default()
        .budget(options.bo_budget)
        .doe_samples(options.doe_samples.min(options.bo_budget))
        .seed(seed);
    let budget = TrainBudget {
        epochs: options.train_epochs,
        seed,
    };

    let objective = |config: &Configuration| {
        match train_candidate(algorithm, config, split, spec.optimization_metric, budget) {
            Ok(candidate) => match target.as_target().check(&candidate.ir, &ctx.constraints) {
                Ok(report) => {
                    if !report.is_feasible() && ctx.observer.is_some() {
                        let constraint = report
                            .violations
                            .iter()
                            .map(|v| v.to_string())
                            .collect::<Vec<_>>()
                            .join("; ");
                        ctx.emit(CompileEvent::FeasibilityRejected {
                            model: spec.name.clone(),
                            algorithm,
                            constraint,
                        });
                    }
                    let mut evaluation = Evaluation::new(candidate.objective)
                        .feasible(report.is_feasible())
                        .with_violation(report.violation_score())
                        .with_metric("params", candidate.ir.param_count() as f64);
                    if let Ok(estimate) = target.as_target().estimate(&candidate.ir) {
                        for (name, value) in estimate.resources.iter() {
                            evaluation = evaluation.with_metric(name.clone(), *value);
                        }
                        evaluation = evaluation
                            .with_metric("latency_ns", estimate.performance.latency_ns)
                            .with_metric("throughput_gpps", estimate.performance.throughput_gpps);
                    }
                    evaluation
                }
                // An uncheckable configuration must not look attractive
                // to the phase-1 violation descent (violation would
                // default to 0.0 — the global minimum). The sentinel is
                // large against real violation scores (O(1..100)) but
                // stays finite through the surrogate's f32 cast.
                Err(_) => Evaluation::new(candidate.objective)
                    .feasible(false)
                    .with_violation(BROKEN_CANDIDATE_VIOLATION),
            },
            // A configuration that fails to train at all is infeasible —
            // same poisoning guard as above.
            Err(_) => Evaluation::new(0.0)
                .feasible(false)
                .with_violation(BROKEN_CANDIDATE_VIOLATION),
        }
    };
    let monitor = |point: &homunculus_optimizer::EvaluatedPoint| {
        ctx.emit(CompileEvent::CandidateEvaluated {
            model: spec.name.clone(),
            algorithm,
            iteration: point.iteration,
            objective: point.evaluation.objective,
            feasible: point.evaluation.is_feasible,
            violation: point.evaluation.violation,
        });
        ctx.check_deadline();
        if ctx.cancel.is_cancelled() {
            SearchControl::Stop
        } else {
            SearchControl::Continue
        }
    };
    let optimizer = BayesianOptimizer::new(space, optimizer_options);
    let history = match warm {
        Some(from) => optimizer
            .resume_with(from, objective, monitor)
            .map_err(|e| {
                match e {
                    // The replay disagreed with the record: the checkpoint
                    // does not belong to this (platform, options) pair.
                    OptimizerError::Resume(msg) => CoreError::Checkpoint(format!(
                        "model '{}' ({}): {msg}",
                        spec.name,
                        algorithm.name()
                    )),
                    other => other.into(),
                }
            })?,
        None => optimizer.run_with(objective, monitor)?,
    };
    Ok(history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alchemy::Metric;
    use homunculus_datasets::nslkdd::NslKddGenerator;

    fn tiny_options() -> CompilerOptions {
        CompilerOptions {
            bo_budget: 6,
            doe_samples: 3,
            train_epochs: 8,
            final_epochs: 15,
            sample_cap: Some(400),
            parallel: true,
            seed: 0,
            time_budget: None,
        }
    }

    fn ad_platform(n: usize) -> Platform {
        let spec = ModelSpec::builder("anomaly_detection")
            .optimization_metric(Metric::F1)
            .algorithm(Algorithm::Dnn)
            .data(NslKddGenerator::new(1).generate(n))
            .build()
            .unwrap();
        let mut platform = Platform::taurus();
        platform
            .constraints_mut()
            .throughput_gpps(1.0)
            .latency_ns(500.0)
            .grid(16, 16);
        platform.schedule(spec).unwrap();
        platform
    }

    #[test]
    fn open_requires_a_schedule() {
        let platform = Platform::taurus();
        assert!(matches!(
            Compiler::new(tiny_options()).open(&platform),
            Err(CoreError::InvalidProgram(_))
        ));
    }

    #[test]
    fn stages_expose_intermediate_state() {
        let platform = ad_platform(500);
        let searched = Compiler::new(tiny_options())
            .open(&platform)
            .unwrap()
            .search()
            .unwrap();
        assert_eq!(searched.searches().len(), 1);
        assert_eq!(searched.searches()[0].name(), "anomaly_detection");
        assert_eq!(searched.evaluations(), 6);
        let (algorithm, objective) = searched.searches()[0].best().expect("feasible candidate");
        assert_eq!(algorithm, Algorithm::Dnn);
        assert!(objective > 0.0);

        let trained = searched.train().unwrap();
        assert_eq!(trained.models().len(), 1);
        assert_eq!(trained.models()[0].algorithm(), Algorithm::Dnn);

        let feasible = trained.check().unwrap();
        assert!(feasible.is_feasible(), "{:?}", feasible.violations());
        assert!(feasible.models()[0].estimate().resources.get("cus") > 0.0);

        let artifact = feasible.codegen().unwrap();
        assert!(!artifact.is_partial());
        assert!(artifact.best().code.contains("@spatial object"));
    }

    #[test]
    fn cancelled_session_yields_partial_artifact() {
        let platform = ad_platform(500);
        let compiler = Compiler::new(tiny_options());
        let token = compiler.cancel_token();
        token.cancel();
        let artifact = compiler.open(&platform).unwrap().compile().unwrap();
        assert!(artifact.is_partial());
        // The cancelled search stopped at the first iteration boundary —
        // one evaluation, not the full budget.
        assert_eq!(artifact.best().history.points().len(), 1);
        // The partial artifact is still a usable model.
        let compiled = artifact.best().compiled.as_ref().unwrap();
        let mut scratch = homunculus_runtime::Scratch::new();
        assert!(compiled.classify(&[0.1; 7], &mut scratch) < 2);
    }

    #[test]
    fn observer_sees_stage_brackets_and_iterations() {
        let platform = ad_platform(500);
        let observer = Arc::new(CollectingObserver::new());
        let artifact = Compiler::new(tiny_options())
            .observe(observer.clone())
            .open(&platform)
            .unwrap()
            .compile()
            .unwrap();
        assert_eq!(
            observer.count(|e| matches!(
                e,
                CompileEvent::StageStarted {
                    stage: CompileStage::Search,
                    model: None
                }
            )),
            1
        );
        for stage in [
            CompileStage::Search,
            CompileStage::Train,
            CompileStage::Check,
            CompileStage::Codegen,
        ] {
            assert_eq!(
                observer.count(|e| matches!(e, CompileEvent::StageFinished { stage: s, model: None, .. } if *s == stage)),
                1,
                "missing whole-stage finish for {}",
                stage.name()
            );
        }
        // One CandidateEvaluated per recorded history point.
        assert_eq!(
            observer.count(|e| matches!(e, CompileEvent::CandidateEvaluated { .. })),
            artifact
                .reports()
                .iter()
                .flat_map(|r| r.algorithm_histories.iter())
                .map(|(_, h)| h.points().len())
                .sum::<usize>()
        );
        // The final retrain reported at least one attempt.
        assert!(observer.count(|e| matches!(e, CompileEvent::FinalTrainAttempt { .. })) >= 1);
        assert_eq!(
            observer.count(|e| matches!(e, CompileEvent::Cancelled { .. })),
            0
        );
    }

    #[test]
    fn cancel_before_any_feasible_candidate_names_the_cancellation() {
        // A platform tight enough that the single evaluated candidate is
        // infeasible (latency 40 ns rejects every sampled DNN, but the
        // pre-filter's minimal configuration squeaks through): cancelling
        // immediately leaves no best-so-far, so the session fails like an
        // exhausted search — with the cancellation named in the error.
        let spec = ModelSpec::builder("tight")
            .optimization_metric(Metric::F1)
            .algorithm(Algorithm::Dnn)
            .data(NslKddGenerator::new(1).generate(400))
            .build()
            .unwrap();
        let mut platform = Platform::taurus();
        platform
            .constraints_mut()
            .throughput_gpps(1.0)
            .latency_ns(40.0)
            .grid(16, 16);
        platform.schedule(spec).unwrap();
        let compiler = Compiler::new(tiny_options());
        compiler.cancel_token().cancel();
        match compiler.open(&platform).unwrap().compile() {
            Err(CoreError::NoFeasibleModel(message)) => {
                assert!(
                    message.contains("cancelled"),
                    "error should name the cancellation: {message}"
                );
            }
            Err(CoreError::NoCandidates(_)) => {
                panic!("pre-filter rejected everything; tighten the test setup instead")
            }
            other => panic!("expected NoFeasibleModel, got {other:?}"),
        }
    }

    #[test]
    fn cancel_token_is_shared_and_idempotent() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        clone.cancel();
        clone.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn stage_names() {
        assert_eq!(CompileStage::Search.name(), "search");
        assert_eq!(CompileStage::Train.name(), "train");
        assert_eq!(CompileStage::Check.name(), "check");
        assert_eq!(CompileStage::Codegen.name(), "codegen");
    }

    fn two_model_platform(n: usize) -> Platform {
        let a = ModelSpec::builder("ad_a")
            .optimization_metric(Metric::F1)
            .algorithm(Algorithm::Dnn)
            .data(NslKddGenerator::new(1).generate(n))
            .build()
            .unwrap();
        let b = ModelSpec::builder("ad_b")
            .optimization_metric(Metric::F1)
            .algorithm(Algorithm::Dnn)
            .data(NslKddGenerator::new(2).generate(n))
            .build()
            .unwrap();
        let mut platform = Platform::taurus();
        platform
            .constraints_mut()
            .throughput_gpps(1.0)
            .latency_ns(500.0)
            .grid(16, 16);
        platform.schedule(a >> b).unwrap();
        platform
    }

    #[test]
    fn parallel_models_match_sequential_bit_for_bit() {
        let mut sequential_options = tiny_options();
        sequential_options.parallel = false;
        let sequential = Compiler::new(sequential_options)
            .open(&two_model_platform(500))
            .unwrap()
            .compile()
            .unwrap();
        let parallel = Compiler::new(tiny_options())
            .open(&two_model_platform(500))
            .unwrap()
            .compile()
            .unwrap();
        assert_eq!(
            sequential.to_json_string().unwrap(),
            parallel.to_json_string().unwrap(),
            "model-parallel compile must be bit-identical to sequential"
        );
    }

    #[test]
    fn checkpoint_roundtrip_resumes_bit_identically() {
        let platform = ad_platform(500);
        let reference = Compiler::new(tiny_options())
            .open(&platform)
            .unwrap()
            .search()
            .unwrap();

        // Interrupt a second, identical session after two evaluations.
        let compiler = Compiler::new(tiny_options());
        let token = compiler.cancel_token();
        let seen = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let observer = {
            let seen = seen.clone();
            move |event: &CompileEvent| {
                if matches!(event, CompileEvent::CandidateEvaluated { .. })
                    && seen.fetch_add(1, Ordering::Relaxed) + 1 >= 2
                {
                    token.cancel();
                }
            }
        };
        let truncated = compiler
            .observe(Arc::new(observer))
            .open(&platform)
            .unwrap()
            .search()
            .unwrap();
        assert_eq!(truncated.evaluations(), 2);

        let path = std::env::temp_dir().join("homunculus_session_test.checkpoint.json");
        truncated.save_checkpoint(&path).unwrap();
        // The resuming compiler's own options are deliberately different:
        // resume must run under the checkpoint's.
        let resumed = Compiler::new(CompilerOptions::default())
            .resume(&platform, &path)
            .unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(resumed.evaluations(), 6);
        assert_eq!(
            resumed.checkpoint_json(),
            reference.checkpoint_json(),
            "a resumed search must be bit-identical to an uninterrupted one"
        );
        let (a, b) = (
            resumed.train().unwrap().check().unwrap().codegen().unwrap(),
            reference
                .train()
                .unwrap()
                .check()
                .unwrap()
                .codegen()
                .unwrap(),
        );
        assert_eq!(a.to_json_string().unwrap(), b.to_json_string().unwrap());
    }

    #[test]
    fn binary_checkpoints_decode_like_json_ones() {
        let platform = ad_platform(500);
        let searched = Compiler::new(tiny_options())
            .open(&platform)
            .unwrap()
            .search()
            .unwrap();
        let json_path = std::env::temp_dir().join("homunculus_session_test_a.checkpoint.json");
        let bin_path = std::env::temp_dir().join("homunculus_session_test_a.checkpoint.bin");
        searched.save_checkpoint(&json_path).unwrap();
        searched.save_checkpoint_bin(&bin_path).unwrap();
        let bin_bytes = std::fs::metadata(&bin_path).unwrap().len();
        let json_bytes = std::fs::metadata(&json_path).unwrap().len();
        assert!(
            bin_bytes < json_bytes,
            "binary checkpoint ({bin_bytes} B) should undercut JSON ({json_bytes} B)"
        );
        let from_json = Compiler::new(tiny_options())
            .resume(&platform, &json_path)
            .unwrap();
        let from_bin = Compiler::new(tiny_options())
            .resume(&platform, &bin_path)
            .unwrap();
        std::fs::remove_file(&json_path).ok();
        std::fs::remove_file(&bin_path).ok();
        assert_eq!(from_json.checkpoint_json(), from_bin.checkpoint_json());
        assert_eq!(from_json.checkpoint_json(), searched.checkpoint_json());
    }

    #[test]
    fn resume_rejects_corrupt_and_foreign_checkpoints() {
        let platform = ad_platform(500);
        let searched = Compiler::new(tiny_options())
            .open(&platform)
            .unwrap()
            .search()
            .unwrap();
        let text = searched.checkpoint_json();
        let dir = std::env::temp_dir();
        let write = |name: &str, contents: &[u8]| {
            let path = dir.join(name);
            std::fs::write(&path, contents).unwrap();
            path
        };
        let expect_checkpoint_error = |path: &std::path::Path| {
            let result = Compiler::new(tiny_options()).resume(&platform, path);
            std::fs::remove_file(path).ok();
            assert!(
                matches!(result, Err(CoreError::Checkpoint(_))),
                "expected CoreError::Checkpoint, got {:?}",
                result.err()
            );
        };

        // Garbage bytes, truncated binary, wrong version, tampered seed.
        expect_checkpoint_error(&write(
            "homunculus_session_garbage.ckpt",
            b"not a checkpoint",
        ));
        let bin = searched.checkpoint_bin_bytes();
        expect_checkpoint_error(&write(
            "homunculus_session_truncated.ckpt",
            &bin[..bin.len() / 2],
        ));
        expect_checkpoint_error(&write(
            "homunculus_session_version.ckpt",
            text.replace("homunculus.checkpoint/v1", "homunculus.checkpoint/v9")
                .as_bytes(),
        ));
        let tampered = text.replace("\"seed\":0", "\"seed\":99");
        assert_ne!(tampered, text, "tamper target not found");
        expect_checkpoint_error(&write("homunculus_session_seed.ckpt", tampered.as_bytes()));

        // A checkpoint from a different schedule.
        let foreign = write("homunculus_session_foreign.ckpt", text.as_bytes());
        let other = two_model_platform(500);
        let result = Compiler::new(tiny_options()).resume(&other, &foreign);
        std::fs::remove_file(&foreign).ok();
        assert!(matches!(result, Err(CoreError::Checkpoint(_))));
    }

    #[test]
    fn deadline_degrades_to_partial_artifact() {
        let mut options = tiny_options();
        options.time_budget = Some(std::time::Duration::ZERO);
        let observer = Arc::new(CollectingObserver::new());
        let artifact = Compiler::new(options)
            .observe(observer.clone())
            .open(&ad_platform(500))
            .unwrap()
            .compile()
            .unwrap();
        // The expired deadline tripped the token at the first boundary:
        // one evaluation, partial artifact, Cancelled reported once.
        assert!(artifact.is_partial());
        assert_eq!(artifact.best().history.points().len(), 1);
        assert_eq!(
            observer.count(|e| matches!(e, CompileEvent::Cancelled { .. })),
            1
        );
    }

    #[test]
    fn log_observer_renders_timestamped_lines() {
        #[derive(Clone, Default)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = SharedBuf::default();
        Compiler::new(tiny_options())
            .observe(Arc::new(LogObserver::new(buf.clone())))
            .open(&ad_platform(500))
            .unwrap()
            .compile()
            .unwrap();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("search started"), "log:\n{text}");
        assert!(
            text.contains("anomaly_detection/dnn: iteration 0"),
            "log:\n{text}"
        );
        assert!(text.contains("finished in"), "log:\n{text}");
        assert!(
            text.lines().all(|line| line.starts_with('[')),
            "every line is timestamped:\n{text}"
        );
    }
}

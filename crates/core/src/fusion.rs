//! Model fusion (§3.2.5).
//!
//! "Models learning from similar datasets are most likely learning
//! similar characteristics. [...] Homunculus will assess the feature
//! sets for similarities and if there are a certain number of features in
//! common, it will attempt to build a single model to serve both
//! datasets" — halving resource usage when it works (Table 4).

use crate::alchemy::ModelSpec;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Default feature-overlap (Jaccard) threshold for attempting fusion.
pub const DEFAULT_OVERLAP_THRESHOLD: f64 = 0.8;

/// The outcome of a fusion attempt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FusionDecision {
    /// The specs were fused into one.
    Fused {
        /// Overlap that justified the fusion.
        overlap: f64,
    },
    /// Overlap below threshold.
    InsufficientOverlap {
        /// Measured overlap.
        overlap: f64,
        /// Required threshold.
        threshold: f64,
    },
    /// Objectives disagree (cannot serve both with one model).
    IncompatibleObjectives,
}

/// Attempts to fuse two model specs into one.
///
/// Succeeds when the feature schemas overlap at least `threshold`
/// (Jaccard) and the objectives match; the fused spec trains on the
/// merged dataset and carries the union of the algorithm restrictions.
///
/// # Errors
///
/// Propagates dataset merge errors (schema mismatches despite overlap).
pub fn try_fuse(
    a: &ModelSpec,
    b: &ModelSpec,
    threshold: f64,
) -> Result<(Option<ModelSpec>, FusionDecision)> {
    if a.optimization_metric != b.optimization_metric {
        return Ok((None, FusionDecision::IncompatibleObjectives));
    }
    let overlap = a.dataset.feature_overlap(&b.dataset);
    if overlap < threshold {
        return Ok((
            None,
            FusionDecision::InsufficientOverlap { overlap, threshold },
        ));
    }
    let dataset = a.dataset.merge(&b.dataset)?;
    let mut algorithms = a.algorithms.clone();
    for alg in &b.algorithms {
        if !algorithms.contains(alg) {
            algorithms.push(*alg);
        }
    }
    let mut builder = ModelSpec::builder(format!("{}+{}", a.name, b.name))
        .optimization_metric(a.optimization_metric)
        .data(dataset)
        .test_fraction(a.test_fraction);
    for alg in algorithms {
        builder = builder.algorithm(alg);
    }
    let fused = builder.build()?;
    Ok((Some(fused), FusionDecision::Fused { overlap }))
}

/// Greedily fuses a list of specs pairwise until no pair qualifies.
///
/// # Errors
///
/// Propagates fusion errors.
pub fn fuse_all(mut specs: Vec<ModelSpec>, threshold: f64) -> Result<Vec<ModelSpec>> {
    if specs.len() < 2 {
        return Ok(specs);
    }
    loop {
        let mut fused_pair: Option<(usize, usize, ModelSpec)> = None;
        'outer: for i in 0..specs.len() {
            for j in (i + 1)..specs.len() {
                let (result, _) = try_fuse(&specs[i], &specs[j], threshold)?;
                if let Some(fused) = result {
                    fused_pair = Some((i, j, fused));
                    break 'outer;
                }
            }
        }
        match fused_pair {
            Some((i, j, fused)) => {
                specs.remove(j);
                specs.remove(i);
                specs.push(fused);
            }
            None => return Ok(specs),
        }
    }
}

/// Validation helper for fused names.
pub fn is_fused_name(name: &str) -> bool {
    name.contains('+')
}

/// Splits a fused name back into its parts.
pub fn fused_parts(name: &str) -> Vec<&str> {
    name.split('+').collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alchemy::Metric;
    use homunculus_datasets::dataset::Dataset;
    use homunculus_datasets::nslkdd::NslKddGenerator;
    use homunculus_ml::tensor::Matrix;

    fn spec_with(name: &str, features: Vec<&str>, metric: Metric) -> ModelSpec {
        let x = Matrix::from_fn(6, features.len(), |r, c| (r * 7 + c) as f32);
        let ds = Dataset::new(
            x,
            vec![0, 1, 0, 1, 0, 1],
            2,
            features.iter().map(|s| s.to_string()).collect(),
        )
        .unwrap();
        ModelSpec::builder(name)
            .optimization_metric(metric)
            .data(ds)
            .build()
            .unwrap()
    }

    #[test]
    fn identical_schemas_fuse() {
        let a = spec_with("a", vec!["x", "y"], Metric::F1);
        let b = spec_with("b", vec!["x", "y"], Metric::F1);
        let (fused, decision) = try_fuse(&a, &b, DEFAULT_OVERLAP_THRESHOLD).unwrap();
        let fused = fused.expect("should fuse");
        assert_eq!(fused.name, "a+b");
        assert_eq!(fused.dataset.len(), 12);
        assert!(matches!(decision, FusionDecision::Fused { overlap } if overlap == 1.0));
    }

    #[test]
    fn low_overlap_rejected() {
        let a = spec_with("a", vec!["x", "y"], Metric::F1);
        let b = spec_with("b", vec!["x", "z"], Metric::F1);
        let (fused, decision) = try_fuse(&a, &b, DEFAULT_OVERLAP_THRESHOLD).unwrap();
        assert!(fused.is_none());
        assert!(matches!(
            decision,
            FusionDecision::InsufficientOverlap { .. }
        ));
    }

    #[test]
    fn incompatible_objectives_rejected() {
        let a = spec_with("a", vec!["x", "y"], Metric::F1);
        let b = spec_with("b", vec!["x", "y"], Metric::Accuracy);
        let (fused, decision) = try_fuse(&a, &b, 0.0).unwrap();
        assert!(fused.is_none());
        assert_eq!(decision, FusionDecision::IncompatibleObjectives);
    }

    #[test]
    fn table4_scenario_halves_fuse() {
        // The Table 4 experiment: one AD dataset split in two, fused back.
        let g = NslKddGenerator::new(9);
        let (half_a, half_b) = g.generate_halves(1_000);
        let a = ModelSpec::builder("ad_part1").data(half_a).build().unwrap();
        let b = ModelSpec::builder("ad_part2").data(half_b).build().unwrap();
        let (fused, _) = try_fuse(&a, &b, DEFAULT_OVERLAP_THRESHOLD).unwrap();
        let fused = fused.expect("halves share the schema");
        assert_eq!(fused.dataset.len(), 1_000);
        assert!(is_fused_name(&fused.name));
        assert_eq!(fused_parts(&fused.name), vec!["ad_part1", "ad_part2"]);
    }

    #[test]
    fn fuse_all_greedy() {
        let a = spec_with("a", vec!["x", "y"], Metric::F1);
        let b = spec_with("b", vec!["x", "y"], Metric::F1);
        let c = spec_with("c", vec!["p", "q"], Metric::F1);
        let out = fuse_all(vec![a, b, c], DEFAULT_OVERLAP_THRESHOLD).unwrap();
        assert_eq!(out.len(), 2);
        let names: Vec<&str> = out.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"c"));
        assert!(names.contains(&"a+b"));
    }

    #[test]
    fn fuse_all_singleton_passthrough() {
        let a = spec_with("a", vec!["x"], Metric::F1);
        let out = fuse_all(vec![a.clone()], 0.9).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].name, "a");
    }
}

//! (Automated) design-space creation (§3.2.2).
//!
//! For each candidate algorithm, Homunculus "uses the accompanying
//! models' parameters and constraints to build a design space [...] by
//! setting upper and lower bounds for these tunable parameters", with the
//! bounds "typically calculated based on the target being considered".
//!
//! Three variable classes appear (§3.2.2): *hyper-parameters* (searched
//! here), *physical resources* and *network constraints* (encoded as
//! feasibility verdicts during evaluation, not as search dimensions).

use crate::alchemy::{Algorithm, ModelSpec, Platform, PlatformTarget};
use crate::Result;
use homunculus_ml::mlp::{MlpArchitecture, Optim, TrainConfig};
use homunculus_optimizer::space::{Configuration, DesignSpace, Parameter};

/// Builds the search space for `algorithm` on `platform`.
///
/// The platform bounds the space: a Taurus grid caps DNN width/depth by
/// its CU/MU capacity; a Tofino MAT budget caps KMeans cluster counts and
/// SVM feature counts — "many model architectures can be eliminated by
/// Homunculus as they may violate one or more of these requirements,
/// effectively reducing the search space" (§3).
///
/// # Errors
///
/// Propagates design-space construction errors.
pub fn design_space_for(
    algorithm: Algorithm,
    spec: &ModelSpec,
    platform: &Platform,
) -> Result<DesignSpace> {
    let mut space = DesignSpace::new(format!("{}-{}", spec.name, algorithm.name()));
    let n_features = spec.dataset.n_features();
    match algorithm {
        Algorithm::Dnn => {
            let (max_layers, max_width) = dnn_bounds(platform, n_features);
            space.add("n_layers", Parameter::integer(1, max_layers as i64))?;
            space.add("width", Parameter::integer(2, max_width as i64))?;
            space.add("taper", Parameter::ordinal(vec![0.5, 0.7, 0.85, 1.0]))?;
            space.add("log10_lr", Parameter::real(-3.0, -0.8))?;
            space.add("batch", Parameter::ordinal(vec![16.0, 32.0, 64.0, 128.0]))?;
        }
        Algorithm::Svm => {
            let min_features = 2.min(n_features) as i64;
            space.add("log10_lambda", Parameter::real(-5.0, -1.0))?;
            space.add(
                "features",
                Parameter::integer(min_features, n_features as i64),
            )?;
        }
        Algorithm::KMeans => {
            let max_k = kmeans_max_k(platform, spec);
            space.add("k", Parameter::integer(1, max_k as i64))?;
        }
        Algorithm::DecisionTree => {
            space.add("depth", Parameter::integer(1, 10))?;
            space.add("min_leaf", Parameter::integer(1, 8))?;
        }
        Algorithm::RandomForest => {
            // Each tree lowers to its own table program, so ensemble
            // size is the first-order resource knob; depth is kept
            // shallower than a lone tree's since votes smooth variance.
            space.add("n_trees", Parameter::integer(2, 12))?;
            space.add("depth", Parameter::integer(1, 8))?;
            space.add("min_leaf", Parameter::integer(1, 8))?;
        }
    }
    Ok(space)
}

/// Platform-derived DNN bounds: the widest layer must fit the grid when
/// fully unrolled, and depth is capped by MU availability.
fn dnn_bounds(platform: &Platform, n_features: usize) -> (usize, usize) {
    match platform.effective_target() {
        PlatformTarget::Taurus(t) => {
            // width * ceil(n_features/8) CUs must fit the grid with room
            // for other layers; cap conservatively at half the capacity.
            let per_neuron = n_features
                .div_ceil(homunculus_backends::taurus::VEC_WIDTH)
                .max(1);
            let max_width = (t.cu_capacity() / (2 * per_neuron)).clamp(4, 64);
            let max_layers = 10;
            (max_layers, max_width)
        }
        PlatformTarget::Tofino(t) => {
            // BNN layers cost 12 MATs each.
            let max_layers = (t.mats / homunculus_backends::tofino::MATS_PER_BNN_LAYER).max(1);
            (max_layers.min(10), 32)
        }
        PlatformTarget::Fpga(_) => (10, 64),
    }
}

/// Platform-derived KMeans bound: one MAT per cluster on Tofino.
fn kmeans_max_k(platform: &Platform, spec: &ModelSpec) -> usize {
    let data_cap = spec.dataset.n_classes() + 3;
    match platform.effective_target() {
        PlatformTarget::Tofino(t) => t.mats.min(data_cap).max(1),
        _ => data_cap,
    }
}

/// Decodes a DNN configuration into an architecture.
///
/// Layer widths taper geometrically: `width * taper^i`, floored at 2 —
/// this lets a single fixed-dimension space cover both wide-shallow and
/// narrow-deep topologies (the Hom-BD winner is a narrow-deep one).
///
/// # Panics
///
/// Panics if `config` does not come from the DNN space.
pub fn decode_dnn_architecture(
    config: &Configuration,
    input_dim: usize,
    n_classes: usize,
) -> MlpArchitecture {
    let n_layers = config.integer("n_layers").expect("dnn space has n_layers") as usize;
    let width = config.integer("width").expect("dnn space has width") as usize;
    let taper = config.ordinal("taper").expect("dnn space has taper");
    let hidden: Vec<usize> = (0..n_layers)
        .map(|i| ((width as f64 * taper.powi(i as i32)).round() as usize).max(2))
        .collect();
    MlpArchitecture::new(input_dim, hidden, n_classes.max(2))
}

/// Decodes a DNN configuration into training hyper-parameters.
///
/// # Panics
///
/// Panics if `config` does not come from the DNN space.
pub fn decode_dnn_training(config: &Configuration, epochs: usize, seed: u64) -> TrainConfig {
    let lr = 10f64.powf(config.real("log10_lr").expect("dnn space has log10_lr")) as f32;
    let batch = config.ordinal("batch").expect("dnn space has batch") as usize;
    TrainConfig::default()
        .epochs(epochs)
        .learning_rate(lr)
        .batch_size(batch)
        .seed(seed)
        .optim(Optim::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alchemy::Metric;
    use homunculus_datasets::nslkdd::NslKddGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec() -> ModelSpec {
        ModelSpec::builder("test")
            .optimization_metric(Metric::F1)
            .data(NslKddGenerator::new(0).generate(200))
            .build()
            .unwrap()
    }

    #[test]
    fn dnn_space_has_expected_parameters() {
        let space = design_space_for(Algorithm::Dnn, &spec(), &Platform::taurus()).unwrap();
        let names: Vec<&String> = space.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["n_layers", "width", "taper", "log10_lr", "batch"]);
    }

    #[test]
    fn svm_and_tree_and_kmeans_spaces() {
        let s = spec();
        let svm = design_space_for(Algorithm::Svm, &s, &Platform::taurus()).unwrap();
        assert_eq!(svm.len(), 2);
        let tree = design_space_for(Algorithm::DecisionTree, &s, &Platform::taurus()).unwrap();
        assert_eq!(tree.len(), 2);
        let km = design_space_for(Algorithm::KMeans, &s, &Platform::tofino()).unwrap();
        assert_eq!(km.len(), 1);
    }

    #[test]
    fn forest_space_has_expected_parameters() {
        let space =
            design_space_for(Algorithm::RandomForest, &spec(), &Platform::taurus()).unwrap();
        let names: Vec<&String> = space.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["n_trees", "depth", "min_leaf"]);
    }

    #[test]
    fn tofino_mat_budget_caps_kmeans_k() {
        let mut p = Platform::tofino();
        p.constraints_mut().mats(3);
        let space = design_space_for(Algorithm::KMeans, &spec(), &p).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let c = space.sample(&mut rng);
            assert!(c.integer("k").unwrap() <= 3);
        }
    }

    #[test]
    fn small_grid_caps_dnn_width() {
        let mut p = Platform::taurus();
        p.constraints_mut().grid(4, 4);
        let space = design_space_for(Algorithm::Dnn, &spec(), &p).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let c = space.sample(&mut rng);
            assert!(c.integer("width").unwrap() <= 16, "width should be capped");
        }
    }

    #[test]
    fn decode_dnn_architecture_tapers() {
        let space = design_space_for(Algorithm::Dnn, &spec(), &Platform::taurus()).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let c = space.sample(&mut rng);
            let arch = decode_dnn_architecture(&c, 7, 2);
            assert_eq!(arch.input_dim, 7);
            assert_eq!(arch.output_dim, 2);
            assert_eq!(arch.hidden.len(), c.integer("n_layers").unwrap() as usize);
            // Tapered: widths never grow.
            for w in arch.hidden.windows(2) {
                assert!(w[1] <= w[0]);
            }
            assert!(arch.hidden.iter().all(|&w| w >= 2));
            assert!(arch.validate().is_ok());
        }
    }

    #[test]
    fn decode_dnn_training_ranges() {
        let space = design_space_for(Algorithm::Dnn, &spec(), &Platform::taurus()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let c = space.sample(&mut rng);
        let t = decode_dnn_training(&c, 25, 7);
        assert_eq!(t.epochs, 25);
        assert_eq!(t.seed, 7);
        assert!(t.learning_rate > 0.0 && t.learning_rate <= 0.1);
        assert!([16, 32, 64, 128].contains(&t.batch_size));
    }
}

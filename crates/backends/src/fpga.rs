//! The FPGA backend: P4-SDNet / NetFPGA-style flow on an Alveo U250.
//!
//! The paper's end-to-end testbed emulates the Taurus MapReduce core as a
//! bump-in-the-wire on a Xilinx Alveo U250 FPGA, and reports LUT/FF/BRAM
//! utilization and board power for every model (Table 5). This backend
//! reproduces that *estimator*.
//!
//! # Calibration (documented constants)
//!
//! Table 5 gives six model measurements plus a loopback floor:
//!
//! ```text
//! Loopback:  LUT 5.36%  FF 3.64%  BRAM 4.15%  15.131 W
//! Base-AD:   LUT 6.55%  FF 4.30%  BRAM 4.15%  16.969 W   (203 params, 3 layers)
//! Hom-AD:    LUT 6.61%  FF 4.43%  BRAM 4.15%  17.440 W   (254 params, 3 layers)
//! Base-TC:   LUT 6.69%  FF 4.48%  BRAM 4.15%  17.553 W   (275 params, 4 layers)
//! Hom-TC:    LUT 7.48%  FF 4.77%  BRAM 4.15%  18.405 W   (370 params, 4 layers)
//! Base-BD:   LUT 7.29%  FF 4.68%  BRAM 4.15%  17.807 W   (662 params, 5 layers)
//! Hom-BD:    LUT 6.72%  FF 4.49%  BRAM 4.15%  17.309 W   (501 params, 11 layers)
//! ```
//!
//! Least-squares over those rows gives the linear model used here:
//!
//! - `ΔLUT% = 0.0016 * params + 0.02 * layers + 0.80`
//! - `ΔFF%  = 0.25 + 0.35 * ΔLUT%`
//! - `BRAM% = 4.15` (constant: parameters live in LUT-RAM, matching the
//!   paper's observation that "LUTs store the parameters of a model")
//! - `Power(W) = 15.131 + 1.30 * ΔLUT% + 0.40 * ΔFF%`
//!
//! The model reproduces Table 5's qualitative ordering: bigger searched
//! models consume more LUT/FF/power for AD and TC, and the ordering
//! *reverses* for BD where the Homunculus model has fewer parameters.

use crate::model::ModelIr;
use crate::resources::{Performance, ResourceEstimate, ResourceVector};
use crate::spatial;
use crate::target::{Target, TargetKind};
use crate::Result;
use serde::{Deserialize, Serialize};

/// Loopback (bump-in-the-wire shell) floor from Table 5.
pub const LOOPBACK_LUT_PCT: f64 = 5.36;
/// Loopback FF floor from Table 5.
pub const LOOPBACK_FF_PCT: f64 = 3.64;
/// Loopback BRAM floor from Table 5.
pub const LOOPBACK_BRAM_PCT: f64 = 4.15;
/// Loopback board power from Table 5.
pub const LOOPBACK_POWER_W: f64 = 15.131;

/// Calibrated ΔLUT coefficients (see module docs).
const LUT_PER_PARAM: f64 = 0.0016;
const LUT_PER_LAYER: f64 = 0.02;
const LUT_BASE: f64 = 0.80;

/// An Alveo-class FPGA NIC running the P4-SDNet/Spatial flow.
///
/// # Example
///
/// ```
/// use homunculus_backends::fpga::FpgaTarget;
/// use homunculus_backends::target::Target;
/// use homunculus_backends::model::{DnnIr, ModelIr};
/// use homunculus_ml::mlp::MlpArchitecture;
///
/// # fn main() -> Result<(), homunculus_backends::BackendError> {
/// let fpga = FpgaTarget::default();
/// let model = ModelIr::Dnn(DnnIr::from_architecture(&MlpArchitecture::new(7, vec![16, 4], 2)));
/// let est = fpga.estimate(&model)?;
/// assert!(est.resources.get("lut_pct") > 5.36); // above the loopback floor
/// assert!(est.resources.get("power_w") > 15.131);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FpgaTarget {
    name: String,
    /// NIC line rate in GPkt/s (100 Gbps of minimum-size packets ≈ 0.148
    /// GPkt/s; the testbed forwards 100 Gbps through the CMAC core).
    pub line_rate_gpps: f64,
    /// Base pipeline latency in ns (PCIe-free bump-in-the-wire path).
    pub base_latency_ns: f64,
}

impl FpgaTarget {
    /// An Alveo U250 bump-in-the-wire at 100 Gbps.
    pub fn u250() -> Self {
        FpgaTarget {
            name: "fpga-alveo-u250".into(),
            line_rate_gpps: 0.148,
            base_latency_ns: 350.0,
        }
    }

    /// Predicted utilization/power deltas over the loopback floor for a
    /// model with `params` parameters and `layers` weight layers.
    pub fn deltas(params: usize, layers: usize) -> (f64, f64) {
        let d_lut = LUT_PER_PARAM * params as f64 + LUT_PER_LAYER * layers as f64 + LUT_BASE;
        let d_ff = 0.25 + 0.35 * d_lut;
        (d_lut, d_ff)
    }

    /// The loopback-only estimate (no model loaded) — Table 5's first row.
    pub fn loopback_estimate(&self) -> ResourceEstimate {
        ResourceEstimate {
            resources: ResourceVector::new()
                .with("lut_pct", LOOPBACK_LUT_PCT)
                .with("ff_pct", LOOPBACK_FF_PCT)
                .with("bram_pct", LOOPBACK_BRAM_PCT)
                .with("power_w", LOOPBACK_POWER_W),
            performance: Performance {
                throughput_gpps: self.line_rate_gpps,
                latency_ns: self.base_latency_ns,
            },
        }
    }
}

impl Default for FpgaTarget {
    fn default() -> Self {
        FpgaTarget::u250()
    }
}

impl Target for FpgaTarget {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> TargetKind {
        TargetKind::Fpga
    }

    fn supports(&self, _model: &ModelIr) -> bool {
        // The FPGA fabric is fully general.
        true
    }

    fn estimate(&self, model: &ModelIr) -> Result<ResourceEstimate> {
        model.validate()?;
        let (params, layers) = match model {
            ModelIr::Dnn(d) => (d.param_count(), d.arch.depth()),
            ModelIr::Svm(s) => (s.n_features * s.n_classes + s.n_classes, 1),
            ModelIr::KMeans(k) => (k.k * k.n_features, 1),
            ModelIr::Tree(t) => (t.leaves, 1),
            ModelIr::Forest(f) => (f.total_leaves(), 1),
        };
        let (d_lut, d_ff) = Self::deltas(params, layers);
        let lut = LOOPBACK_LUT_PCT + d_lut;
        let ff = LOOPBACK_FF_PCT + d_ff;
        let power = LOOPBACK_POWER_W + 1.30 * d_lut + 0.40 * d_ff;

        Ok(ResourceEstimate {
            resources: ResourceVector::new()
                .with("lut_pct", lut)
                .with("ff_pct", ff)
                .with("bram_pct", LOOPBACK_BRAM_PCT)
                .with("power_w", power),
            performance: Performance {
                // The fabric pipelines at line rate as long as utilization
                // is sane; past ~85% LUT the router fails timing.
                throughput_gpps: if lut < 85.0 { self.line_rate_gpps } else { 0.0 },
                latency_ns: self.base_latency_ns + 8.0 * layers as f64,
            },
        })
    }

    fn generate_code(&self, model: &ModelIr, pipeline_name: &str) -> Result<String> {
        // The testbed compiles Spatial -> Verilog for the FPGA; we emit
        // the same Spatial source as the Taurus backend. Decision trees
        // go through the P4-SDNet flow instead.
        match model {
            ModelIr::Tree(_) | ModelIr::Forest(_) => crate::p4::generate(model, pipeline_name),
            _ => spatial::generate(model, pipeline_name),
        }
    }

    fn device_budget(&self) -> ResourceVector {
        ResourceVector::new()
            .with("lut_pct", 100.0)
            .with("ff_pct", 100.0)
            .with("bram_pct", 100.0)
            .with("power_w", 225.0) // U250 board budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DnnIr;
    use homunculus_ml::mlp::MlpArchitecture;

    fn dnn(input: usize, hidden: Vec<usize>, output: usize) -> ModelIr {
        ModelIr::Dnn(DnnIr::from_architecture(&MlpArchitecture::new(
            input, hidden, output,
        )))
    }

    /// Table 5 anchoring: predictions within ~0.6% utilization and ~0.7 W
    /// of the published measurements for the three baseline models.
    #[test]
    fn calibration_matches_table5_baselines() {
        let fpga = FpgaTarget::default();
        let rows = [
            (dnn(7, vec![16, 4], 2), 6.55, 4.30, 16.969), // Base-AD
            (dnn(7, vec![10, 10, 5], 5), 6.69, 4.48, 17.553), // Base-TC
            (dnn(30, vec![10, 10, 10, 10], 2), 7.29, 4.68, 17.807), // Base-BD
        ];
        for (model, lut, ff, power) in rows {
            let est = fpga.estimate(&model).unwrap();
            assert!(
                (est.resources.get("lut_pct") - lut).abs() < 0.6,
                "lut {} vs paper {lut}",
                est.resources.get("lut_pct")
            );
            assert!(
                (est.resources.get("ff_pct") - ff).abs() < 0.6,
                "ff {} vs paper {ff}",
                est.resources.get("ff_pct")
            );
            assert!(
                (est.resources.get("power_w") - power).abs() < 0.8,
                "power {} vs paper {power}",
                est.resources.get("power_w")
            );
        }
    }

    #[test]
    fn bram_constant_at_floor() {
        let fpga = FpgaTarget::default();
        for model in [dnn(7, vec![4], 2), dnn(30, vec![32, 32], 2)] {
            let est = fpga.estimate(&model).unwrap();
            assert_eq!(est.resources.get("bram_pct"), LOOPBACK_BRAM_PCT);
        }
    }

    #[test]
    fn bigger_model_more_lut_and_power() {
        let fpga = FpgaTarget::default();
        let small = fpga.estimate(&dnn(7, vec![8], 2)).unwrap();
        let big = fpga.estimate(&dnn(7, vec![64, 32], 2)).unwrap();
        assert!(big.resources.get("lut_pct") > small.resources.get("lut_pct"));
        assert!(big.resources.get("power_w") > small.resources.get("power_w"));
    }

    /// Table 5's BD inversion: the Homunculus BD model (fewer params,
    /// more layers) uses *less* LUT/power than the baseline.
    #[test]
    fn bd_ordering_reverses() {
        let fpga = FpgaTarget::default();
        let base_bd = fpga.estimate(&dnn(30, vec![10, 10, 10, 10], 2)).unwrap();
        let hom_bd = fpga
            .estimate(&dnn(30, vec![5, 5, 5, 5, 5, 5, 5, 5, 5, 5], 2))
            .unwrap();
        assert!(
            hom_bd.resources.get("lut_pct") < base_bd.resources.get("lut_pct"),
            "hom-bd {} should be below base-bd {}",
            hom_bd.resources.get("lut_pct"),
            base_bd.resources.get("lut_pct")
        );
        assert!(hom_bd.resources.get("power_w") < base_bd.resources.get("power_w"));
    }

    #[test]
    fn loopback_matches_table5_exactly() {
        let fpga = FpgaTarget::default();
        let lb = fpga.loopback_estimate();
        assert_eq!(lb.resources.get("lut_pct"), 5.36);
        assert_eq!(lb.resources.get("ff_pct"), 3.64);
        assert_eq!(lb.resources.get("bram_pct"), 4.15);
        assert_eq!(lb.resources.get("power_w"), 15.131);
    }

    #[test]
    fn supports_everything() {
        let fpga = FpgaTarget::default();
        assert!(fpga.supports(&dnn(7, vec![256, 256], 2)));
        assert_eq!(fpga.kind(), TargetKind::Fpga);
        assert!(fpga.device_budget().get("lut_pct") == 100.0);
    }
}

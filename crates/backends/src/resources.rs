//! Resource vectors, performance envelopes, and feasibility verdicts.
//!
//! Every backend reports its estimate in a [`ResourceEstimate`] and the
//! compiler checks it against [`Constraints`] — the Alchemy
//! `platform.constrain(...)` clause of Figure 3 (throughput in GPkt/s,
//! latency in ns, plus platform resources).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Platform-specific resource usage, as named quantities.
///
/// Using a named map keeps the compiler generic across targets whose
/// "fundamental resources" differ (MATs for PISA, CUs/MUs for Taurus,
/// LUT/FF/BRAM for FPGAs — §3 of the paper).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ResourceVector {
    entries: BTreeMap<String, f64>,
}

impl ResourceVector {
    /// An empty vector.
    pub fn new() -> Self {
        ResourceVector::default()
    }

    /// Sets a named quantity, returning `self` for chaining.
    pub fn with<S: Into<String>>(mut self, name: S, value: f64) -> Self {
        self.entries.insert(name.into(), value);
        self
    }

    /// Reads a named quantity (0.0 when absent).
    pub fn get(&self, name: &str) -> f64 {
        self.entries.get(name).copied().unwrap_or(0.0)
    }

    /// Whether the quantity is present.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &f64)> {
        self.entries.iter()
    }

    /// Element-wise sum (union of keys).
    pub fn add(&self, other: &ResourceVector) -> ResourceVector {
        let mut out = self.clone();
        for (k, v) in &other.entries {
            *out.entries.entry(k.clone()).or_insert(0.0) += v;
        }
        out
    }

    /// `true` if every quantity in `self` is `<=` the matching budget
    /// entry (budget entries missing from `self` are fine; quantities
    /// missing from the budget are unconstrained).
    pub fn fits_within(&self, budget: &ResourceVector) -> bool {
        self.entries
            .iter()
            .all(|(k, v)| match budget.entries.get(k) {
                Some(b) => v <= b,
                None => true,
            })
    }
}

impl fmt::Display for ResourceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .entries
            .iter()
            .map(|(k, v)| format!("{k}={v:.2}"))
            .collect();
        write!(f, "{{{}}}", parts.join(", "))
    }
}

/// JSON document form: a flat `{name: value}` object in name order.
impl serde_json::ToJson for ResourceVector {
    fn to_json(&self) -> serde_json::Value {
        let mut map = serde_json::Map::new();
        for (name, value) in &self.entries {
            map.insert(name.clone(), serde_json::json!(*value));
        }
        serde_json::Value::Object(map)
    }
}

impl ResourceVector {
    /// Decodes the [`serde_json::ToJson`] document form.
    ///
    /// # Errors
    ///
    /// Returns [`crate::BackendError::InvalidModel`] when `value` is not a
    /// numeric-valued object.
    pub fn from_json(value: &serde_json::Value) -> crate::Result<Self> {
        let map = value.as_object().ok_or_else(|| {
            crate::BackendError::InvalidModel("resource vector must be an object".into())
        })?;
        let mut entries = BTreeMap::new();
        for (name, quantity) in map.iter() {
            let quantity = quantity.as_f64().ok_or_else(|| {
                crate::BackendError::InvalidModel(format!("resource '{name}' must be numeric"))
            })?;
            entries.insert(name.clone(), quantity);
        }
        Ok(ResourceVector { entries })
    }
}

/// Performance envelope of a mapped model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Performance {
    /// Sustained throughput in giga-packets per second.
    pub throughput_gpps: f64,
    /// Per-packet pipeline latency in nanoseconds.
    pub latency_ns: f64,
}

/// JSON document form: `{"throughput_gpps", "latency_ns"}`.
impl serde_json::ToJson for Performance {
    fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "throughput_gpps": self.throughput_gpps,
            "latency_ns": self.latency_ns,
        })
    }
}

impl Performance {
    /// Decodes the [`serde_json::ToJson`] document form.
    ///
    /// # Errors
    ///
    /// Returns [`crate::BackendError::InvalidModel`] on missing or
    /// non-numeric fields.
    pub fn from_json(value: &serde_json::Value) -> crate::Result<Self> {
        let field = |name: &str| {
            value[name].as_f64().ok_or_else(|| {
                crate::BackendError::InvalidModel(format!("performance needs numeric {name}"))
            })
        };
        Ok(Performance {
            throughput_gpps: field("throughput_gpps")?,
            latency_ns: field("latency_ns")?,
        })
    }
}

/// A backend's full estimate for one model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceEstimate {
    /// Resource usage.
    pub resources: ResourceVector,
    /// Performance envelope.
    pub performance: Performance,
}

/// JSON document form: `{"resources": {..}, "performance": {..}}`.
impl serde_json::ToJson for ResourceEstimate {
    fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "resources": self.resources,
            "performance": self.performance,
        })
    }
}

impl ResourceEstimate {
    /// Decodes the [`serde_json::ToJson`] document form.
    ///
    /// # Errors
    ///
    /// Returns [`crate::BackendError::InvalidModel`] on malformed fields.
    pub fn from_json(value: &serde_json::Value) -> crate::Result<Self> {
        Ok(ResourceEstimate {
            resources: ResourceVector::from_json(&value["resources"])?,
            performance: Performance::from_json(&value["performance"])?,
        })
    }
}

/// Network + resource constraints from the Alchemy program.
///
/// # Example
///
/// ```
/// use homunculus_backends::resources::Constraints;
///
/// let c = Constraints::new()
///     .throughput_gpps(1.0)
///     .latency_ns(500.0)
///     .resource("cus", 256.0);
/// assert_eq!(c.min_throughput_gpps, Some(1.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Constraints {
    /// Minimum sustained throughput (GPkt/s), if constrained.
    pub min_throughput_gpps: Option<f64>,
    /// Maximum acceptable latency (ns), if constrained.
    pub max_latency_ns: Option<f64>,
    /// Resource budget (per-name upper bounds).
    pub budget: ResourceVector,
}

impl Constraints {
    /// No constraints.
    pub fn new() -> Self {
        Constraints::default()
    }

    /// Requires at least this throughput.
    pub fn throughput_gpps(mut self, gpps: f64) -> Self {
        self.min_throughput_gpps = Some(gpps);
        self
    }

    /// Allows at most this latency.
    pub fn latency_ns(mut self, ns: f64) -> Self {
        self.max_latency_ns = Some(ns);
        self
    }

    /// Caps a named resource.
    pub fn resource<S: Into<String>>(mut self, name: S, cap: f64) -> Self {
        self.budget = self.budget.with(name, cap);
        self
    }

    /// Checks an estimate, returning every violation.
    pub fn check(&self, estimate: &ResourceEstimate) -> FeasibilityReport {
        let mut violations = Vec::new();
        if let Some(min) = self.min_throughput_gpps {
            if estimate.performance.throughput_gpps < min {
                violations.push(Violation::Throughput {
                    required_gpps: min,
                    achieved_gpps: estimate.performance.throughput_gpps,
                });
            }
        }
        if let Some(max) = self.max_latency_ns {
            if estimate.performance.latency_ns > max {
                violations.push(Violation::Latency {
                    budget_ns: max,
                    achieved_ns: estimate.performance.latency_ns,
                });
            }
        }
        for (name, used) in estimate.resources.iter() {
            if self.budget.contains(name) {
                let cap = self.budget.get(name);
                if *used > cap {
                    violations.push(Violation::Resource {
                        name: name.clone(),
                        cap,
                        used: *used,
                    });
                }
            }
        }
        FeasibilityReport { violations }
    }
}

/// One constraint violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Violation {
    /// Throughput below the line-rate requirement.
    Throughput {
        /// Required GPkt/s.
        required_gpps: f64,
        /// Achieved GPkt/s.
        achieved_gpps: f64,
    },
    /// Latency above budget.
    Latency {
        /// Budget in ns.
        budget_ns: f64,
        /// Achieved ns.
        achieved_ns: f64,
    },
    /// A resource over its cap.
    Resource {
        /// Resource name.
        name: String,
        /// The cap.
        cap: f64,
        /// Amount used.
        used: f64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Throughput {
                required_gpps,
                achieved_gpps,
            } => write!(
                f,
                "throughput {achieved_gpps:.3} < required {required_gpps:.3} gpps"
            ),
            Violation::Latency {
                budget_ns,
                achieved_ns,
            } => write!(f, "latency {achieved_ns:.0} > budget {budget_ns:.0} ns"),
            Violation::Resource { name, cap, used } => {
                write!(f, "{name} usage {used:.1} > cap {cap:.1}")
            }
        }
    }
}

/// Outcome of a feasibility check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeasibilityReport {
    /// Violations, empty when feasible.
    pub violations: Vec<Violation>,
}

impl FeasibilityReport {
    /// Whether all constraints were met.
    pub fn is_feasible(&self) -> bool {
        self.violations.is_empty()
    }

    /// Total *relative* violation magnitude: 0.0 when feasible, and the
    /// sum of each violation's fractional overshoot otherwise (a resource
    /// at 2x its cap contributes 1.0). Gives constrained search a gradient
    /// toward the feasible region before any feasible point is known.
    pub fn violation_score(&self) -> f64 {
        self.violations
            .iter()
            .map(|v| match v {
                Violation::Throughput {
                    required_gpps,
                    achieved_gpps,
                } => ((required_gpps - achieved_gpps) / required_gpps.max(f64::MIN_POSITIVE))
                    .max(0.0),
                Violation::Latency {
                    budget_ns,
                    achieved_ns,
                } => ((achieved_ns - budget_ns) / budget_ns.max(f64::MIN_POSITIVE)).max(0.0),
                Violation::Resource { cap, used, .. } => {
                    ((used - cap) / cap.max(f64::MIN_POSITIVE)).max(0.0)
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimate(cus: f64, tput: f64, lat: f64) -> ResourceEstimate {
        ResourceEstimate {
            resources: ResourceVector::new().with("cus", cus),
            performance: Performance {
                throughput_gpps: tput,
                latency_ns: lat,
            },
        }
    }

    #[test]
    fn vector_get_add_fits() {
        let a = ResourceVector::new().with("cus", 10.0).with("mus", 5.0);
        let b = ResourceVector::new().with("cus", 3.0);
        let sum = a.add(&b);
        assert_eq!(sum.get("cus"), 13.0);
        assert_eq!(sum.get("mus"), 5.0);
        assert_eq!(sum.get("absent"), 0.0);
        let budget = ResourceVector::new().with("cus", 15.0);
        assert!(sum.fits_within(&budget));
        let tight = ResourceVector::new().with("cus", 12.0);
        assert!(!sum.fits_within(&tight));
    }

    #[test]
    fn unconstrained_resources_always_fit() {
        let usage = ResourceVector::new().with("exotic", 1e9);
        assert!(usage.fits_within(&ResourceVector::new()));
    }

    #[test]
    fn constraints_catch_each_violation_kind() {
        let c = Constraints::new()
            .throughput_gpps(1.0)
            .latency_ns(500.0)
            .resource("cus", 100.0);

        let ok = c.check(&estimate(50.0, 1.0, 400.0));
        assert!(ok.is_feasible());

        let slow = c.check(&estimate(50.0, 0.5, 400.0));
        assert_eq!(slow.violations.len(), 1);
        assert!(matches!(slow.violations[0], Violation::Throughput { .. }));

        let laggy = c.check(&estimate(50.0, 1.0, 900.0));
        assert!(matches!(laggy.violations[0], Violation::Latency { .. }));

        let fat = c.check(&estimate(150.0, 1.0, 400.0));
        assert!(matches!(fat.violations[0], Violation::Resource { .. }));

        let all = c.check(&estimate(150.0, 0.5, 900.0));
        assert_eq!(all.violations.len(), 3);
    }

    #[test]
    fn violation_display() {
        let v = Violation::Resource {
            name: "mats".into(),
            cap: 5.0,
            used: 8.0,
        };
        assert_eq!(v.to_string(), "mats usage 8.0 > cap 5.0");
    }

    #[test]
    fn vector_display_nonempty() {
        let v = ResourceVector::new().with("cus", 10.0);
        assert_eq!(v.to_string(), "{cus=10.00}");
    }
}

#![forbid(unsafe_code)]
//! # homunculus-backends
//!
//! Backend targets for the Homunculus compiler (§3.3 of the paper): each
//! target owns a **resource model**, a **performance model**, a
//! **feasibility checker**, and a **template-based code generator**.
//!
//! Three targets are modeled, matching the paper's evaluation:
//!
//! | Target | Fabric | Limiting resources | Code |
//! |---|---|---|---|
//! | [`taurus::TaurusTarget`] | MapReduce CGRA grid ("bump in the wire" in a PISA switch) | Compute Units (CUs), Memory Units (MUs) | Spatial |
//! | [`tofino::TofinoTarget`] | PISA match-action pipeline | match-action tables (MATs), stages | P4 (IIsy-style mappings) |
//! | [`fpga::FpgaTarget`] | P4-SDNet / NetFPGA-style FPGA (Alveo U250) | LUTs, FFs, BRAM, power | P4 + Verilog-ish via Spatial |
//!
//! The numbers behind each estimator are calibrated against the paper's
//! published measurements (Tables 2 and 5); the calibration constants are
//! documented at their definition sites.
//!
//! The shared vocabulary is [`model::ModelIr`] — the backend-agnostic
//! description of a trained (or candidate) model — and the [`target::Target`]
//! trait implemented by all three backends.

pub mod fpga;
pub mod model;
pub mod p4;
pub mod resources;
pub mod spatial;
pub mod target;
pub mod taurus;
pub mod tofino;

use std::error::Error;
use std::fmt;

/// Errors produced by backend targets.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendError {
    /// The target cannot run this model family at all (e.g. a float DNN
    /// on a plain MAT pipeline without the MapReduce block).
    Unsupported {
        /// Target name.
        target: String,
        /// Model family description.
        model: String,
    },
    /// Invalid model description (e.g. zero-width layer).
    InvalidModel(String),
    /// Code generation requires trained parameters that are missing.
    MissingWeights(String),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Unsupported { target, model } => {
                write!(f, "target {target} does not support {model}")
            }
            BackendError::InvalidModel(msg) => write!(f, "invalid model: {msg}"),
            BackendError::MissingWeights(msg) => write!(f, "missing weights: {msg}"),
        }
    }
}

impl Error for BackendError {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, BackendError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = BackendError::Unsupported {
            target: "tofino".into(),
            model: "dnn".into(),
        };
        assert_eq!(e.to_string(), "target tofino does not support dnn");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BackendError>();
    }
}

//! The Taurus backend: a MapReduce CGRA grid in a PISA switch.
//!
//! Taurus (ASPLOS 2022) adds a Plasticine-style grid of **Compute Units**
//! (CUs) and **Memory Units** (MUs) between the parse and deparse MAT
//! stages of a switch, programmed via the Spatial DSL. DNN layers lower to
//! nested map/reduce (dot products) over the grid; the per-layer
//! dimensions decide the resource bill, and the unroll factor decides
//! whether the pipeline sustains line rate.
//!
//! # Resource model (calibrated to Table 2's operating range)
//!
//! For a DNN layer `in -> out`:
//!
//! - **CUs**: to sustain an initiation interval of one packet per cycle,
//!   each output neuron needs its dot product fully spatially unrolled:
//!   `ceil(in / VEC)` vector MAC lanes, `VEC = 8` lanes per CU. Total per
//!   layer: `out * ceil(in / VEC)`, plus a fixed overhead of 2 CUs for
//!   feature extraction and argmax/action selection.
//! - **MUs**: each layer keeps its activations in double-buffered SRAM
//!   (`2 * ceil(out / 2)` MUs) plus weight banks (`ceil(params / 32)`
//!   MUs of 32 words), plus 1 MU for the streaming input FIFO.
//!
//! This model reproduces the paper's qualitative Table 2 behaviour: the
//! wide-shallow Base-BD is CU-heavy while the narrow-deep Hom-BD is
//! MU-heavy (the compute/memory inversion of §5.1.2), and magnitudes land
//! in the published 24-167 CU / 45-151 MU range.

use crate::model::ModelIr;
use crate::resources::{Performance, ResourceEstimate, ResourceVector};
use crate::spatial;
use crate::target::{Target, TargetKind};
use crate::{BackendError, Result};
use serde::{Deserialize, Serialize};

/// Vector MAC lanes per CU (dot-product unroll width).
pub const VEC_WIDTH: usize = 8;

/// Words per MU weight bank.
pub const MU_BANK_WORDS: usize = 32;

/// A Taurus switch configuration.
///
/// # Example
///
/// ```
/// use homunculus_backends::taurus::TaurusTarget;
/// use homunculus_backends::target::Target;
/// use homunculus_backends::model::{DnnIr, ModelIr};
/// use homunculus_ml::mlp::MlpArchitecture;
///
/// # fn main() -> Result<(), homunculus_backends::BackendError> {
/// let taurus = TaurusTarget::new(16, 16);
/// let model = ModelIr::Dnn(DnnIr::from_architecture(&MlpArchitecture::new(7, vec![16, 4], 2)));
/// let est = taurus.estimate(&model)?;
/// assert!(est.resources.get("cus") > 0.0);
/// assert_eq!(est.performance.throughput_gpps, 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaurusTarget {
    name: String,
    /// Grid rows (CU/MU columns alternate within a row in Plasticine;
    /// we model `rows x cols` CUs and the same count of MUs).
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Clock frequency in GHz (1 GHz in the paper's testbed).
    pub clock_ghz: f64,
}

impl TaurusTarget {
    /// A Taurus switch with the given grid shape at 1 GHz.
    pub fn new(rows: usize, cols: usize) -> Self {
        TaurusTarget {
            name: format!("taurus-{rows}x{cols}"),
            rows,
            cols,
            clock_ghz: 1.0,
        }
    }

    /// Total CU capacity of the grid.
    pub fn cu_capacity(&self) -> usize {
        self.rows * self.cols
    }

    /// Total MU capacity of the grid.
    pub fn mu_capacity(&self) -> usize {
        self.rows * self.cols
    }

    /// CU cost of a DNN architecture (see module docs).
    pub fn dnn_cus(dims: &[(usize, usize)]) -> usize {
        2 + dims
            .iter()
            .map(|(i, o)| o * i.div_ceil(VEC_WIDTH))
            .sum::<usize>()
    }

    /// MU cost of a DNN architecture (see module docs).
    pub fn dnn_mus(dims: &[(usize, usize)]) -> usize {
        1 + dims
            .iter()
            .map(|(i, o)| 2 * o.div_ceil(2) + (i * o + o).div_ceil(MU_BANK_WORDS))
            .sum::<usize>()
    }

    /// Pipeline latency in cycles: per layer, a log-depth reduction tree
    /// over the dot product plus activation and buffering, plus fixed
    /// parse/deparse/feature-extraction overhead.
    pub fn dnn_latency_cycles(dims: &[(usize, usize)]) -> usize {
        let fixed = 24; // parser + feature extraction + deparser
        fixed
            + dims
                .iter()
                .map(|(i, _)| {
                    let reduce_depth = (usize::BITS - (i.max(&1) - 1).leading_zeros()) as usize;
                    reduce_depth + 3 // MAC issue + activation + buffer
                })
                .sum::<usize>()
    }
}

impl Default for TaurusTarget {
    /// The paper's running-example configuration: a 16x16 grid (Figure 3
    /// constrains `"rows": 16, "cols": 16`).
    fn default() -> Self {
        TaurusTarget::new(16, 16)
    }
}

impl Target for TaurusTarget {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> TargetKind {
        TargetKind::Taurus
    }

    fn supports(&self, model: &ModelIr) -> bool {
        // The MapReduce grid runs linear-algebra models natively. Trees
        // are better served by the MAT pipeline in front of the grid, but
        // small ones can be flattened; we accept everything except trees
        // deeper than the grid diagonal.
        match model {
            ModelIr::Dnn(_) | ModelIr::Svm(_) | ModelIr::KMeans(_) => true,
            ModelIr::Tree(t) => t.depth <= self.rows,
            ModelIr::Forest(f) => f.depth() <= self.rows,
        }
    }

    fn estimate(&self, model: &ModelIr) -> Result<ResourceEstimate> {
        model.validate()?;
        if !self.supports(model) {
            return Err(BackendError::Unsupported {
                target: self.name.clone(),
                model: model.family().into(),
            });
        }
        // Lower non-DNN families to equivalent layer dims: an SVM is one
        // dense layer; KMeans is one distance layer (k dot products) plus
        // an argmin; a tree is a comparison cascade.
        let dims: Vec<(usize, usize)> = match model {
            ModelIr::Dnn(d) => d.arch.layer_dims(),
            ModelIr::Svm(s) => vec![(s.n_features, s.n_classes.max(2) - 1)],
            ModelIr::KMeans(k) => vec![(k.n_features, k.k)],
            ModelIr::Tree(t) => vec![(t.n_features, t.depth.max(1))],
            // Each member tree is its own comparison cascade; the vote is
            // one extra reduce over the per-tree verdicts.
            ModelIr::Forest(f) => {
                let mut dims: Vec<(usize, usize)> = f
                    .trees
                    .iter()
                    .map(|t| (t.n_features, t.depth.max(1)))
                    .collect();
                dims.push((f.n_trees(), f.n_classes));
                dims
            }
        };

        let cus = Self::dnn_cus(&dims);
        let mus = Self::dnn_mus(&dims);
        let latency_cycles = Self::dnn_latency_cycles(&dims);

        // Throughput: if the computation fits the grid fully unrolled the
        // pipeline achieves II = 1 (one packet per cycle at `clock_ghz`
        // GPkt/s). Overflowing the grid forces time-multiplexing: II grows
        // with the overflow ratio and throughput drops proportionally —
        // this is the mechanism by which "too many iterations in the
        // vector-matrix multiplication loop brings down the device
        // throughput" (§3).
        let overflow =
            (cus as f64 / self.cu_capacity() as f64).max(mus as f64 / self.mu_capacity() as f64);
        let ii = overflow.ceil().max(1.0);
        let throughput_gpps = self.clock_ghz / ii;
        let latency_ns = latency_cycles as f64 / self.clock_ghz;

        Ok(ResourceEstimate {
            resources: ResourceVector::new()
                .with("cus", cus as f64)
                .with("mus", mus as f64),
            performance: Performance {
                throughput_gpps,
                latency_ns,
            },
        })
    }

    fn generate_code(&self, model: &ModelIr, pipeline_name: &str) -> Result<String> {
        // A Taurus switch is a PISA pipeline with a MapReduce block in the
        // middle: linear-algebra models lower to Spatial for the grid,
        // while decision trees map onto the surrounding MAT stages as P4.
        match model {
            ModelIr::Tree(_) | ModelIr::Forest(_) => crate::p4::generate(model, pipeline_name),
            _ => spatial::generate(model, pipeline_name),
        }
    }

    fn device_budget(&self) -> ResourceVector {
        ResourceVector::new()
            .with("cus", self.cu_capacity() as f64)
            .with("mus", self.mu_capacity() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DnnIr, KMeansIr, SvmIr, TreeIr};
    use crate::resources::Constraints;
    use homunculus_ml::mlp::MlpArchitecture;
    use proptest::prelude::*;

    fn dnn(input: usize, hidden: Vec<usize>, output: usize) -> ModelIr {
        ModelIr::Dnn(DnnIr::from_architecture(&MlpArchitecture::new(
            input, hidden, output,
        )))
    }

    /// Table 2 anchoring: the paper's hand-tuned baselines land in the
    /// published CU/MU ranges (24-167 CUs, 45-151 MUs).
    #[test]
    fn baseline_models_land_in_paper_range() {
        let taurus = TaurusTarget::default();
        // Base-AD (~203 params), Base-TC (10,10,5 — 275 params),
        // Base-BD (4x10 on 30 features — 662 params).
        for (model, _) in [
            (dnn(7, vec![16, 4], 2), "base-ad"),
            (dnn(7, vec![10, 10, 5], 5), "base-tc"),
            (dnn(30, vec![10, 10, 10, 10], 2), "base-bd"),
        ] {
            let est = taurus.estimate(&model).unwrap();
            let cus = est.resources.get("cus");
            let mus = est.resources.get("mus");
            assert!((10.0..=256.0).contains(&cus), "cus {cus}");
            assert!((10.0..=256.0).contains(&mus), "mus {mus}");
        }
    }

    /// The §5.1.2 compute/memory inversion: a wide-shallow net is
    /// CU-heavy, an equally-sized narrow-deep net is MU-heavy.
    #[test]
    fn wide_vs_deep_resource_inversion() {
        let taurus = TaurusTarget::default();
        let wide = dnn(30, vec![10, 10, 10, 10], 2); // Base-BD shape
        let deep = dnn(30, vec![5, 5, 5, 5, 5, 5, 5, 5, 5, 5], 2); // Hom-BD shape
        let w = taurus.estimate(&wide).unwrap();
        let d = taurus.estimate(&deep).unwrap();
        assert!(
            w.resources.get("cus") > d.resources.get("cus"),
            "wide should need more CUs: {} vs {}",
            w.resources.get("cus"),
            d.resources.get("cus")
        );
        assert!(
            d.resources.get("mus") > w.resources.get("mus"),
            "deep should need more MUs: {} vs {}",
            d.resources.get("mus"),
            w.resources.get("mus")
        );
    }

    #[test]
    fn small_models_hit_line_rate() {
        let taurus = TaurusTarget::default();
        let est = taurus.estimate(&dnn(7, vec![16, 4], 2)).unwrap();
        assert_eq!(est.performance.throughput_gpps, 1.0);
        assert!(
            est.performance.latency_ns < 500.0,
            "latency {}",
            est.performance.latency_ns
        );
    }

    #[test]
    fn oversized_model_loses_throughput() {
        let taurus = TaurusTarget::new(4, 4); // tiny grid
        let est = taurus.estimate(&dnn(30, vec![64, 64], 2)).unwrap();
        assert!(est.performance.throughput_gpps < 1.0);
    }

    #[test]
    fn monotonic_in_width() {
        let taurus = TaurusTarget::default();
        let mut last_cus = 0.0;
        for width in [4, 8, 16, 32] {
            let est = taurus.estimate(&dnn(7, vec![width], 2)).unwrap();
            let cus = est.resources.get("cus");
            assert!(cus >= last_cus, "cus must not shrink with width");
            last_cus = cus;
        }
    }

    #[test]
    fn feasibility_check_catches_budget() {
        let taurus = TaurusTarget::default();
        let model = dnn(30, vec![10, 10, 10, 10], 2);
        let loose = Constraints::new().throughput_gpps(1.0).latency_ns(500.0);
        assert!(taurus.check(&model, &loose).unwrap().is_feasible());
        let tight = Constraints::new().resource("cus", 10.0);
        assert!(!taurus.check(&model, &tight).unwrap().is_feasible());
    }

    #[test]
    fn svm_kmeans_tree_supported() {
        let taurus = TaurusTarget::default();
        for m in [
            ModelIr::Svm(SvmIr::from_shape(7, 2)),
            ModelIr::KMeans(KMeansIr::from_shape(5, 7)),
            ModelIr::Tree(TreeIr::from_shape(4, 7, 16)),
        ] {
            assert!(taurus.supports(&m));
            let est = taurus.estimate(&m).unwrap();
            assert!(est.resources.get("cus") >= 2.0);
        }
        let deep_tree = ModelIr::Tree(TreeIr::from_shape(40, 7, 100));
        assert!(!taurus.supports(&deep_tree));
        assert!(taurus.estimate(&deep_tree).is_err());
    }

    #[test]
    fn default_grid_is_16x16() {
        let t = TaurusTarget::default();
        assert_eq!(t.cu_capacity(), 256);
        assert_eq!(t.name(), "taurus-16x16");
        assert_eq!(t.kind(), TargetKind::Taurus);
        assert_eq!(t.device_budget().get("cus"), 256.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_estimates_positive_and_monotone_in_depth(
            width in 2usize..12,
            depth in 1usize..8,
        ) {
            let taurus = TaurusTarget::default();
            let shallow = dnn(7, vec![width; depth], 2);
            let deeper = dnn(7, vec![width; depth + 1], 2);
            let a = taurus.estimate(&shallow).unwrap();
            let b = taurus.estimate(&deeper).unwrap();
            prop_assert!(a.resources.get("cus") > 0.0);
            prop_assert!(b.resources.get("cus") >= a.resources.get("cus"));
            prop_assert!(b.resources.get("mus") > a.resources.get("mus"));
            prop_assert!(b.performance.latency_ns > a.performance.latency_ns);
        }
    }
}

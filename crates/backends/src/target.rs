//! The `Target` trait all backends implement.

use crate::model::ModelIr;
use crate::resources::{Constraints, FeasibilityReport, ResourceEstimate};
use crate::Result;
use serde::{Deserialize, Serialize};

/// Which hardware family a target belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TargetKind {
    /// Taurus-style MapReduce CGRA inside a PISA switch.
    Taurus,
    /// Plain PISA match-action pipeline (Tofino).
    Tofino,
    /// FPGA NIC/accelerator (P4-SDNet / NetFPGA flow).
    Fpga,
}

impl TargetKind {
    /// Native integer word width of the family's compute units, in bits —
    /// the width fact the static analyzer checks fixed-point formats
    /// against. Taurus CUs compute on 16-bit words (the paper's Q3.12
    /// format fills one); Tofino ALUs and FPGA datapaths handle 32-bit
    /// containers.
    pub fn word_bits(self) -> u32 {
        match self {
            TargetKind::Taurus => 16,
            TargetKind::Tofino => 32,
            TargetKind::Fpga => 32,
        }
    }
}

/// A data-plane backend: resource model + feasibility + code generator.
///
/// This is the object-safe interface the compiler core uses; each target
/// also exposes richer inherent methods.
pub trait Target {
    /// Human-readable target name (e.g. `"taurus-16x16"`).
    fn name(&self) -> &str;

    /// Hardware family.
    fn kind(&self) -> TargetKind;

    /// Whether this target can run the model family *at all* — the paper's
    /// first pruning step ("the core tries to rule out as many algorithms
    /// as possible based on the data-plane platform", §3.2.1).
    fn supports(&self, model: &ModelIr) -> bool;

    /// Estimates resources and performance for a model on this target.
    ///
    /// # Errors
    ///
    /// Returns an error for unsupported or degenerate models.
    fn estimate(&self, model: &ModelIr) -> Result<ResourceEstimate>;

    /// Checks a model against constraints (estimate + compare).
    ///
    /// # Errors
    ///
    /// Propagates estimation errors.
    fn check(&self, model: &ModelIr, constraints: &Constraints) -> Result<FeasibilityReport> {
        Ok(constraints.check(&self.estimate(model)?))
    }

    /// Generates platform code for a *trained* model.
    ///
    /// # Errors
    ///
    /// Returns [`crate::BackendError::MissingWeights`] when the IR has no
    /// trained parameters, and unsupported/invalid errors as appropriate.
    fn generate_code(&self, model: &ModelIr, pipeline_name: &str) -> Result<String>;

    /// The default resource budget of the physical device (used when the
    /// user's constraints do not override it).
    fn device_budget(&self) -> crate::resources::ResourceVector;

    /// Native integer word width in bits (see [`TargetKind::word_bits`]).
    /// A fixed-point format whose `total_bits` exceeds this cannot be
    /// computed natively on the device; the static analyzer flags it.
    fn word_bits(&self) -> u32 {
        self.kind().word_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taurus::TaurusTarget;

    #[test]
    fn trait_is_object_safe() {
        let t = TaurusTarget::default();
        let _obj: &dyn Target = &t;
    }
}

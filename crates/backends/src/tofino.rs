//! The Tofino backend: a plain PISA match-action pipeline with IIsy-style
//! ML mappings.
//!
//! Without a MapReduce block, classical models map onto **match-action
//! tables** (MATs) by exploiting their structural similarity to table
//! lookups (IIsy, HotNets 2019). The paper plugs IIsy into Homunculus as a
//! backend (§4) with these cost rules:
//!
//! - **SVM**: roughly "a MAT per feature" plus one decision table. When
//!   the budget is too small, Homunculus "will try to remove less
//!   impactful features until the SVM model fits".
//! - **KMeans**: "a single MAT for each cluster" — the Figure 7 experiment
//!   varies exactly this budget (K5 = 5 tables ... K1 = 1 table).
//! - **Decision tree**: one table per feature plus one leaf/decision table.
//! - **DNN**: only via N2Net-style binarized layers; expensive ("a single
//!   layer of a manually designed anomaly-detection DNN in N2Net takes up
//!   to 12 MATs", §2) — this is what rules DNNs out on small MAT budgets.

use crate::model::ModelIr;
use crate::p4;
use crate::resources::{Performance, ResourceEstimate, ResourceVector};
use crate::target::{Target, TargetKind};
use crate::{BackendError, Result};
use serde::{Deserialize, Serialize};

/// MATs consumed per binarized DNN layer (N2Net's reported worst case).
pub const MATS_PER_BNN_LAYER: usize = 12;

/// A Tofino-class PISA switch.
///
/// # Example
///
/// ```
/// use homunculus_backends::tofino::TofinoTarget;
/// use homunculus_backends::target::Target;
/// use homunculus_backends::model::{KMeansIr, ModelIr};
///
/// # fn main() -> Result<(), homunculus_backends::BackendError> {
/// let tofino = TofinoTarget::default();
/// let model = ModelIr::KMeans(KMeansIr::from_shape(5, 7));
/// let est = tofino.estimate(&model)?;
/// assert_eq!(est.resources.get("mats"), 5.0); // one MAT per cluster
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TofinoTarget {
    name: String,
    /// Pipeline stages (Tofino has 12 per pipe).
    pub stages: usize,
    /// Total MATs available for the ML pipeline (the paper notes an SVM's
    /// 8 MATs are already "25% of switch tables", implying ~32 usable).
    pub mats: usize,
    /// Line rate in GPkt/s (PISA forwards at line rate regardless of the
    /// program as long as it fits).
    pub line_rate_gpps: f64,
    /// Per-stage latency in ns.
    pub stage_latency_ns: f64,
}

impl TofinoTarget {
    /// A Tofino with an explicit MAT budget.
    pub fn with_mats(mats: usize) -> Self {
        TofinoTarget {
            name: format!("tofino-{mats}mats"),
            stages: 12,
            mats,
            line_rate_gpps: 1.0,
            stage_latency_ns: 33.0,
        }
    }

    /// MAT cost of a model under the IIsy mapping rules.
    pub fn mat_cost(model: &ModelIr) -> usize {
        match model {
            // One table per feature (range match on the feature value
            // yielding a partial score) + one decision table.
            ModelIr::Svm(s) => s.n_features + 1,
            // One table per cluster.
            ModelIr::KMeans(k) => k.k,
            // One table per feature + one leaf-action table.
            ModelIr::Tree(t) => t.n_features + 1,
            // N2Net-style binarized layers.
            ModelIr::Dnn(d) => d.arch.depth() * MATS_PER_BNN_LAYER,
            // One tree-table set per member plus the vote table.
            ModelIr::Forest(f) => f.n_trees() * (f.n_features + 1) + 1,
        }
    }
}

impl Default for TofinoTarget {
    /// A 12-stage pipe with 32 usable MATs.
    fn default() -> Self {
        TofinoTarget::with_mats(32)
    }
}

impl Target for TofinoTarget {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> TargetKind {
        TargetKind::Tofino
    }

    fn supports(&self, model: &ModelIr) -> bool {
        // Everything maps in principle (DNNs via binarization); practical
        // fit is decided by the MAT budget in `estimate`/`check`.
        match model {
            ModelIr::Dnn(d) => d.arch.depth() * MATS_PER_BNN_LAYER <= self.mats,
            _ => true,
        }
    }

    fn estimate(&self, model: &ModelIr) -> Result<ResourceEstimate> {
        model.validate()?;
        if !self.supports(model) {
            return Err(BackendError::Unsupported {
                target: self.name.clone(),
                model: format!("{} (needs {} MATs)", model.family(), Self::mat_cost(model)),
            });
        }
        let mats = Self::mat_cost(model);
        // Tables pack into stages; a stage fits a handful of logical
        // tables, and dependent tables serialize across stages.
        let stages_used = mats.div_ceil(4).max(2);
        let latency_ns = stages_used as f64 * self.stage_latency_ns + 50.0; // + parser/deparser

        Ok(ResourceEstimate {
            resources: ResourceVector::new()
                .with("mats", mats as f64)
                .with("stages", stages_used as f64),
            performance: Performance {
                // PISA runs at line rate if (and only if) the program fits;
                // fitting is checked via the MAT budget.
                throughput_gpps: if mats <= self.mats {
                    self.line_rate_gpps
                } else {
                    0.0
                },
                latency_ns,
            },
        })
    }

    fn generate_code(&self, model: &ModelIr, pipeline_name: &str) -> Result<String> {
        p4::generate(model, pipeline_name)
    }

    fn device_budget(&self) -> ResourceVector {
        ResourceVector::new()
            .with("mats", self.mats as f64)
            .with("stages", self.stages as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DnnIr, KMeansIr, SvmIr, TreeIr};
    use crate::resources::Constraints;
    use homunculus_ml::mlp::MlpArchitecture;

    #[test]
    fn iisy_mat_costs() {
        // SVM: one MAT per feature + decision — the paper cites an SVM
        // using 8 MATs; 7 features + 1 matches.
        let svm = ModelIr::Svm(SvmIr::from_shape(7, 2));
        assert_eq!(TofinoTarget::mat_cost(&svm), 8);
        // KMeans: one MAT per cluster (paper: 2 tables for 2 clusters).
        let km = ModelIr::KMeans(KMeansIr::from_shape(2, 7));
        assert_eq!(TofinoTarget::mat_cost(&km), 2);
        // Tree: feature tables + leaf table.
        let tree = ModelIr::Tree(TreeIr::from_shape(3, 4, 8));
        assert_eq!(TofinoTarget::mat_cost(&tree), 5);
        // DNN via N2Net: 12 MATs per layer.
        let dnn = ModelIr::Dnn(DnnIr::from_architecture(&MlpArchitecture::new(
            7,
            vec![8],
            2,
        )));
        assert_eq!(TofinoTarget::mat_cost(&dnn), 24);
    }

    #[test]
    fn dnn_rejected_when_budget_too_small() {
        let tofino = TofinoTarget::with_mats(16);
        let dnn = ModelIr::Dnn(DnnIr::from_architecture(&MlpArchitecture::new(
            7,
            vec![8, 8],
            2,
        )));
        assert!(!tofino.supports(&dnn));
        assert!(matches!(
            tofino.estimate(&dnn),
            Err(BackendError::Unsupported { .. })
        ));
        // A fat budget admits it.
        let big = TofinoTarget::with_mats(64);
        assert!(big.supports(&dnn));
    }

    #[test]
    fn kmeans_fits_budget_exactly() {
        // The Figure 7 sweep: k clusters need exactly k MATs.
        for budget in 1..=5usize {
            let tofino = TofinoTarget::with_mats(budget);
            let fits = ModelIr::KMeans(KMeansIr::from_shape(budget, 7));
            let constraints = Constraints::new().resource("mats", budget as f64);
            assert!(tofino.check(&fits, &constraints).unwrap().is_feasible());
            let too_big = ModelIr::KMeans(KMeansIr::from_shape(budget + 1, 7));
            assert!(!tofino.check(&too_big, &constraints).unwrap().is_feasible());
        }
    }

    #[test]
    fn line_rate_constant_when_fitting() {
        let tofino = TofinoTarget::default();
        let est = tofino
            .estimate(&ModelIr::KMeans(KMeansIr::from_shape(5, 7)))
            .unwrap();
        assert_eq!(est.performance.throughput_gpps, 1.0);
        assert!(est.performance.latency_ns < 1_000.0);
    }

    #[test]
    fn device_budget_reports_mats() {
        let tofino = TofinoTarget::default();
        assert_eq!(tofino.device_budget().get("mats"), 32.0);
        assert_eq!(tofino.kind(), TargetKind::Tofino);
    }
}

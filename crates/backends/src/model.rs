//! The backend-agnostic model intermediate representation.
//!
//! The optimization core explores *candidate configurations*; once trained,
//! a candidate is lowered to a [`ModelIr`] that every backend understands.
//! The IR carries both the *shape* (enough for resource estimation — the
//! common case inside the BO loop) and, when available, the *trained
//! parameters* (required for final code generation).

use crate::{BackendError, Result};
use homunculus_ml::forest::RandomForestClassifier;
use homunculus_ml::kmeans::KMeans;
use homunculus_ml::mlp::{Activation, Mlp, MlpArchitecture};
use homunculus_ml::svm::LinearSvm;
use homunculus_ml::tensor::Matrix;
use homunculus_ml::tree::{DecisionTreeClassifier, ExportedNode};
use serde::{Deserialize, Serialize};
use serde_json::{json, ToJson, Value};

/// Shorthand for the recurring "field missing or mistyped" decode error.
fn decode_err(context: &str) -> BackendError {
    BackendError::InvalidModel(format!("model IR decode: {context}"))
}

/// Decodes a non-negative integer field.
fn decode_usize(value: &Value, field: &str) -> Result<usize> {
    value[field]
        .as_i64()
        .filter(|&v| v >= 0)
        .map(|v| v as usize)
        .ok_or_else(|| decode_err(&format!("needs non-negative integer '{field}'")))
}

/// Decodes an `f32` array field.
fn decode_f32s(value: &Value) -> Result<Vec<f32>> {
    value
        .as_array()
        .ok_or_else(|| decode_err("expected a numeric array"))?
        .iter()
        .map(|v| {
            v.as_f64()
                .map(|v| v as f32)
                .ok_or_else(|| decode_err("array entries must be numeric"))
        })
        .collect()
}

/// One dense layer's trained parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerParams {
    /// Weight matrix, `input_dim x output_dim`.
    pub weights: Matrix,
    /// Bias vector, length `output_dim`.
    pub bias: Vec<f32>,
}

/// JSON document form: `{"weights": <matrix>, "bias": [..]}`.
impl ToJson for LayerParams {
    fn to_json(&self) -> Value {
        json!({ "weights": self.weights, "bias": self.bias })
    }
}

impl LayerParams {
    /// Decodes the [`ToJson`] document form.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::InvalidModel`] on malformed fields.
    pub fn from_json(value: &Value) -> Result<Self> {
        Ok(LayerParams {
            weights: Matrix::from_json(&value["weights"])
                .map_err(|e| BackendError::InvalidModel(e.to_string()))?,
            bias: decode_f32s(&value["bias"])?,
        })
    }
}

/// A DNN candidate (shape + optional trained layers).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DnnIr {
    /// The architecture.
    pub arch: MlpArchitecture,
    /// Trained parameters, input-to-output order (None inside the BO loop
    /// before training, or for shape-only estimation).
    pub params: Option<Vec<LayerParams>>,
}

impl DnnIr {
    /// Shape-only IR from an architecture.
    pub fn from_architecture(arch: &MlpArchitecture) -> Self {
        DnnIr {
            arch: arch.clone(),
            params: None,
        }
    }

    /// Full IR from a trained network.
    pub fn from_mlp(mlp: &Mlp) -> Self {
        DnnIr {
            arch: mlp.architecture().clone(),
            params: Some(
                mlp.layers()
                    .iter()
                    .map(|l| LayerParams {
                        weights: l.weights.clone(),
                        bias: l.bias.clone(),
                    })
                    .collect(),
            ),
        }
    }

    /// Parameter count (Table 2's "# NN Param" column).
    pub fn param_count(&self) -> usize {
        self.arch.param_count()
    }

    /// Decodes the [`ToJson`] document form.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::InvalidModel`] on malformed fields.
    pub fn from_json(value: &Value) -> Result<Self> {
        let arch = MlpArchitecture::from_json(&value["arch"])
            .map_err(|e| BackendError::InvalidModel(e.to_string()))?;
        let params = match &value["params"] {
            Value::Null => None,
            Value::Array(layers) => Some(
                layers
                    .iter()
                    .map(LayerParams::from_json)
                    .collect::<Result<Vec<_>>>()?,
            ),
            _ => return Err(decode_err("dnn params must be an array or null")),
        };
        Ok(DnnIr { arch, params })
    }
}

/// JSON document form: `{"arch": <architecture>, "params": [..]|null}`.
impl ToJson for DnnIr {
    fn to_json(&self) -> Value {
        json!({ "arch": self.arch, "params": self.params })
    }
}

/// A linear SVM candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvmIr {
    /// Number of input features (IIsy: roughly one MAT per feature).
    pub n_features: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Trained hyperplanes (weight vectors + biases), if available.
    pub planes: Option<(Vec<Vec<f32>>, Vec<f32>)>,
}

impl SvmIr {
    /// Shape-only IR.
    pub fn from_shape(n_features: usize, n_classes: usize) -> Self {
        SvmIr {
            n_features,
            n_classes,
            planes: None,
        }
    }

    /// Full IR from a trained SVM.
    pub fn from_svm(svm: &LinearSvm) -> Self {
        SvmIr {
            n_features: svm.n_features(),
            n_classes: svm.n_classes(),
            planes: Some((svm.weights().to_vec(), svm.biases().to_vec())),
        }
    }

    /// Decodes the [`ToJson`] document form.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::InvalidModel`] on malformed fields.
    pub fn from_json(value: &Value) -> Result<Self> {
        let planes = match &value["planes"] {
            Value::Null => None,
            planes => {
                let weights = planes["weights"]
                    .as_array()
                    .ok_or_else(|| decode_err("svm planes need a weights array"))?
                    .iter()
                    .map(decode_f32s)
                    .collect::<Result<Vec<_>>>()?;
                Some((weights, decode_f32s(&planes["biases"])?))
            }
        };
        Ok(SvmIr {
            n_features: decode_usize(value, "n_features")?,
            n_classes: decode_usize(value, "n_classes")?,
            planes,
        })
    }
}

/// JSON document form: `{"n_features", "n_classes", "planes":
/// {"weights": [[..]..], "biases": [..]}|null}`.
impl ToJson for SvmIr {
    fn to_json(&self) -> Value {
        let planes = match &self.planes {
            Some((weights, biases)) => json!({ "weights": weights, "biases": biases }),
            None => Value::Null,
        };
        json!({
            "n_features": self.n_features,
            "n_classes": self.n_classes,
            "planes": planes,
        })
    }
}

/// A KMeans candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeansIr {
    /// Number of clusters (IIsy: one MAT per cluster).
    pub k: usize,
    /// Number of input features.
    pub n_features: usize,
    /// Trained centroids, if available.
    pub centroids: Option<Vec<Vec<f32>>>,
}

impl KMeansIr {
    /// Shape-only IR.
    pub fn from_shape(k: usize, n_features: usize) -> Self {
        KMeansIr {
            k,
            n_features,
            centroids: None,
        }
    }

    /// Full IR from a trained clustering.
    pub fn from_kmeans(model: &KMeans, n_features: usize) -> Self {
        KMeansIr {
            k: model.k(),
            n_features,
            centroids: Some(model.centroids().to_vec()),
        }
    }

    /// Decodes the [`ToJson`] document form.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::InvalidModel`] on malformed fields.
    pub fn from_json(value: &Value) -> Result<Self> {
        let centroids = match &value["centroids"] {
            Value::Null => None,
            Value::Array(rows) => Some(rows.iter().map(decode_f32s).collect::<Result<Vec<_>>>()?),
            _ => return Err(decode_err("kmeans centroids must be an array or null")),
        };
        Ok(KMeansIr {
            k: decode_usize(value, "k")?,
            n_features: decode_usize(value, "n_features")?,
            centroids,
        })
    }
}

/// JSON document form: `{"k", "n_features", "centroids": [[..]..]|null}`.
impl ToJson for KMeansIr {
    fn to_json(&self) -> Value {
        json!({
            "k": self.k,
            "n_features": self.n_features,
            "centroids": self.centroids,
        })
    }
}

/// One node of a trained decision tree, arena-indexed with the root at 0.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TreeNodeIr {
    /// Terminal node predicting `class`.
    Leaf {
        /// Predicted class index.
        class: usize,
    },
    /// Internal split: `feature <= threshold` goes to `left`, else `right`.
    Split {
        /// Feature index compared at this node.
        feature: usize,
        /// Split threshold.
        threshold: f32,
        /// Arena index of the left child.
        left: usize,
        /// Arena index of the right child.
        right: usize,
    },
}

/// JSON document form: `{"leaf": class}` for terminals,
/// `{"split": {"feature", "threshold", "left", "right"}}` otherwise.
impl ToJson for TreeNodeIr {
    fn to_json(&self) -> Value {
        match self {
            TreeNodeIr::Leaf { class } => json!({ "leaf": *class }),
            TreeNodeIr::Split {
                feature,
                threshold,
                left,
                right,
            } => json!({
                "split": {
                    "feature": *feature,
                    "threshold": *threshold,
                    "left": *left,
                    "right": *right,
                },
            }),
        }
    }
}

impl TreeNodeIr {
    /// Decodes the [`ToJson`] document form.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::InvalidModel`] on malformed fields.
    pub fn from_json(value: &Value) -> Result<Self> {
        if let Some(class) = value["leaf"].as_i64().filter(|&c| c >= 0) {
            return Ok(TreeNodeIr::Leaf {
                class: class as usize,
            });
        }
        let split = &value["split"];
        if split.is_null() {
            return Err(decode_err("tree node must be a leaf or a split"));
        }
        Ok(TreeNodeIr::Split {
            feature: decode_usize(split, "feature")?,
            threshold: split["threshold"]
                .as_f64()
                .ok_or_else(|| decode_err("split needs a numeric threshold"))?
                as f32,
            left: decode_usize(split, "left")?,
            right: decode_usize(split, "right")?,
        })
    }
}

/// A decision-tree candidate (depth drives MAT cost; trained nodes, when
/// present, let the runtime compile the tree to integer comparisons).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeIr {
    /// Tree depth.
    pub depth: usize,
    /// Number of input features.
    pub n_features: usize,
    /// Number of leaves.
    pub leaves: usize,
    /// Number of classes the tree was trained to separate (None for
    /// shape-only IRs; leaves alone can underreport it when a class
    /// never wins a leaf).
    pub n_classes: Option<usize>,
    /// Trained arena nodes (root at index 0), if available (None inside
    /// the BO loop for shape-only estimation).
    pub nodes: Option<Vec<TreeNodeIr>>,
}

impl TreeIr {
    /// Shape-only IR.
    pub fn from_shape(depth: usize, n_features: usize, leaves: usize) -> Self {
        TreeIr {
            depth,
            n_features,
            leaves,
            n_classes: None,
            nodes: None,
        }
    }

    /// Full IR from a trained classifier.
    pub fn from_tree(tree: &DecisionTreeClassifier) -> Self {
        let nodes = tree
            .export_nodes()
            .into_iter()
            .map(|node| match node {
                ExportedNode::Leaf { class } => TreeNodeIr::Leaf { class },
                ExportedNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => TreeNodeIr::Split {
                    feature,
                    threshold,
                    left,
                    right,
                },
            })
            .collect();
        TreeIr {
            depth: tree.depth().max(1),
            n_features: tree.n_features(),
            leaves: tree.leaf_count(),
            n_classes: Some(tree.n_classes()),
            nodes: Some(nodes),
        }
    }

    /// Decodes the [`ToJson`] document form.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::InvalidModel`] on malformed fields.
    pub fn from_json(value: &Value) -> Result<Self> {
        let n_classes = match &value["n_classes"] {
            Value::Null => None,
            n => Some(
                n.as_i64()
                    .filter(|&c| c >= 0)
                    .map(|c| c as usize)
                    .ok_or_else(|| decode_err("tree n_classes must be an integer or null"))?,
            ),
        };
        let nodes = match &value["nodes"] {
            Value::Null => None,
            Value::Array(nodes) => Some(
                nodes
                    .iter()
                    .map(TreeNodeIr::from_json)
                    .collect::<Result<Vec<_>>>()?,
            ),
            _ => return Err(decode_err("tree nodes must be an array or null")),
        };
        Ok(TreeIr {
            depth: decode_usize(value, "depth")?,
            n_features: decode_usize(value, "n_features")?,
            leaves: decode_usize(value, "leaves")?,
            n_classes,
            nodes,
        })
    }
}

/// JSON document form: `{"depth", "n_features", "leaves",
/// "n_classes": n|null, "nodes": [..]|null}`.
impl ToJson for TreeIr {
    fn to_json(&self) -> Value {
        json!({
            "depth": self.depth,
            "n_features": self.n_features,
            "leaves": self.leaves,
            "n_classes": self.n_classes,
            "nodes": self.nodes,
        })
    }
}

/// A random-forest candidate: bagged decision trees combined by majority
/// vote. Each member tree lowers exactly like a standalone [`TreeIr`]
/// (one match-action program per tree); the vote is a final reduce stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForestIr {
    /// Number of input features every member tree consumes.
    pub n_features: usize,
    /// Number of classes the vote decides between.
    pub n_classes: usize,
    /// Member trees (shape-only or trained, like [`TreeIr`]).
    pub trees: Vec<TreeIr>,
}

impl ForestIr {
    /// Shape-only IR: `n_trees` identical tree shapes.
    pub fn from_shape(n_trees: usize, depth: usize, n_features: usize, leaves: usize) -> Self {
        ForestIr {
            n_features,
            n_classes: 2,
            trees: (0..n_trees)
                .map(|_| TreeIr::from_shape(depth, n_features, leaves))
                .collect(),
        }
    }

    /// Full IR from a trained classification forest.
    pub fn from_forest(forest: &RandomForestClassifier) -> Self {
        let trees: Vec<TreeIr> = forest.trees().iter().map(TreeIr::from_tree).collect();
        let n_features = trees.iter().map(|t| t.n_features).max().unwrap_or(0);
        ForestIr {
            n_features,
            n_classes: forest.n_classes(),
            trees,
        }
    }

    /// Number of member trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Deepest member tree (drives pipeline-stage cost).
    pub fn depth(&self) -> usize {
        self.trees.iter().map(|t| t.depth).max().unwrap_or(0)
    }

    /// Total leaves across the ensemble (drives table cost).
    pub fn total_leaves(&self) -> usize {
        self.trees.iter().map(|t| t.leaves).sum()
    }

    /// Decodes the [`ToJson`] document form.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::InvalidModel`] on malformed fields.
    pub fn from_json(value: &Value) -> Result<Self> {
        let trees = value["trees"]
            .as_array()
            .ok_or_else(|| decode_err("forest needs a trees array"))?
            .iter()
            .map(TreeIr::from_json)
            .collect::<Result<Vec<_>>>()?;
        Ok(ForestIr {
            n_features: decode_usize(value, "n_features")?,
            n_classes: decode_usize(value, "n_classes")?,
            trees,
        })
    }
}

/// JSON document form: `{"n_features", "n_classes", "trees": [<tree>..]}`.
impl ToJson for ForestIr {
    fn to_json(&self) -> Value {
        json!({
            "n_features": self.n_features,
            "n_classes": self.n_classes,
            "trees": self.trees,
        })
    }
}

/// The model families the compiler can map to data planes.
///
/// A trained `ModelIr` (one carrying parameters) can be lowered to an
/// executable integer pipeline with `ModelIr::compile(format)` — provided
/// by the `Compile` extension trait in `homunculus-runtime`, which owns
/// the fixed-point execution engine (the trait lives there because the
/// runtime depends on this crate, not the other way around).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModelIr {
    /// Deep neural network.
    Dnn(DnnIr),
    /// Linear support-vector machine.
    Svm(SvmIr),
    /// KMeans clustering.
    KMeans(KMeansIr),
    /// Decision tree.
    Tree(TreeIr),
    /// Random forest (majority vote over bagged trees).
    Forest(ForestIr),
}

impl ModelIr {
    /// Short lowercase family name (used in reports and error messages).
    pub fn family(&self) -> &'static str {
        match self {
            ModelIr::Dnn(_) => "dnn",
            ModelIr::Svm(_) => "svm",
            ModelIr::KMeans(_) => "kmeans",
            ModelIr::Tree(_) => "decision_tree",
            ModelIr::Forest(_) => "random_forest",
        }
    }

    /// Number of input features the model consumes.
    pub fn n_features(&self) -> usize {
        match self {
            ModelIr::Dnn(d) => d.arch.input_dim,
            ModelIr::Svm(s) => s.n_features,
            ModelIr::KMeans(k) => k.n_features,
            ModelIr::Tree(t) => t.n_features,
            ModelIr::Forest(f) => f.n_features,
        }
    }

    /// Total trainable parameter count (0 for trees).
    pub fn param_count(&self) -> usize {
        match self {
            ModelIr::Dnn(d) => d.param_count(),
            ModelIr::Svm(s) => s.n_features * s.n_classes + s.n_classes,
            ModelIr::KMeans(k) => k.k * k.n_features,
            ModelIr::Tree(_) | ModelIr::Forest(_) => 0,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::InvalidModel`] on degenerate shapes.
    pub fn validate(&self) -> Result<()> {
        let ok = match self {
            ModelIr::Dnn(d) => d.arch.validate().is_ok(),
            ModelIr::Svm(s) => s.n_features > 0 && s.n_classes >= 2,
            ModelIr::KMeans(k) => k.k > 0 && k.n_features > 0,
            ModelIr::Tree(t) => t.n_features > 0 && t.leaves > 0,
            ModelIr::Forest(f) => {
                f.n_features > 0
                    && f.n_classes >= 2
                    && !f.trees.is_empty()
                    && f.trees
                        .iter()
                        .all(|t| t.leaves > 0 && t.n_features > 0 && t.n_features <= f.n_features)
            }
        };
        if ok {
            Ok(())
        } else {
            Err(BackendError::InvalidModel(format!(
                "degenerate {} shape",
                self.family()
            )))
        }
    }

    /// The hidden activation, for DNNs.
    pub fn activation(&self) -> Option<Activation> {
        match self {
            ModelIr::Dnn(d) => Some(d.arch.activation),
            _ => None,
        }
    }

    /// Decodes the [`ToJson`] document form (the inverse of the `{"family",
    /// "model"}` tagging), validating the decoded shape.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::InvalidModel`] for an unknown family tag,
    /// malformed fields, or a degenerate decoded shape.
    pub fn from_json(value: &Value) -> Result<Self> {
        let family = value["family"]
            .as_str()
            .ok_or_else(|| decode_err("needs a family tag"))?;
        let model = &value["model"];
        let ir = match family {
            "dnn" => ModelIr::Dnn(DnnIr::from_json(model)?),
            "svm" => ModelIr::Svm(SvmIr::from_json(model)?),
            "kmeans" => ModelIr::KMeans(KMeansIr::from_json(model)?),
            "decision_tree" => ModelIr::Tree(TreeIr::from_json(model)?),
            "random_forest" => ModelIr::Forest(ForestIr::from_json(model)?),
            other => return Err(decode_err(&format!("unknown family '{other}'"))),
        };
        ir.validate()?;
        Ok(ir)
    }
}

/// JSON document form: `{"family": <name>, "model": <family document>}`
/// with the family strings of [`ModelIr::family`]. This is the portable
/// on-disk form of a trained model: a saved artifact's IRs reload through
/// [`ModelIr::from_json`] and re-lower to the integer runtime bit-exactly
/// (weights round-trip losslessly through the JSON float syntax).
impl ToJson for ModelIr {
    fn to_json(&self) -> Value {
        let model = match self {
            ModelIr::Dnn(d) => d.to_json(),
            ModelIr::Svm(s) => s.to_json(),
            ModelIr::KMeans(k) => k.to_json(),
            ModelIr::Tree(t) => t.to_json(),
            ModelIr::Forest(f) => f.to_json(),
        };
        json!({ "family": self.family(), "model": model })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homunculus_ml::kmeans::KMeansConfig;
    use homunculus_ml::mlp::TrainConfig;
    use homunculus_ml::svm::SvmConfig;

    #[test]
    fn dnn_ir_from_architecture_has_no_params() {
        let arch = MlpArchitecture::new(7, vec![16, 4], 2);
        let ir = DnnIr::from_architecture(&arch);
        assert!(ir.params.is_none());
        assert_eq!(ir.param_count(), arch.param_count());
    }

    #[test]
    fn dnn_ir_from_trained_mlp_carries_weights() {
        let arch = MlpArchitecture::new(2, vec![4], 2);
        let mut mlp = Mlp::new(&arch, 0).unwrap();
        let x = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap();
        mlp.train(&x, &[0, 1], &TrainConfig::default().epochs(2))
            .unwrap();
        let ir = DnnIr::from_mlp(&mlp);
        let params = ir.params.as_ref().unwrap();
        assert_eq!(params.len(), 2);
        assert_eq!(params[0].weights.shape(), (2, 4));
        assert_eq!(params[1].bias.len(), 2);
    }

    #[test]
    fn svm_and_kmeans_ir_roundtrip() {
        let x = Matrix::from_rows(&[
            vec![-1.0, 0.0],
            vec![-2.0, 0.1],
            vec![1.0, 0.0],
            vec![2.0, -0.1],
        ])
        .unwrap();
        let svm = LinearSvm::fit(&x, &[0, 0, 1, 1], 2, &SvmConfig::default()).unwrap();
        let ir = SvmIr::from_svm(&svm);
        assert_eq!(ir.n_features, 2);
        assert!(ir.planes.is_some());

        let km = KMeans::fit(&x, &KMeansConfig::new(2)).unwrap();
        let ir = KMeansIr::from_kmeans(&km, 2);
        assert_eq!(ir.k, 2);
        assert_eq!(ir.centroids.as_ref().unwrap().len(), 2);
    }

    #[test]
    fn family_names_and_features() {
        let dnn = ModelIr::Dnn(DnnIr::from_architecture(&MlpArchitecture::new(
            7,
            vec![4],
            2,
        )));
        assert_eq!(dnn.family(), "dnn");
        assert_eq!(dnn.n_features(), 7);
        let svm = ModelIr::Svm(SvmIr::from_shape(5, 2));
        assert_eq!(svm.family(), "svm");
        assert_eq!(svm.param_count(), 12);
        let km = ModelIr::KMeans(KMeansIr::from_shape(3, 4));
        assert_eq!(km.param_count(), 12);
        let tree = ModelIr::Tree(TreeIr::from_shape(4, 6, 16));
        assert_eq!(tree.family(), "decision_tree");
        assert_eq!(tree.param_count(), 0);
    }

    #[test]
    fn tree_ir_from_trained_tree_carries_nodes() {
        use homunculus_ml::tree::TreeConfig;
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let tree =
            DecisionTreeClassifier::fit(&x, &[0, 0, 1, 1], 2, &TreeConfig::default()).unwrap();
        let ir = TreeIr::from_tree(&tree);
        assert_eq!(ir.n_features, 1);
        assert_eq!(ir.leaves, tree.leaf_count());
        let nodes = ir.nodes.as_ref().unwrap();
        assert_eq!(nodes.len(), tree.node_count());
        assert!(nodes.iter().any(|n| matches!(n, TreeNodeIr::Split { .. })));
        // Child indices stay inside the arena.
        for node in nodes {
            if let TreeNodeIr::Split { left, right, .. } = node {
                assert!(*left < nodes.len() && *right < nodes.len());
            }
        }
    }

    #[test]
    fn every_family_roundtrips_through_json() {
        use homunculus_ml::mlp::TrainConfig;
        use homunculus_ml::tree::TreeConfig;

        let x = Matrix::from_rows(&[
            vec![-1.0, 0.1],
            vec![-2.0, 0.3],
            vec![1.0, -0.2],
            vec![2.0, -0.4],
        ])
        .unwrap();
        let y = [0usize, 0, 1, 1];

        let mut mlp = Mlp::new(&MlpArchitecture::new(2, vec![3], 2), 1).unwrap();
        mlp.train(&x, &y, &TrainConfig::default().epochs(3))
            .unwrap();
        let svm = LinearSvm::fit(&x, &y, 2, &homunculus_ml::svm::SvmConfig::default()).unwrap();
        let km = KMeans::fit(&x, &KMeansConfig::new(2)).unwrap();
        let tree = DecisionTreeClassifier::fit(&x, &y, 2, &TreeConfig::default()).unwrap();

        let irs = [
            ModelIr::Dnn(DnnIr::from_mlp(&mlp)),
            ModelIr::Dnn(DnnIr::from_architecture(&MlpArchitecture::new(
                4,
                vec![2],
                2,
            ))),
            ModelIr::Svm(SvmIr::from_svm(&svm)),
            ModelIr::Svm(SvmIr::from_shape(3, 2)),
            ModelIr::KMeans(KMeansIr::from_kmeans(&km, 2)),
            ModelIr::KMeans(KMeansIr::from_shape(4, 3)),
            ModelIr::Tree(TreeIr::from_tree(&tree)),
            ModelIr::Tree(TreeIr::from_shape(3, 2, 4)),
            ModelIr::Forest(ForestIr::from_forest(
                &homunculus_ml::forest::RandomForestClassifier::fit(
                    &x,
                    &y,
                    2,
                    &homunculus_ml::forest::ForestConfig {
                        n_trees: 3,
                        ..Default::default()
                    },
                )
                .unwrap(),
            )),
            ModelIr::Forest(ForestIr::from_shape(3, 2, 4, 4)),
        ];
        for ir in irs {
            let text = serde_json::to_string(&ir.to_json()).unwrap();
            let decoded = ModelIr::from_json(&serde_json::from_str(&text).unwrap()).unwrap();
            assert_eq!(ir, decoded, "{} IR drifted through JSON", ir.family());
        }
    }

    #[test]
    fn json_decode_rejects_malformed() {
        let bad = serde_json::from_str("{\"family\": \"transformer\", \"model\": {}}").unwrap();
        assert!(ModelIr::from_json(&bad).is_err(), "unknown family");
        let bad = serde_json::from_str("{\"model\": {}}").unwrap();
        assert!(ModelIr::from_json(&bad).is_err(), "missing family");
        // Degenerate decoded shapes are rejected by validate().
        let bad = serde_json::from_str(
            "{\"family\": \"svm\", \"model\": {\"n_features\": 0, \"n_classes\": 2, \"planes\": null}}",
        )
        .unwrap();
        assert!(ModelIr::from_json(&bad).is_err(), "degenerate shape");
    }

    #[test]
    fn validate_rejects_degenerate() {
        assert!(ModelIr::Svm(SvmIr::from_shape(0, 2)).validate().is_err());
        assert!(ModelIr::KMeans(KMeansIr::from_shape(0, 4))
            .validate()
            .is_err());
        assert!(ModelIr::Tree(TreeIr::from_shape(1, 0, 2))
            .validate()
            .is_err());
        assert!(ModelIr::Svm(SvmIr::from_shape(4, 2)).validate().is_ok());
    }
}

//! The backend-agnostic model intermediate representation.
//!
//! The optimization core explores *candidate configurations*; once trained,
//! a candidate is lowered to a [`ModelIr`] that every backend understands.
//! The IR carries both the *shape* (enough for resource estimation — the
//! common case inside the BO loop) and, when available, the *trained
//! parameters* (required for final code generation).

use crate::{BackendError, Result};
use homunculus_ml::kmeans::KMeans;
use homunculus_ml::mlp::{Activation, Mlp, MlpArchitecture};
use homunculus_ml::svm::LinearSvm;
use homunculus_ml::tensor::Matrix;
use homunculus_ml::tree::{DecisionTreeClassifier, ExportedNode};
use serde::{Deserialize, Serialize};

/// One dense layer's trained parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerParams {
    /// Weight matrix, `input_dim x output_dim`.
    pub weights: Matrix,
    /// Bias vector, length `output_dim`.
    pub bias: Vec<f32>,
}

/// A DNN candidate (shape + optional trained layers).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DnnIr {
    /// The architecture.
    pub arch: MlpArchitecture,
    /// Trained parameters, input-to-output order (None inside the BO loop
    /// before training, or for shape-only estimation).
    pub params: Option<Vec<LayerParams>>,
}

impl DnnIr {
    /// Shape-only IR from an architecture.
    pub fn from_architecture(arch: &MlpArchitecture) -> Self {
        DnnIr {
            arch: arch.clone(),
            params: None,
        }
    }

    /// Full IR from a trained network.
    pub fn from_mlp(mlp: &Mlp) -> Self {
        DnnIr {
            arch: mlp.architecture().clone(),
            params: Some(
                mlp.layers()
                    .iter()
                    .map(|l| LayerParams {
                        weights: l.weights.clone(),
                        bias: l.bias.clone(),
                    })
                    .collect(),
            ),
        }
    }

    /// Parameter count (Table 2's "# NN Param" column).
    pub fn param_count(&self) -> usize {
        self.arch.param_count()
    }
}

/// A linear SVM candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvmIr {
    /// Number of input features (IIsy: roughly one MAT per feature).
    pub n_features: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Trained hyperplanes (weight vectors + biases), if available.
    pub planes: Option<(Vec<Vec<f32>>, Vec<f32>)>,
}

impl SvmIr {
    /// Shape-only IR.
    pub fn from_shape(n_features: usize, n_classes: usize) -> Self {
        SvmIr {
            n_features,
            n_classes,
            planes: None,
        }
    }

    /// Full IR from a trained SVM.
    pub fn from_svm(svm: &LinearSvm) -> Self {
        SvmIr {
            n_features: svm.n_features(),
            n_classes: svm.n_classes(),
            planes: Some((svm.weights().to_vec(), svm.biases().to_vec())),
        }
    }
}

/// A KMeans candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeansIr {
    /// Number of clusters (IIsy: one MAT per cluster).
    pub k: usize,
    /// Number of input features.
    pub n_features: usize,
    /// Trained centroids, if available.
    pub centroids: Option<Vec<Vec<f32>>>,
}

impl KMeansIr {
    /// Shape-only IR.
    pub fn from_shape(k: usize, n_features: usize) -> Self {
        KMeansIr {
            k,
            n_features,
            centroids: None,
        }
    }

    /// Full IR from a trained clustering.
    pub fn from_kmeans(model: &KMeans, n_features: usize) -> Self {
        KMeansIr {
            k: model.k(),
            n_features,
            centroids: Some(model.centroids().to_vec()),
        }
    }
}

/// One node of a trained decision tree, arena-indexed with the root at 0.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TreeNodeIr {
    /// Terminal node predicting `class`.
    Leaf {
        /// Predicted class index.
        class: usize,
    },
    /// Internal split: `feature <= threshold` goes to `left`, else `right`.
    Split {
        /// Feature index compared at this node.
        feature: usize,
        /// Split threshold.
        threshold: f32,
        /// Arena index of the left child.
        left: usize,
        /// Arena index of the right child.
        right: usize,
    },
}

/// A decision-tree candidate (depth drives MAT cost; trained nodes, when
/// present, let the runtime compile the tree to integer comparisons).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeIr {
    /// Tree depth.
    pub depth: usize,
    /// Number of input features.
    pub n_features: usize,
    /// Number of leaves.
    pub leaves: usize,
    /// Number of classes the tree was trained to separate (None for
    /// shape-only IRs; leaves alone can underreport it when a class
    /// never wins a leaf).
    pub n_classes: Option<usize>,
    /// Trained arena nodes (root at index 0), if available (None inside
    /// the BO loop for shape-only estimation).
    pub nodes: Option<Vec<TreeNodeIr>>,
}

impl TreeIr {
    /// Shape-only IR.
    pub fn from_shape(depth: usize, n_features: usize, leaves: usize) -> Self {
        TreeIr {
            depth,
            n_features,
            leaves,
            n_classes: None,
            nodes: None,
        }
    }

    /// Full IR from a trained classifier.
    pub fn from_tree(tree: &DecisionTreeClassifier) -> Self {
        let nodes = tree
            .export_nodes()
            .into_iter()
            .map(|node| match node {
                ExportedNode::Leaf { class } => TreeNodeIr::Leaf { class },
                ExportedNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => TreeNodeIr::Split {
                    feature,
                    threshold,
                    left,
                    right,
                },
            })
            .collect();
        TreeIr {
            depth: tree.depth().max(1),
            n_features: tree.n_features(),
            leaves: tree.leaf_count(),
            n_classes: Some(tree.n_classes()),
            nodes: Some(nodes),
        }
    }
}

/// The model families the compiler can map to data planes.
///
/// A trained `ModelIr` (one carrying parameters) can be lowered to an
/// executable integer pipeline with `ModelIr::compile(format)` — provided
/// by the `Compile` extension trait in `homunculus-runtime`, which owns
/// the fixed-point execution engine (the trait lives there because the
/// runtime depends on this crate, not the other way around).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModelIr {
    /// Deep neural network.
    Dnn(DnnIr),
    /// Linear support-vector machine.
    Svm(SvmIr),
    /// KMeans clustering.
    KMeans(KMeansIr),
    /// Decision tree.
    Tree(TreeIr),
}

impl ModelIr {
    /// Short lowercase family name (used in reports and error messages).
    pub fn family(&self) -> &'static str {
        match self {
            ModelIr::Dnn(_) => "dnn",
            ModelIr::Svm(_) => "svm",
            ModelIr::KMeans(_) => "kmeans",
            ModelIr::Tree(_) => "decision_tree",
        }
    }

    /// Number of input features the model consumes.
    pub fn n_features(&self) -> usize {
        match self {
            ModelIr::Dnn(d) => d.arch.input_dim,
            ModelIr::Svm(s) => s.n_features,
            ModelIr::KMeans(k) => k.n_features,
            ModelIr::Tree(t) => t.n_features,
        }
    }

    /// Total trainable parameter count (0 for trees).
    pub fn param_count(&self) -> usize {
        match self {
            ModelIr::Dnn(d) => d.param_count(),
            ModelIr::Svm(s) => s.n_features * s.n_classes + s.n_classes,
            ModelIr::KMeans(k) => k.k * k.n_features,
            ModelIr::Tree(_) => 0,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::InvalidModel`] on degenerate shapes.
    pub fn validate(&self) -> Result<()> {
        let ok = match self {
            ModelIr::Dnn(d) => d.arch.validate().is_ok(),
            ModelIr::Svm(s) => s.n_features > 0 && s.n_classes >= 2,
            ModelIr::KMeans(k) => k.k > 0 && k.n_features > 0,
            ModelIr::Tree(t) => t.n_features > 0 && t.leaves > 0,
        };
        if ok {
            Ok(())
        } else {
            Err(BackendError::InvalidModel(format!(
                "degenerate {} shape",
                self.family()
            )))
        }
    }

    /// The hidden activation, for DNNs.
    pub fn activation(&self) -> Option<Activation> {
        match self {
            ModelIr::Dnn(d) => Some(d.arch.activation),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homunculus_ml::kmeans::KMeansConfig;
    use homunculus_ml::mlp::TrainConfig;
    use homunculus_ml::svm::SvmConfig;

    #[test]
    fn dnn_ir_from_architecture_has_no_params() {
        let arch = MlpArchitecture::new(7, vec![16, 4], 2);
        let ir = DnnIr::from_architecture(&arch);
        assert!(ir.params.is_none());
        assert_eq!(ir.param_count(), arch.param_count());
    }

    #[test]
    fn dnn_ir_from_trained_mlp_carries_weights() {
        let arch = MlpArchitecture::new(2, vec![4], 2);
        let mut mlp = Mlp::new(&arch, 0).unwrap();
        let x = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap();
        mlp.train(&x, &[0, 1], &TrainConfig::default().epochs(2))
            .unwrap();
        let ir = DnnIr::from_mlp(&mlp);
        let params = ir.params.as_ref().unwrap();
        assert_eq!(params.len(), 2);
        assert_eq!(params[0].weights.shape(), (2, 4));
        assert_eq!(params[1].bias.len(), 2);
    }

    #[test]
    fn svm_and_kmeans_ir_roundtrip() {
        let x = Matrix::from_rows(&[
            vec![-1.0, 0.0],
            vec![-2.0, 0.1],
            vec![1.0, 0.0],
            vec![2.0, -0.1],
        ])
        .unwrap();
        let svm = LinearSvm::fit(&x, &[0, 0, 1, 1], 2, &SvmConfig::default()).unwrap();
        let ir = SvmIr::from_svm(&svm);
        assert_eq!(ir.n_features, 2);
        assert!(ir.planes.is_some());

        let km = KMeans::fit(&x, &KMeansConfig::new(2)).unwrap();
        let ir = KMeansIr::from_kmeans(&km, 2);
        assert_eq!(ir.k, 2);
        assert_eq!(ir.centroids.as_ref().unwrap().len(), 2);
    }

    #[test]
    fn family_names_and_features() {
        let dnn = ModelIr::Dnn(DnnIr::from_architecture(&MlpArchitecture::new(
            7,
            vec![4],
            2,
        )));
        assert_eq!(dnn.family(), "dnn");
        assert_eq!(dnn.n_features(), 7);
        let svm = ModelIr::Svm(SvmIr::from_shape(5, 2));
        assert_eq!(svm.family(), "svm");
        assert_eq!(svm.param_count(), 12);
        let km = ModelIr::KMeans(KMeansIr::from_shape(3, 4));
        assert_eq!(km.param_count(), 12);
        let tree = ModelIr::Tree(TreeIr::from_shape(4, 6, 16));
        assert_eq!(tree.family(), "decision_tree");
        assert_eq!(tree.param_count(), 0);
    }

    #[test]
    fn tree_ir_from_trained_tree_carries_nodes() {
        use homunculus_ml::tree::TreeConfig;
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let tree =
            DecisionTreeClassifier::fit(&x, &[0, 0, 1, 1], 2, &TreeConfig::default()).unwrap();
        let ir = TreeIr::from_tree(&tree);
        assert_eq!(ir.n_features, 1);
        assert_eq!(ir.leaves, tree.leaf_count());
        let nodes = ir.nodes.as_ref().unwrap();
        assert_eq!(nodes.len(), tree.node_count());
        assert!(nodes.iter().any(|n| matches!(n, TreeNodeIr::Split { .. })));
        // Child indices stay inside the arena.
        for node in nodes {
            if let TreeNodeIr::Split { left, right, .. } = node {
                assert!(*left < nodes.len() && *right < nodes.len());
            }
        }
    }

    #[test]
    fn validate_rejects_degenerate() {
        assert!(ModelIr::Svm(SvmIr::from_shape(0, 2)).validate().is_err());
        assert!(ModelIr::KMeans(KMeansIr::from_shape(0, 4))
            .validate()
            .is_err());
        assert!(ModelIr::Tree(TreeIr::from_shape(1, 0, 2))
            .validate()
            .is_err());
        assert!(ModelIr::Svm(SvmIr::from_shape(4, 2)).validate().is_ok());
    }
}

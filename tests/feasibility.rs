//! Constraint handling across the stack: pre-filtering, in-loop
//! rejection, and the budget sweeps the paper's microbenchmarks rely on.

use homunculus::core::alchemy::{Algorithm, Metric, ModelSpec, Platform};
use homunculus::core::pipeline::{generate_with, CompilerOptions};
use homunculus::core::CoreError;
use homunculus::datasets::iot::IotTrafficGenerator;
use homunculus::datasets::nslkdd::NslKddGenerator;

fn fast() -> CompilerOptions {
    CompilerOptions {
        bo_budget: 6,
        doe_samples: 3,
        train_epochs: 8,
        final_epochs: 10,
        sample_cap: Some(500),
        parallel: true,
        seed: 7,
        time_budget: None,
    }
}

#[test]
fn shrinking_mat_budget_shrinks_chosen_k() {
    // Figure 7's mechanism: each budget produces a model that fits it.
    let mut last_k = i64::MAX - 1;
    for mats in [5usize, 3, 1] {
        let model = ModelSpec::builder("tc")
            .optimization_metric(Metric::VMeasure)
            .data(IotTrafficGenerator::new(8).generate(900))
            .build()
            .unwrap();
        let mut platform = Platform::tofino();
        platform.constraints_mut().mats(mats);
        platform.schedule(model).unwrap();
        let artifact = generate_with(&platform, &fast()).unwrap();
        let k = artifact.best().configuration.integer("k").unwrap();
        assert!(
            k as usize <= mats,
            "budget {mats} produced k={k} (must fit one MAT per cluster)"
        );
        assert!(k <= last_k + 1, "k should not grow as budget shrinks");
        last_k = k;
    }
}

#[test]
fn latency_budget_excludes_deep_models() {
    // With a very tight latency budget only shallow nets are feasible.
    let model = ModelSpec::builder("ad")
        .optimization_metric(Metric::F1)
        .algorithm(Algorithm::Dnn)
        .data(NslKddGenerator::new(9).generate(900))
        .build()
        .unwrap();
    let mut platform = Platform::taurus();
    platform
        .constraints_mut()
        .throughput_gpps(1.0)
        .latency_ns(45.0) // fixed overhead is 24 cycles; 1-2 layers max
        .grid(16, 16);
    platform.schedule(model).unwrap();
    match generate_with(&platform, &fast()) {
        Ok(artifact) => {
            let best = artifact.best();
            assert!(
                best.estimate.performance.latency_ns <= 45.0,
                "latency {}",
                best.estimate.performance.latency_ns
            );
            assert!(
                best.configuration.integer("n_layers").unwrap() <= 2,
                "deep model slipped through"
            );
        }
        Err(CoreError::NoFeasibleModel(_)) | Err(CoreError::NoCandidates(_)) => {
            // Acceptable outcome: the budget really is brutal.
        }
        Err(other) => panic!("unexpected error: {other}"),
    }
}

#[test]
fn infeasible_evaluations_are_recorded_not_fatal() {
    let model = ModelSpec::builder("ad")
        .optimization_metric(Metric::F1)
        .algorithm(Algorithm::Dnn)
        .data(NslKddGenerator::new(10).generate(700))
        .build()
        .unwrap();
    let mut platform = Platform::taurus();
    platform
        .constraints_mut()
        .throughput_gpps(1.0)
        .latency_ns(500.0)
        .grid(8, 8); // small grid: big candidates infeasible
    platform.schedule(model).unwrap();
    let artifact = generate_with(&platform, &fast()).unwrap();
    let best = artifact.best();
    // Some of the search points may be infeasible; the history keeps them.
    assert!(best.history.feasible_fraction() > 0.0);
    assert!(best.estimate.resources.get("cus") <= 64.0);
}

#[test]
fn device_budget_always_applies() {
    // Even without user resource clauses, the device's own capacity caps
    // the search (the paper's "repository of resources and capabilities").
    let model = ModelSpec::builder("ad")
        .optimization_metric(Metric::F1)
        .algorithm(Algorithm::Dnn)
        .data(NslKddGenerator::new(11).generate(700))
        .build()
        .unwrap();
    let mut platform = Platform::taurus();
    platform.constraints_mut().grid(6, 6);
    platform.schedule(model).unwrap();
    let artifact = generate_with(&platform, &fast()).unwrap();
    assert!(artifact.best().estimate.resources.get("cus") <= 36.0);
}

#[test]
fn vmeasure_on_taurus_uses_kmeans_without_mat_pruning() {
    // Candidate pre-filtering is platform-aware: KMeans on Taurus lowers
    // to a distance layer, so VMeasure works there too.
    let model = ModelSpec::builder("tc_taurus")
        .optimization_metric(Metric::VMeasure)
        .data(IotTrafficGenerator::new(12).generate(800))
        .build()
        .unwrap();
    let mut platform = Platform::taurus();
    platform.constraints_mut().grid(16, 16);
    platform.schedule(model).unwrap();
    let artifact = generate_with(&platform, &fast()).unwrap();
    assert_eq!(artifact.best().algorithm, Algorithm::KMeans);
}

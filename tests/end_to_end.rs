//! Cross-crate integration: the three paper applications compiled
//! end-to-end on their respective backends.

use homunculus::core::alchemy::{Algorithm, Metric, ModelSpec, Platform};
use homunculus::core::pipeline::{generate_with, CompilerOptions};
use homunculus::dataplane::histogram::FlowmarkerConfig;
use homunculus::datasets::iot::IotTrafficGenerator;
use homunculus::datasets::nslkdd::NslKddGenerator;
use homunculus::datasets::p2p::{flowmarker_dataset, P2pTrafficGenerator};

fn fast() -> CompilerOptions {
    CompilerOptions {
        bo_budget: 8,
        doe_samples: 4,
        train_epochs: 10,
        final_epochs: 20,
        sample_cap: Some(600),
        parallel: true,
        seed: 0,
        time_budget: None,
    }
}

#[test]
fn anomaly_detection_on_taurus() {
    let model = ModelSpec::builder("anomaly_detection")
        .optimization_metric(Metric::F1)
        .algorithm(Algorithm::Dnn)
        .data(NslKddGenerator::new(1).generate(1_200))
        .build()
        .unwrap();
    let mut platform = Platform::taurus();
    platform
        .constraints_mut()
        .throughput_gpps(1.0)
        .latency_ns(500.0)
        .grid(16, 16);
    platform.schedule(model).unwrap();

    let artifact = generate_with(&platform, &fast()).unwrap();
    let best = artifact.best();
    assert_eq!(best.algorithm, Algorithm::Dnn);
    assert!(best.objective > 0.55, "AD F1 too low: {}", best.objective);
    assert!(best.estimate.resources.get("cus") <= 256.0);
    assert!(best.estimate.performance.latency_ns <= 500.0);
    assert_eq!(best.estimate.performance.throughput_gpps, 1.0);
    assert!(best.code.contains("@spatial object AnomalyDetection"));
}

#[test]
fn traffic_classification_on_tofino() {
    let model = ModelSpec::builder("traffic_classification")
        .optimization_metric(Metric::VMeasure)
        .data(IotTrafficGenerator::new(2).generate(1_000))
        .build()
        .unwrap();
    let mut platform = Platform::tofino();
    platform.constraints_mut().mats(5);
    platform.schedule(model).unwrap();

    let artifact = generate_with(&platform, &fast()).unwrap();
    let best = artifact.best();
    assert_eq!(best.algorithm, Algorithm::KMeans);
    // The hard-regime traffic (45% striped overlap) caps clustering
    // quality well below the clean-archetype ceiling.
    assert!(
        best.objective > 0.08,
        "TC v-measure too low: {}",
        best.objective
    );
    assert!(best.estimate.resources.get("mats") <= 5.0);
    assert!(best.code.contains("table cluster_0"));
}

#[test]
fn botnet_detection_on_taurus_with_flowmarkers() {
    let flows = P2pTrafficGenerator::new(3).generate_flows(350);
    let dataset = flowmarker_dataset(&flows, FlowmarkerConfig::paper_reduced());
    assert_eq!(dataset.n_features(), 30);

    let model = ModelSpec::builder("botnet_detection")
        .optimization_metric(Metric::F1)
        .algorithm(Algorithm::Dnn)
        .data(dataset)
        .build()
        .unwrap();
    let mut platform = Platform::taurus();
    platform
        .constraints_mut()
        .throughput_gpps(1.0)
        .latency_ns(500.0)
        .grid(16, 16);
    platform.schedule(model).unwrap();

    let artifact = generate_with(&platform, &fast()).unwrap();
    let best = artifact.best();
    assert!(best.objective > 0.7, "BD F1 too low: {}", best.objective);
    assert!(best.ir.n_features() == 30);
}

#[test]
fn anomaly_detection_on_fpga() {
    let model = ModelSpec::builder("ad_fpga")
        .optimization_metric(Metric::F1)
        .algorithm(Algorithm::Dnn)
        .data(NslKddGenerator::new(4).generate(800))
        .build()
        .unwrap();
    let mut platform = Platform::fpga();
    platform.constraints_mut().latency_ns(1_000.0);
    platform.schedule(model).unwrap();

    let artifact = generate_with(&platform, &fast()).unwrap();
    let best = artifact.best();
    assert!(
        best.estimate.resources.get("lut_pct") > 5.36,
        "above loopback floor"
    );
    assert!(best.estimate.resources.get("power_w") > 15.131);
    assert_eq!(best.estimate.resources.get("bram_pct"), 4.15);
}

#[test]
fn svm_and_tree_also_compile() {
    for algorithm in [Algorithm::Svm, Algorithm::DecisionTree] {
        let model = ModelSpec::builder("ad_alt")
            .optimization_metric(Metric::F1)
            .algorithm(algorithm)
            .data(NslKddGenerator::new(5).generate(800))
            .build()
            .unwrap();
        let mut platform = Platform::tofino();
        platform.constraints_mut().mats(16);
        platform.schedule(model).unwrap();
        let artifact = generate_with(&platform, &fast()).unwrap();
        let best = artifact.best();
        assert_eq!(best.algorithm, algorithm);
        assert!(
            best.objective > 0.4,
            "{algorithm:?} objective {}",
            best.objective
        );
        assert!(best.estimate.resources.get("mats") <= 16.0);
    }
}

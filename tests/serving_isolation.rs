//! Cross-tenant isolation under a contended worker pool.
//!
//! Eight tenants spanning every model family — four of them sigmoid DNNs
//! sharing one activation LUT — are served over a 2-worker pool at
//! single-row dispatch granularity (maximum interleaving: workers hop
//! between tenants on every packet, reusing their scratch buffers across
//! tenants). Every tenant's verdicts must be bit-identical to running
//! that tenant alone on one thread: any cross-tenant scratch or LUT
//! aliasing would show up here.

use homunculus::backends::model::{DnnIr, KMeansIr, ModelIr, SvmIr, TreeIr};
use homunculus::datasets::dataset::Normalizer;
use homunculus::ml::mlp::{Activation, Mlp, MlpArchitecture};
use homunculus::ml::quantize::FixedPoint;
use homunculus::ml::tensor::Matrix;
use homunculus::ml::tree::{DecisionTreeClassifier, TreeConfig};
use homunculus::runtime::{Compile, Deployment, PipelineServer, ServeOptions, TenantBatch};

/// Deterministic pseudo-random value in `[-bound, bound]`.
fn value(seed: u64, row: usize, col: usize, bound: f32) -> f32 {
    let mix = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add((row * 31 + col * 7 + 1) as u64)
        .wrapping_mul(0xD1B54A32D192ED03);
    ((mix >> 33) as f32 / (u32::MAX >> 1) as f32 - 1.0) * bound
}

const FEATURES: usize = 5;

fn tenant_irs() -> Vec<ModelIr> {
    let mut irs: Vec<ModelIr> = Vec::new();
    // Four sigmoid DNNs with distinct weights: all share one LUT.
    for seed in 0..4u64 {
        let arch =
            MlpArchitecture::new(FEATURES, vec![8, 4], 3).with_activation(Activation::Sigmoid);
        irs.push(ModelIr::Dnn(DnnIr::from_mlp(
            &Mlp::new(&arch, seed).unwrap(),
        )));
    }
    // One tanh DNN (second LUT in the same format).
    let arch = MlpArchitecture::new(FEATURES, vec![6], 2).with_activation(Activation::Tanh);
    irs.push(ModelIr::Dnn(DnnIr::from_mlp(&Mlp::new(&arch, 9).unwrap())));
    // One multiclass SVM.
    irs.push(ModelIr::Svm(SvmIr {
        n_features: FEATURES,
        n_classes: 3,
        planes: Some((
            (0..3)
                .map(|p| (0..FEATURES).map(|c| value(77, p, c, 1.0)).collect())
                .collect(),
            (0..3).map(|p| value(78, p, 0, 0.5)).collect(),
        )),
    }));
    // One KMeans.
    irs.push(ModelIr::KMeans(KMeansIr {
        k: 4,
        n_features: FEATURES,
        centroids: Some(
            (0..4)
                .map(|i| (0..FEATURES).map(|c| value(79, i, c, 2.0)).collect())
                .collect(),
        ),
    }));
    // One decision tree, fitted on deterministic data.
    let x = Matrix::from_fn(60, FEATURES, |r, c| value(80, r, c, 2.0));
    let y: Vec<usize> = (0..60)
        .map(|r| usize::from(value(80, r, 0, 2.0) > 0.0))
        .collect();
    let tree = DecisionTreeClassifier::fit(&x, &y, 2, &TreeConfig::default().max_depth(4)).unwrap();
    irs.push(ModelIr::Tree(TreeIr::from_tree(&tree)));
    irs
}

#[test]
fn eight_tenants_on_two_workers_match_isolated_runs() {
    let format = FixedPoint::taurus_default();
    let irs = tenant_irs();
    assert_eq!(irs.len(), 8);

    let mut server = PipelineServer::new();
    let ids: Vec<_> = irs
        .iter()
        .enumerate()
        .map(|(index, ir)| {
            // A per-tenant normalizer with non-trivial shift/scale, so
            // the serving path's normalize-then-classify is exercised
            // and any buffer reuse across tenants would corrupt inputs.
            let normalizer = Normalizer {
                mean: (0..FEATURES).map(|c| (index + c) as f32 * 0.1).collect(),
                std: (0..FEATURES).map(|c| 1.0 + c as f32 * 0.25).collect(),
            };
            server
                .register_model(&format!("tenant{index}"), ir, format, Some(normalizer))
                .unwrap()
        })
        .collect();
    // LUT sharing across the schedule: 4 sigmoid tenants + 1 tanh tenant
    // materialize exactly 2 tables, never one per model.
    assert_eq!(server.luts().builds(), 2);
    assert_eq!(server.luts().hits(), 3);

    // Every tenant gets its own raw stream (different seeds, different
    // sizes, so chunks interleave unevenly).
    let batches: Vec<TenantBatch> = ids
        .iter()
        .enumerate()
        .map(|(index, &id)| {
            let rows = 50 + index * 13;
            let features = Matrix::from_fn(rows, FEATURES, |r, c| value(index as u64, r, c, 2.0));
            TenantBatch::new(id, features)
        })
        .collect();

    // Isolated reference: one tenant at a time, single-threaded, with
    // the normalizer applied by hand.
    let isolated: Vec<Vec<usize>> = batches
        .iter()
        .enumerate()
        .map(|(index, batch)| {
            let mut normalized = batch.features.clone();
            let normalizer = Normalizer {
                mean: (0..FEATURES).map(|c| (index + c) as f32 * 0.1).collect(),
                std: (0..FEATURES).map(|c| 1.0 + c as f32 * 0.25).collect(),
            };
            for r in 0..normalized.rows() {
                normalizer.apply(normalized.row_mut(r));
            }
            server
                .pipeline(batch.tenant)
                .unwrap()
                .classify_batch(&normalized, 1)
        })
        .collect();

    // 2-worker pool, one-row chunks: maximal cross-tenant interleaving.
    // (The deprecated serve shim is exercised deliberately: isolation must
    // hold on both serving frontends.)
    #[allow(deprecated)]
    let output = server
        .serve(&batches, &ServeOptions::default().workers(2).chunk_rows(1))
        .unwrap();
    for (index, (served, solo)) in output.verdicts().iter().zip(&isolated).enumerate() {
        assert_eq!(
            served, solo,
            "tenant{index} verdicts diverged under contention"
        );
    }

    // Repeat with other pool shapes: results must never depend on them.
    for (workers, chunk) in [(2, 17), (8, 3), (3, 0)] {
        #[allow(deprecated)]
        let again = server
            .serve(
                &batches,
                &ServeOptions::default().workers(workers).chunk_rows(chunk),
            )
            .unwrap();
        assert_eq!(
            again.verdicts(),
            output.verdicts(),
            "workers={workers} chunk={chunk} changed verdicts"
        );
    }

    // Stats cover all 8 tenants with the right packet counts.
    for (index, stats) in output.stats().iter().enumerate() {
        assert_eq!(stats.packets, 50 + index * 13, "tenant{index} packet count");
        assert_eq!(stats.verdict_histogram.iter().sum::<usize>(), stats.packets);
    }
}

#[test]
fn eight_tenants_through_the_ring_ingress_match_isolated_runs() {
    // The same eight tenants, but through the persistent ring-ingress
    // admission path instead of the one-shot serve shim: each tenant's
    // stream is submitted from its own producer thread, over a
    // deliberately tiny ring and descriptor slab at one-row dispatch
    // granularity. Contended lock-free admission must leak exactly as
    // little across tenants as the sequential path: nothing.
    let format = FixedPoint::taurus_default();
    let irs = tenant_irs();

    let normalizer_for = |index: usize| Normalizer {
        mean: (0..FEATURES).map(|c| (index + c) as f32 * 0.1).collect(),
        std: (0..FEATURES).map(|c| 1.0 + c as f32 * 0.25).collect(),
    };

    // Isolated reference: one tenant at a time, single-threaded.
    let isolated: Vec<Vec<usize>> = irs
        .iter()
        .enumerate()
        .map(|(index, ir)| {
            let rows = 50 + index * 13;
            let mut features =
                Matrix::from_fn(rows, FEATURES, |r, c| value(index as u64, r, c, 2.0));
            let normalizer = normalizer_for(index);
            for r in 0..features.rows() {
                normalizer.apply(features.row_mut(r));
            }
            ir.compile(format).unwrap().classify_batch(&features, 1)
        })
        .collect();

    let deployment = Deployment::builder()
        .workers(2)
        .chunk_rows(1)
        .queue_depth(16)
        .ring_capacity(4)
        .chunk_slots(8)
        .build();
    let ids: Vec<_> = irs
        .iter()
        .enumerate()
        .map(|(index, ir)| {
            deployment
                .add_tenant(
                    &format!("tenant{index}"),
                    ir.compile(format).unwrap(),
                    Some(normalizer_for(index)),
                )
                .unwrap()
        })
        .collect();

    let served: Vec<Vec<usize>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ids
            .iter()
            .enumerate()
            .map(|(index, &id)| {
                let deployment = &deployment;
                scope.spawn(move || {
                    let rows = 50 + index * 13;
                    let features =
                        Matrix::from_fn(rows, FEATURES, |r, c| value(index as u64, r, c, 2.0));
                    deployment
                        .submit(TenantBatch::new(id, features))
                        .unwrap()
                        .wait()
                        .into_vec()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().unwrap())
            .collect()
    });
    for (index, (got, solo)) in served.iter().zip(&isolated).enumerate() {
        assert_eq!(
            got, solo,
            "tenant{index} verdicts diverged through the ring ingress"
        );
    }
    deployment.shutdown();
}

//! Integration coverage for the scheduling algebra and model fusion
//! through the public facade.

use homunculus::backends::resources::{Performance, ResourceVector};
use homunculus::core::alchemy::{Algorithm, IoMap, Metric, ModelSpec, Platform};
use homunculus::core::fusion::{fuse_all, try_fuse, FusionDecision, DEFAULT_OVERLAP_THRESHOLD};
use homunculus::core::pipeline::{generate_with, CompilerOptions};
use homunculus::core::schedule::ScheduleExpr;
use homunculus::datasets::nslkdd::NslKddGenerator;

fn spec(name: &str, seed: u64) -> ModelSpec {
    ModelSpec::builder(name)
        .optimization_metric(Metric::F1)
        .algorithm(Algorithm::Dnn)
        .data(NslKddGenerator::new(seed).generate(600))
        .build()
        .unwrap()
}

fn perf(tput: f64, lat: f64) -> Performance {
    Performance {
        throughput_gpps: tput,
        latency_ns: lat,
    }
}

#[test]
fn table3_strategies_have_identical_resource_totals() {
    let r = |v: f64| ResourceVector::new().with("cus", v).with("mus", v);
    let resources = vec![r(24.0); 4];

    let seq = spec("a", 1) >> spec("b", 2) >> spec("c", 3) >> spec("d", 4);
    let par = spec("e", 1) | spec("f", 2) | spec("g", 3) | spec("h", 4);
    let mixed = spec("i", 1) >> (spec("j", 2) | spec("k", 3)) >> spec("l", 4);

    for expr in [&seq, &par, &mixed] {
        let total = expr.combined_resources(&resources);
        assert_eq!(total.get("cus"), 96.0);
        assert_eq!(total.get("mus"), 96.0);
    }
}

#[test]
fn throughput_consistency_rule_from_paper() {
    // §3.2.1: 1 GPkt/s feeding into 0.5 GPkt/s => chain runs at 0.5.
    let chain = spec("fast", 1) >> spec("slow", 2);
    let combined = chain.combined_performance(&[perf(1.0, 100.0), perf(0.5, 100.0)]);
    assert_eq!(combined.throughput_gpps, 0.5);
}

#[test]
fn deep_mixed_dags_validate_and_flatten() {
    let expr = (spec("a", 1) | (spec("b", 2) >> spec("c", 3)))
        >> spec("d", 4)
        >> (spec("e", 5) | spec("f", 6) | spec("g", 7));
    expr.validate().unwrap();
    assert_eq!(expr.len(), 7);
    // Outer Seq has three children after flattening.
    match &expr {
        ScheduleExpr::Seq(children) => assert_eq!(children.len(), 3),
        other => panic!("expected Seq, got {other:?}"),
    }
}

#[test]
fn iomap_connects_scheduled_models() {
    let mut platform = Platform::taurus();
    platform.io_map(
        IoMap::new()
            .connect("ad.class", "mitigator.in")
            .connect("mitigator.verdict", "world.out"),
    );
    platform
        .schedule(spec("ad", 1) >> spec("mitigator", 2))
        .unwrap();
    assert_eq!(platform.iomap().connections().len(), 2);
}

#[test]
fn fusion_through_compiler_reduces_total_resources() {
    // Compile two halves separately vs fused: fused must cost less than
    // the sum (the Table 4 claim), with comparable objective.
    let (half_a, half_b) = NslKddGenerator::new(23).generate_halves(1_600);
    let a = ModelSpec::builder("part1")
        .algorithm(Algorithm::Dnn)
        .data(half_a)
        .build()
        .unwrap();
    let b = ModelSpec::builder("part2")
        .algorithm(Algorithm::Dnn)
        .data(half_b)
        .build()
        .unwrap();
    let (fused, decision) = try_fuse(&a, &b, DEFAULT_OVERLAP_THRESHOLD).unwrap();
    assert!(matches!(decision, FusionDecision::Fused { .. }));
    let fused = fused.unwrap();

    let options = CompilerOptions {
        bo_budget: 6,
        doe_samples: 3,
        train_epochs: 10,
        final_epochs: 15,
        sample_cap: Some(500),
        parallel: true,
        seed: 5,
        time_budget: None,
    };
    let compile = |s: ModelSpec| {
        let mut platform = Platform::taurus();
        platform
            .constraints_mut()
            .throughput_gpps(1.0)
            .latency_ns(500.0);
        platform.schedule(s).unwrap();
        let artifact = generate_with(&platform, &options).unwrap();
        artifact.best().estimate.resources.get("cus")
    };
    let cus_a = compile(a);
    let cus_b = compile(b);
    let cus_fused = compile(fused);
    assert!(
        cus_fused < cus_a + cus_b,
        "fused {cus_fused} should undercut separate {cus_a}+{cus_b}"
    );
}

#[test]
fn fuse_all_collapses_homogeneous_specs() {
    let specs = vec![spec("m1", 1), spec("m2", 2), spec("m3", 3)];
    let fused = fuse_all(specs, DEFAULT_OVERLAP_THRESHOLD).unwrap();
    // All three share the NSL-KDD schema: everything collapses to one.
    assert_eq!(fused.len(), 1);
    assert!(fused[0].name.contains('+'));
}

#[test]
fn duplicate_names_rejected_at_schedule_time() {
    let mut platform = Platform::taurus();
    let expr = spec("dup", 1) >> spec("dup", 2);
    assert!(platform.schedule(expr).is_err());
}

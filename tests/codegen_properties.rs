//! Property-based validation of the code generators: for *any* trained
//! architecture in the search space, the emitted Spatial/P4 must be
//! structurally sound.

use homunculus::backends::model::{DnnIr, KMeansIr, ModelIr, SvmIr};
use homunculus::backends::spatial::is_balanced;
use homunculus::backends::target::Target;
use homunculus::backends::taurus::TaurusTarget;
use homunculus::backends::tofino::TofinoTarget;
use homunculus::ml::mlp::{Mlp, MlpArchitecture};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_spatial_dnn_always_balanced(
        input in 1usize..32,
        widths in proptest::collection::vec(2usize..24, 1..6),
        classes in 2usize..6,
        seed in 0u64..100,
    ) {
        let arch = MlpArchitecture::new(input, widths, classes);
        let net = Mlp::new(&arch, seed).unwrap();
        let model = ModelIr::Dnn(DnnIr::from_mlp(&net));
        let code = TaurusTarget::default().generate_code(&model, "prop_test").unwrap();
        prop_assert!(is_balanced(&code), "unbalanced delimiters");
        // One dot-product reduce per weight layer.
        prop_assert_eq!(code.matches("Reduce(Reg[T]").count(), arch.depth());
        // The argmax template appears exactly once.
        prop_assert_eq!(code.matches("classOut :=").count(), 1);
    }

    #[test]
    fn prop_p4_kmeans_always_balanced(
        k in 1usize..9,
        n_features in 1usize..12,
        seed in 0u64..50,
    ) {
        let centroids: Vec<Vec<f32>> = (0..k)
            .map(|c| (0..n_features).map(|f| ((c * 7 + f + seed as usize) % 13) as f32 * 0.3).collect())
            .collect();
        let model = ModelIr::KMeans(KMeansIr { k, n_features, centroids: Some(centroids) });
        let code = TofinoTarget::default().generate_code(&model, "prop_kmeans").unwrap();
        prop_assert!(is_balanced(&code));
        prop_assert_eq!(code.matches("table cluster_").count(), k);
        // Every feature appears in every cluster table's key.
        prop_assert_eq!(
            code.matches("meta.feature0: range;").count(),
            k,
            "feature keys per cluster table"
        );
    }

    #[test]
    fn prop_p4_svm_tables_track_features(
        n_features in 1usize..10,
        n_classes in 2usize..5,
    ) {
        let planes = vec![vec![0.25f32; n_features]; if n_classes == 2 { 1 } else { n_classes }];
        let biases = vec![0.0f32; planes.len()];
        let model = ModelIr::Svm(SvmIr {
            n_features,
            n_classes,
            planes: Some((planes, biases)),
        });
        let code = TofinoTarget::default().generate_code(&model, "prop_svm").unwrap();
        prop_assert!(is_balanced(&code));
        prop_assert_eq!(code.matches("table feature_").count(), n_features);
    }

    #[test]
    fn prop_estimates_monotone_in_model_size(
        input in 2usize..16,
        width in 2usize..24,
        depth in 1usize..5,
    ) {
        let taurus = TaurusTarget::default();
        let small = ModelIr::Dnn(DnnIr::from_architecture(
            &MlpArchitecture::new(input, vec![width; depth], 2),
        ));
        let big = ModelIr::Dnn(DnnIr::from_architecture(
            &MlpArchitecture::new(input, vec![width + 4; depth + 1], 2),
        ));
        let e_small = taurus.estimate(&small).unwrap();
        let e_big = taurus.estimate(&big).unwrap();
        prop_assert!(e_big.resources.get("cus") >= e_small.resources.get("cus"));
        prop_assert!(e_big.resources.get("mus") >= e_small.resources.get("mus"));
        prop_assert!(e_big.performance.latency_ns >= e_small.performance.latency_ns);
    }
}

//! The analytic estimators and the cycle-level simulators must tell the
//! compiler the same story — and both must honor the scheduling algebra.

use homunculus::backends::model::{DnnIr, KMeansIr, ModelIr};
use homunculus::backends::resources::Constraints;
use homunculus::backends::target::Target;
use homunculus::backends::taurus::TaurusTarget;
use homunculus::backends::tofino::TofinoTarget;
use homunculus::ml::kmeans::{KMeans, KMeansConfig};
use homunculus::ml::mlp::{Mlp, MlpArchitecture, TrainConfig};
use homunculus::ml::quantize::FixedPoint;
use homunculus::ml::tensor::Matrix;
use homunculus::runtime::Compile;
use homunculus::sim::grid::GridSimulator;
use homunculus::sim::mat::MatSimulator;
use homunculus::sim::pktgen::{LabeledSample, StreamHarness, TimingModel};

fn dnn(input: usize, hidden: Vec<usize>) -> ModelIr {
    ModelIr::Dnn(DnnIr::from_architecture(&MlpArchitecture::new(
        input, hidden, 2,
    )))
}

#[test]
fn grid_simulator_matches_taurus_estimator_resources() {
    let target = TaurusTarget::default();
    let sim = GridSimulator::for_target(&target);
    for model in [
        dnn(7, vec![16, 4]),
        dnn(7, vec![10, 10, 5]),
        dnn(30, vec![10, 10, 10, 10]),
        dnn(30, vec![5, 5, 5, 5, 5, 5, 5, 5, 5, 5]),
    ] {
        let est = target.estimate(&model).unwrap();
        let stages = sim.lower(&model).unwrap();
        let sim_cus: usize = stages.iter().map(|s| s.cus).sum::<usize>() + 2;
        let sim_mus: usize = stages.iter().map(|s| s.mus).sum::<usize>() + 1;
        assert_eq!(est.resources.get("cus") as usize, sim_cus);
        assert_eq!(est.resources.get("mus") as usize, sim_mus);
    }
}

#[test]
fn grid_simulator_latency_matches_estimator() {
    let target = TaurusTarget::default();
    let sim = GridSimulator::for_target(&target);
    for model in [dnn(7, vec![16, 4]), dnn(30, vec![10, 10, 10, 10])] {
        let est = target.estimate(&model).unwrap();
        let report = sim.simulate(&model, 100).unwrap();
        assert!(
            (est.performance.latency_ns - report.latency_ns).abs() < 1.0,
            "estimator {} vs simulator {}",
            est.performance.latency_ns,
            report.latency_ns
        );
        assert_eq!(est.performance.throughput_gpps, report.throughput_gpps);
    }
}

#[test]
fn mat_simulator_matches_tofino_mat_costs() {
    let target = TofinoTarget::default();
    let sim = MatSimulator::for_target(&target);
    for k in 1..=5 {
        let model = ModelIr::KMeans(KMeansIr::from_shape(k, 7));
        let est = target.estimate(&model).unwrap();
        let report = sim.simulate(&model, 10).unwrap();
        assert_eq!(est.resources.get("mats") as usize, report.tables_used);
    }
}

#[test]
fn feasibility_verdicts_agree_under_paper_constraints() {
    let target = TaurusTarget::default();
    let sim = GridSimulator::for_target(&target);
    let constraints = Constraints::new().throughput_gpps(1.0).latency_ns(500.0);
    for (model, _label) in [
        (dnn(7, vec![16, 4]), "base-ad"),
        (dnn(7, vec![48, 24, 12]), "large"),
        (dnn(30, vec![10, 10, 10, 10]), "base-bd"),
    ] {
        let est_ok = target.check(&model, &constraints).unwrap().is_feasible();
        let rep = sim.simulate(&model, 50).unwrap();
        let sim_ok = rep.throughput_gpps >= 1.0 && rep.latency_ns <= 500.0;
        assert_eq!(est_ok, sim_ok);
    }
}

#[test]
fn stream_harness_runs_compiled_pipeline_with_grid_timing() {
    // The consistency path end to end: train a model, simulate its timing
    // on the grid, and replay a stream through the *compiled integer*
    // pipeline — the same arithmetic the generated hardware executes.
    let x = Matrix::from_fn(400, 7, |r, c| {
        let sign = if r % 2 == 0 { 1.0 } else { -1.0 };
        sign * (0.8 + 0.02 * ((r + c) % 7) as f32)
    });
    let y: Vec<usize> = (0..400).map(|r| usize::from(r % 2 == 0)).collect();
    let mut net = Mlp::new(&MlpArchitecture::new(7, vec![16, 4], 2), 1).unwrap();
    net.train(&x, &y, &TrainConfig::default().epochs(40))
        .unwrap();
    let model = ModelIr::Dnn(DnnIr::from_mlp(&net));
    let pipeline = model.compile(FixedPoint::taurus_default()).unwrap();

    let sim = GridSimulator::new(16, 16, 1.0);
    let report = sim.simulate(&model, 1_000).unwrap();
    let harness = StreamHarness::new(TimingModel::from_grid(&report));
    let stream: Vec<LabeledSample> = (0..400)
        .map(|i| LabeledSample {
            features: x.row(i).to_vec(),
            label: y[i],
        })
        .collect();
    let out = harness.run_compiled(&stream, &pipeline).unwrap();
    assert_eq!(out.packets, 400);
    assert!(out.f1 > 0.95, "compiled integer f1 {}", out.f1);
    // Line-rate pipeline: 1 packet/ns admission, sub-500ns verdicts.
    assert!(out.reaction_time_ns < 500.0);
    assert!(out.achieved_gpps > 0.9);

    // The float closure stays available as the reference oracle, and the
    // two paths must tell the same accuracy story.
    let float = harness
        .run(&stream, |f| net.predict_row(f).unwrap())
        .unwrap();
    assert!(
        (float.f1 - out.f1).abs() < 0.05,
        "float f1 {} vs compiled f1 {}",
        float.f1,
        out.f1
    );
}

#[test]
fn stream_harness_runs_compiled_kmeans_with_mat_timing() {
    // Same consistency story on the MAT pipeline: a trained KMeans is
    // compiled to integer distance kernels and replayed with the MAT
    // simulator's timing model.
    let x = Matrix::from_fn(300, 2, |r, c| (r % 3) as f32 * 2.5 - 2.5 + 0.05 * c as f32);
    let km = KMeans::fit(&x, &KMeansConfig::new(3)).unwrap();
    let model = ModelIr::KMeans(KMeansIr::from_kmeans(&km, 2));
    let pipeline = model.compile(FixedPoint::taurus_default()).unwrap();

    let sim = MatSimulator::for_target(&TofinoTarget::default());
    let report = sim.simulate(&model, 300).unwrap();
    let harness = StreamHarness::new(TimingModel::from_mat(&report));
    let float_labels = km.predict(&x);
    let stream: Vec<LabeledSample> = (0..x.rows())
        .map(|i| LabeledSample {
            features: x.row(i).to_vec(),
            label: float_labels[i],
        })
        .collect();
    let out = harness.run_compiled(&stream, &pipeline).unwrap();
    assert_eq!(out.packets, 300);
    // Labels are the float model's own assignments, so accuracy here IS
    // float<->fixed agreement.
    assert!(out.accuracy > 0.99, "agreement {}", out.accuracy);
    // Elapsed includes the pipeline drain, so the achieved rate sits just
    // under the MAT line rate.
    assert!(out.achieved_gpps > 0.5 * report.throughput_gpps);
    assert!(out.achieved_gpps <= report.throughput_gpps + 1e-9);
}

#[test]
fn oversized_models_flagged_by_both_paths() {
    let tiny_grid = TaurusTarget::new(4, 4);
    let sim = GridSimulator::for_target(&tiny_grid);
    let big = dnn(30, vec![64, 64]);
    let constraints = Constraints::new().throughput_gpps(1.0);
    assert!(!tiny_grid.check(&big, &constraints).unwrap().is_feasible());
    let report = sim.simulate(&big, 10).unwrap();
    assert!(report.throughput_gpps < 1.0);
    let stages = sim.lower(&big).unwrap();
    assert!(sim.place(&stages).is_err(), "placement must also reject");
}

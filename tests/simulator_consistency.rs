//! The analytic estimators and the cycle-level simulators must tell the
//! compiler the same story — and both must honor the scheduling algebra.

use homunculus::backends::model::{DnnIr, KMeansIr, ModelIr};
use homunculus::backends::resources::Constraints;
use homunculus::backends::target::Target;
use homunculus::backends::taurus::TaurusTarget;
use homunculus::backends::tofino::TofinoTarget;
use homunculus::ml::mlp::MlpArchitecture;
use homunculus::sim::grid::GridSimulator;
use homunculus::sim::mat::MatSimulator;
use homunculus::sim::pktgen::{LabeledSample, StreamHarness, TimingModel};

fn dnn(input: usize, hidden: Vec<usize>) -> ModelIr {
    ModelIr::Dnn(DnnIr::from_architecture(&MlpArchitecture::new(
        input, hidden, 2,
    )))
}

#[test]
fn grid_simulator_matches_taurus_estimator_resources() {
    let target = TaurusTarget::default();
    let sim = GridSimulator::for_target(&target);
    for model in [
        dnn(7, vec![16, 4]),
        dnn(7, vec![10, 10, 5]),
        dnn(30, vec![10, 10, 10, 10]),
        dnn(30, vec![5, 5, 5, 5, 5, 5, 5, 5, 5, 5]),
    ] {
        let est = target.estimate(&model).unwrap();
        let stages = sim.lower(&model).unwrap();
        let sim_cus: usize = stages.iter().map(|s| s.cus).sum::<usize>() + 2;
        let sim_mus: usize = stages.iter().map(|s| s.mus).sum::<usize>() + 1;
        assert_eq!(est.resources.get("cus") as usize, sim_cus);
        assert_eq!(est.resources.get("mus") as usize, sim_mus);
    }
}

#[test]
fn grid_simulator_latency_matches_estimator() {
    let target = TaurusTarget::default();
    let sim = GridSimulator::for_target(&target);
    for model in [dnn(7, vec![16, 4]), dnn(30, vec![10, 10, 10, 10])] {
        let est = target.estimate(&model).unwrap();
        let report = sim.simulate(&model, 100).unwrap();
        assert!(
            (est.performance.latency_ns - report.latency_ns).abs() < 1.0,
            "estimator {} vs simulator {}",
            est.performance.latency_ns,
            report.latency_ns
        );
        assert_eq!(est.performance.throughput_gpps, report.throughput_gpps);
    }
}

#[test]
fn mat_simulator_matches_tofino_mat_costs() {
    let target = TofinoTarget::default();
    let sim = MatSimulator::for_target(&target);
    for k in 1..=5 {
        let model = ModelIr::KMeans(KMeansIr::from_shape(k, 7));
        let est = target.estimate(&model).unwrap();
        let report = sim.simulate(&model, 10).unwrap();
        assert_eq!(est.resources.get("mats") as usize, report.tables_used);
    }
}

#[test]
fn feasibility_verdicts_agree_under_paper_constraints() {
    let target = TaurusTarget::default();
    let sim = GridSimulator::for_target(&target);
    let constraints = Constraints::new().throughput_gpps(1.0).latency_ns(500.0);
    for (model, _label) in [
        (dnn(7, vec![16, 4]), "base-ad"),
        (dnn(7, vec![48, 24, 12]), "large"),
        (dnn(30, vec![10, 10, 10, 10]), "base-bd"),
    ] {
        let est_ok = target.check(&model, &constraints).unwrap().is_feasible();
        let rep = sim.simulate(&model, 50).unwrap();
        let sim_ok = rep.throughput_gpps >= 1.0 && rep.latency_ns <= 500.0;
        assert_eq!(est_ok, sim_ok);
    }
}

#[test]
fn stream_harness_composes_with_grid_timing() {
    let sim = GridSimulator::new(16, 16, 1.0);
    let model = dnn(7, vec![16, 4]);
    let report = sim.simulate(&model, 1_000).unwrap();
    let harness = StreamHarness::new(TimingModel::from_grid(&report));
    let stream: Vec<LabeledSample> = (0..500)
        .map(|i| LabeledSample {
            features: vec![i as f32; 7],
            label: usize::from(i % 2 == 0),
        })
        .collect();
    let out = harness
        .run(&stream, |f| usize::from((f[0] as usize) % 2 == 0))
        .unwrap();
    assert_eq!(out.packets, 500);
    assert!((out.f1 - 1.0).abs() < 1e-9);
    // Line-rate pipeline: 1 packet/ns admission, sub-500ns verdicts.
    assert!(out.reaction_time_ns < 500.0);
    assert!(out.achieved_gpps > 0.9);
}

#[test]
fn oversized_models_flagged_by_both_paths() {
    let tiny_grid = TaurusTarget::new(4, 4);
    let sim = GridSimulator::for_target(&tiny_grid);
    let big = dnn(30, vec![64, 64]);
    let constraints = Constraints::new().throughput_gpps(1.0);
    assert!(!tiny_grid.check(&big, &constraints).unwrap().is_feasible());
    let report = sim.simulate(&big, 10).unwrap();
    assert!(report.throughput_gpps < 1.0);
    let stages = sim.lower(&big).unwrap();
    assert!(sim.place(&stages).is_err(), "placement must also reject");
}

//! Lifecycle and QoS guarantees of the persistent `Deployment`.
//!
//! Three contracts the redesign makes, each pinned here:
//!
//! 1. **Graceful teardown** — `drain()` and `shutdown()` complete every
//!    already-accepted ticket; only *new* submissions are refused
//!    (`RuntimeError::Serve`) after shutdown.
//! 2. **Runtime tenancy** — tenants added mid-flight serve immediately;
//!    removed tenants refuse new work while their queued work completes.
//! 3. **Weighted QoS** — under a staged backlog the dispatch sequence is
//!    a deterministic function of the policies, and every tenant's
//!    observed share of dispatched rows tracks its weight share within a
//!    chunk-granularity bound (property-tested over random weights and
//!    batch mixes), with `min_share` floors holding a starved tenant at
//!    its guaranteed fraction.

use homunculus::backends::model::{ModelIr, SvmIr};
use homunculus::ml::quantize::FixedPoint;
use homunculus::ml::tensor::Matrix;
use homunculus::runtime::{
    Compile, CompiledPipeline, Deployment, RuntimeError, SchedulePolicy, TenantBatch,
};
use proptest::prelude::*;

fn q() -> FixedPoint {
    FixedPoint::taurus_default()
}

/// A hand-built binary SVM: class 1 iff `w . x + b >= 0`.
fn svm_pipeline(weights: Vec<f32>, bias: f32) -> CompiledPipeline {
    ModelIr::Svm(SvmIr {
        n_features: weights.len(),
        n_classes: 2,
        planes: Some((vec![weights], vec![bias])),
    })
    .compile(q())
    .unwrap()
}

fn packets(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        ((r * 13 + c * 7 + seed as usize * 3) % 29) as f32 / 29.0 - 0.5
    })
}

#[test]
fn drain_completes_every_in_flight_ticket() {
    let deployment = Deployment::builder()
        .workers(2)
        .chunk_rows(3)
        .queue_depth(32)
        .build();
    let id = deployment
        .add_tenant("app", svm_pipeline(vec![1.0, -0.5], 0.1), None)
        .unwrap();
    let reference = svm_pipeline(vec![1.0, -0.5], 0.1);

    let mut tickets = Vec::new();
    let mut expected = Vec::new();
    for round in 0..12 {
        let features = packets(17 + round, 2, round as u64);
        expected.push(reference.classify_batch(&features, 1));
        tickets.push(deployment.submit(TenantBatch::new(id, features)).unwrap());
    }
    deployment.drain();
    for (ticket, expected) in tickets.into_iter().zip(expected) {
        assert!(ticket.is_done(), "drain left a ticket incomplete");
        assert_eq!(ticket.wait().into_vec(), expected);
    }
    // Drain leaves the ingress open: new submissions still serve.
    let verdicts = deployment
        .submit(TenantBatch::new(id, packets(5, 2, 99)))
        .unwrap()
        .wait();
    assert_eq!(verdicts.len(), 5);
}

#[test]
fn shutdown_completes_in_flight_and_rejects_new_submissions() {
    let deployment = Deployment::builder().workers(2).queue_depth(32).build();
    let id = deployment
        .add_tenant("app", svm_pipeline(vec![1.0], 0.0), None)
        .unwrap();
    let tickets: Vec<_> = (0..8)
        .map(|round| {
            deployment
                .submit(TenantBatch::new(id, packets(64, 1, round)))
                .unwrap()
        })
        .collect();
    deployment.shutdown();
    for ticket in tickets {
        assert!(ticket.is_done(), "shutdown left a ticket incomplete");
        assert_eq!(ticket.wait().len(), 64);
    }
    match deployment.submit(TenantBatch::new(id, packets(4, 1, 0))) {
        Err(RuntimeError::Serve(message)) => {
            assert!(
                message.contains("shut down"),
                "unexpected message: {message}"
            );
        }
        other => panic!("post-shutdown submit must fail with RuntimeError::Serve, got {other:?}"),
    }
    assert!(
        deployment
            .try_submit(TenantBatch::new(id, packets(4, 1, 0)))
            .is_err(),
        "post-shutdown try_submit must fail too"
    );
}

#[test]
fn tenants_added_and_removed_at_runtime() {
    let deployment = Deployment::builder().workers(2).paused(true).build();
    let first = deployment
        .add_tenant("first", svm_pipeline(vec![1.0], 0.0), None)
        .unwrap();
    // Queue work for `first`, then remove it while the work is still
    // staged: the accepted ticket must complete, new submits must not.
    let staged = deployment
        .submit(TenantBatch::new(first, packets(20, 1, 0)))
        .unwrap();
    deployment.remove_tenant(first).unwrap();
    assert!(deployment
        .submit(TenantBatch::new(first, packets(4, 1, 1)))
        .is_err());

    // A tenant added mid-flight serves immediately (indices never reuse).
    let second = deployment
        .add_tenant("second", svm_pipeline(vec![-1.0], 0.0), None)
        .unwrap();
    assert_ne!(first.index(), second.index());
    let fresh = deployment
        .submit(TenantBatch::new(second, packets(10, 1, 2)))
        .unwrap();
    deployment.resume();
    deployment.drain();
    assert_eq!(staged.wait().len(), 20, "removed tenant's queued work ran");
    assert_eq!(fresh.wait().len(), 10);

    let snapshot = deployment.stats_snapshot();
    assert!(!snapshot.shares[first.index()].active);
    assert!(snapshot.shares[second.index()].active);
    assert_eq!(snapshot.tenants[first.index()].packets, 20);
}

#[test]
fn removed_tenant_with_queued_ingress_rows_completes_accepted_tickets() {
    // Regression for the PR 4 follow-on bug class: removal must only
    // refuse *new* submissions. Accepted tickets whose rows are still
    // sitting in the ingress (lanes/rings) when the tenant goes away must
    // complete with bit-correct verdicts — under live workers and a deep
    // backlog, not just a paused staging area.
    let deployment = Deployment::builder()
        .workers(2)
        .chunk_rows(2)
        .queue_depth(64)
        .build();
    let doomed = deployment
        .add_tenant("doomed", svm_pipeline(vec![1.0, -0.5], 0.1), None)
        .unwrap();
    let survivor = deployment
        .add_tenant("survivor", svm_pipeline(vec![-1.0, 0.25], 0.0), None)
        .unwrap();
    let doomed_reference = svm_pipeline(vec![1.0, -0.5], 0.1);

    // A deep interleaved backlog: the doomed tenant's rows are spread
    // across many queued chunks when the removal lands.
    let mut doomed_tickets = Vec::new();
    let mut expected = Vec::new();
    for round in 0..16 {
        let features = packets(23, 2, round);
        expected.push(doomed_reference.classify_batch(&features, 1));
        doomed_tickets.push(
            deployment
                .submit(TenantBatch::new(doomed, features))
                .unwrap(),
        );
        deployment
            .submit(TenantBatch::new(survivor, packets(23, 2, round + 100)))
            .unwrap();
    }
    deployment.remove_tenant(doomed).unwrap();
    // Removal is immediate for new work...
    assert!(matches!(
        deployment.submit(TenantBatch::new(doomed, packets(4, 2, 0))),
        Err(RuntimeError::Serve(_))
    ));
    assert!(deployment.tenant_id("doomed").is_none());
    // ...but every accepted ticket still completes, bit-identically.
    deployment.drain();
    for (ticket, expected) in doomed_tickets.into_iter().zip(expected) {
        assert!(ticket.is_done(), "drain left a removed tenant's ticket");
        assert_eq!(ticket.wait().into_vec(), expected);
    }
    let snapshot = deployment.stats_snapshot();
    assert_eq!(snapshot.tenants[doomed.index()].packets, 16 * 23);
    assert!(!snapshot.shares[doomed.index()].active);
    assert_eq!(snapshot.queued_rows, 0);
    deployment.shutdown();
}

/// Stages `batches_per_tenant` equal batches per weighted tenant on a
/// paused deployment, resumes, drains, and returns the dispatch log plus
/// per-tenant total rows.
fn staged_weighted_run(
    weights: &[f64],
    min_shares: &[f64],
    batch_rows: usize,
    chunk_rows: usize,
    batches_per_tenant: usize,
    workers: usize,
) -> (Vec<(usize, usize)>, u64) {
    let deployment = Deployment::builder()
        .workers(workers)
        .chunk_rows(chunk_rows)
        .queue_depth(weights.len() * batches_per_tenant)
        .paused(true)
        .record_dispatch(true)
        .build();
    let ids: Vec<_> = weights
        .iter()
        .zip(min_shares)
        .enumerate()
        .map(|(t, (&weight, &min_share))| {
            deployment
                .add_tenant_with(
                    &format!("tenant{t}"),
                    svm_pipeline(vec![1.0, 0.0], 0.0),
                    None,
                    SchedulePolicy::Weighted { weight, min_share },
                )
                .unwrap()
        })
        .collect();
    let mut tickets = Vec::new();
    for round in 0..batches_per_tenant {
        for &id in &ids {
            tickets.push(
                deployment
                    .submit(TenantBatch::new(id, packets(batch_rows, 2, round as u64)))
                    .unwrap(),
            );
        }
    }
    deployment.resume();
    deployment.drain();
    for ticket in tickets {
        assert!(ticket.is_done());
    }
    let log = deployment.dispatch_log().expect("dispatch recording on");
    deployment.shutdown();
    (log, (batch_rows * batches_per_tenant) as u64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For random weight vectors and batch mixes, every tenant's observed
    /// share of dispatched rows over any all-lanes-backlogged prefix
    /// stays within a chunk-granularity bound of its weight share.
    #[test]
    fn prop_weighted_share_error_is_bounded(
        raw_weights in proptest::collection::vec(1u32..16, 2..5),
        chunk_pick in 0usize..3,
        batches_per_tenant in 6usize..14,
        workers in 1usize..4,
    ) {
        let chunk_rows = [4usize, 8, 16][chunk_pick];
        let batch_rows = chunk_rows * 3;
        let weights: Vec<f64> = raw_weights.iter().map(|&w| w as f64).collect();
        let min_shares = vec![0.0; weights.len()];
        let (log, per_tenant_total) = staged_weighted_run(
            &weights,
            &min_shares,
            batch_rows,
            chunk_rows,
            batches_per_tenant,
            workers,
        );
        let weight_sum: f64 = weights.iter().sum();

        // Replay the dispatch sequence and check every prefix after a
        // short warmup, stopping once any lane drains (the remaining
        // lanes then split its share by design).
        let warmup_rows = (chunk_rows * weights.len() * 3) as u64;
        let mut served = vec![0u64; weights.len()];
        let mut total = 0u64;
        for &(lane, rows) in &log {
            served[lane] += rows as u64;
            total += rows as u64;
            if served.iter().any(|&s| s >= per_tenant_total) {
                break;
            }
            if total < warmup_rows {
                continue;
            }
            // Stride scheduling lags the ideal fluid schedule by at most
            // ~one chunk per lane at any instant.
            let bound = (chunk_rows * weights.len()) as f64 / total as f64 + 1e-9;
            for (index, &rows_served) in served.iter().enumerate() {
                let share = rows_served as f64 / total as f64;
                let expected = weights[index] / weight_sum;
                prop_assert!(
                    (share - expected).abs() <= bound,
                    "lane {index}: share {share:.4} vs expected {expected:.4} \
                     (bound {bound:.4}, prefix {total} rows)"
                );
            }
        }
        prop_assert!(total > 0, "no rows dispatched");
    }

    /// The staged dispatch sequence is a deterministic function of the
    /// policies: identical runs produce identical logs under any worker
    /// count.
    #[test]
    fn prop_staged_dispatch_order_is_deterministic(
        raw_weights in proptest::collection::vec(1u32..8, 2..4),
        workers_a in 1usize..4,
        workers_b in 1usize..4,
    ) {
        let weights: Vec<f64> = raw_weights.iter().map(|&w| w as f64).collect();
        let min_shares = vec![0.0; weights.len()];
        let (log_a, _) = staged_weighted_run(&weights, &min_shares, 12, 4, 5, workers_a);
        let (log_b, _) = staged_weighted_run(&weights, &min_shares, 12, 4, 5, workers_b);
        prop_assert_eq!(log_a, log_b);
    }
}

#[test]
fn min_share_floor_holds_a_starved_tenant_at_its_guarantee() {
    // Tenant 0 has a tiny weight but a 0.3 floor; tenants 1 and 2 carry
    // the weight. Without the floor tenant 0's proportional share would
    // be 0.05/8.05 ≈ 0.6%; the floor must hold it at ~30% of dispatched
    // rows over every backlogged prefix.
    let weights = [0.05, 4.0, 4.0];
    let min_shares = [0.3, 0.0, 0.0];
    let chunk_rows = 8;
    let (log, per_tenant_total) = staged_weighted_run(&weights, &min_shares, 24, chunk_rows, 10, 2);

    let warmup_rows = (chunk_rows * weights.len() * 4) as u64;
    let mut served = vec![0u64; weights.len()];
    let mut total = 0u64;
    let mut checked = 0usize;
    for &(lane, rows) in &log {
        served[lane] += rows as u64;
        total += rows as u64;
        if served.iter().any(|&s| s >= per_tenant_total) {
            break;
        }
        if total < warmup_rows {
            continue;
        }
        let share = served[0] as f64 / total as f64;
        let slack = chunk_rows as f64 / total as f64;
        assert!(
            share >= min_shares[0] - slack,
            "floored tenant share {share:.4} fell below its {} guarantee (prefix {total} rows)",
            min_shares[0]
        );
        checked += 1;
    }
    assert!(checked > 10, "too few backlogged prefixes checked");
}

//! Concurrency stress tests for the lock-free ring ingress.
//!
//! The sharded ingress replaced a mutex+condvar queue; these tests hammer
//! the paths a single-threaded suite never exercises:
//!
//! 1. **Multi-producer races** — many submit threads × many tenants, with
//!    cancellation and `drain()` racing the producers, over deliberately
//!    tiny rings and descriptor slabs so every submission contends. No
//!    ticket may be lost or duplicated, and every uncancelled ticket's
//!    verdicts must be bit-identical to a sequential replay.
//! 2. **Full rings never deadlock** — blocked admission is bounded by the
//!    submit deadline even when the deployment is paused and every gate
//!    is saturated; accepted work still completes after `resume()`.
//! 3. **Windowed fairness floors** (property test) — over arbitrary
//!    backlogged submission prefixes, a floored tenant's share of
//!    dispatched rows holds its guarantee under the decaying window
//!    accounting.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use homunculus::backends::model::{ModelIr, SvmIr};
use homunculus::ml::quantize::FixedPoint;
use homunculus::ml::tensor::Matrix;
use homunculus::runtime::{
    Compile, CompiledPipeline, Deployment, RuntimeError, SchedulePolicy, TenantBatch,
};
use proptest::prelude::*;

/// A hand-built binary SVM: class 1 iff `w . x + b >= 0`.
fn svm_pipeline(weights: Vec<f32>, bias: f32) -> CompiledPipeline {
    ModelIr::Svm(SvmIr {
        n_features: weights.len(),
        n_classes: 2,
        planes: Some((vec![weights], vec![bias])),
    })
    .compile(FixedPoint::taurus_default())
    .unwrap()
}

fn tenant_pipeline(tenant: usize) -> CompiledPipeline {
    let t = tenant as f32;
    svm_pipeline(vec![1.0 - t * 0.4, t * 0.3 - 0.5], 0.05 * t)
}

fn packets(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        ((r * 13 + c * 7 + seed as usize * 3) % 29) as f32 / 29.0 - 0.5
    })
}

#[test]
fn multi_producer_hammer_preserves_every_ticket_bitwise() {
    const TENANTS: usize = 3;
    const PRODUCERS: usize = 4;
    const BATCHES_PER_PRODUCER: usize = 24;

    // A 4-entry ring with an 8-slot descriptor slab forces constant
    // descriptor recycling and submit-side backoff under 4 producers: the
    // hot path runs saturated for the whole test.
    let deployment = Deployment::builder()
        .workers(2)
        .chunk_rows(5)
        .queue_depth(64)
        .ring_capacity(4)
        .chunk_slots(8)
        .build();
    let ids: Vec<_> = (0..TENANTS)
        .map(|t| {
            deployment
                .add_tenant(&format!("tenant{t}"), tenant_pipeline(t), None)
                .unwrap()
        })
        .collect();
    let references: Vec<_> = (0..TENANTS).map(tenant_pipeline).collect();

    let accepted = AtomicUsize::new(0);
    let outcomes: Vec<_> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for producer in 0..PRODUCERS {
            let deployment = &deployment;
            let ids = &ids;
            let accepted = &accepted;
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                for iteration in 0..BATCHES_PER_PRODUCER {
                    let tenant = (producer + iteration) % TENANTS;
                    let rows = 1 + (producer * 7 + iteration * 3) % 33;
                    let seed = (producer * 1000 + iteration) as u64;
                    let ticket = deployment
                        .submit(TenantBatch::new(ids[tenant], packets(rows, 2, seed)))
                        .unwrap();
                    accepted.fetch_add(1, Ordering::Relaxed);
                    // Race a cancellation against the workers on every
                    // fifth ticket; either side may win.
                    if iteration % 5 == 4 {
                        ticket.cancel();
                    }
                    local.push((tenant, rows, seed, ticket));
                }
                local
            }));
        }
        // Race teardown-adjacent traffic against the producers: drain is
        // documented to complete accepted work while leaving the ingress
        // open, so it must be safe mid-hammer.
        for _ in 0..4 {
            deployment.drain();
            std::thread::yield_now();
        }
        handles
            .into_iter()
            .flat_map(|handle| handle.join().unwrap())
            .collect()
    });
    deployment.drain();

    assert_eq!(outcomes.len(), PRODUCERS * BATCHES_PER_PRODUCER);
    for (tenant, rows, seed, ticket) in outcomes {
        assert!(ticket.is_done(), "drain left a hammered ticket incomplete");
        let cancelled = ticket.is_cancelled();
        let verdicts = ticket.wait();
        assert_eq!(verdicts.len(), rows, "ticket verdict count drifted");
        let replay = references[tenant].classify_batch(&packets(rows, 2, seed), 1);
        if verdicts.cancelled_rows() == 0 {
            assert_eq!(
                verdicts.as_slice(),
                &replay[..],
                "uncancelled ticket diverged from sequential replay"
            );
        } else {
            assert!(cancelled);
            // A cancelled chunk leaves its slots at the zero verdict; an
            // already-classified chunk keeps its exact replay bytes.
            for (slot, (&got, &want)) in verdicts.as_slice().iter().zip(&replay).enumerate() {
                assert!(
                    got == want || got == 0,
                    "cancelled ticket slot {slot}: verdict {got} is neither \
                     the replay value {want} nor the zero fill"
                );
            }
        }
    }

    // No ticket lost, none duplicated: the deployment's own accounting
    // agrees with what the producers observed.
    let stats = deployment.stats_snapshot();
    assert_eq!(
        stats.submitted_tickets,
        accepted.load(Ordering::Relaxed) as u64
    );
    assert_eq!(stats.completed_tickets, stats.submitted_tickets);
    assert_eq!(stats.queued_rows, 0, "drain left queued rows behind");
    deployment.shutdown();
}

#[test]
fn saturated_admission_deadlines_instead_of_deadlocking() {
    // Pause the deployment so nothing drains, saturate the two-ticket
    // admission gate from eight threads, and rely on the submit deadline
    // to bound every blocked producer. The test completing at all is the
    // no-deadlock assertion; the accepted tickets must still serve after
    // resume.
    let deployment = Deployment::builder()
        .workers(1)
        .chunk_rows(16)
        .queue_depth(2)
        .ring_capacity(4)
        .chunk_slots(4)
        .submit_deadline(Duration::from_millis(50))
        .paused(true)
        .build();
    let id = deployment
        .add_tenant("app", tenant_pipeline(0), None)
        .unwrap();
    let reference = tenant_pipeline(0);

    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|producer| {
                let deployment = &deployment;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    for attempt in 0..4u64 {
                        let seed = producer * 100 + attempt;
                        local.push((
                            seed,
                            deployment.submit(TenantBatch::new(id, packets(16, 2, seed))),
                        ));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().unwrap())
            .collect()
    });

    let mut admitted = Vec::new();
    let mut deadlined = 0usize;
    for (seed, result) in results {
        match result {
            Ok(ticket) => admitted.push((seed, ticket)),
            Err(RuntimeError::Deadline(_)) => deadlined += 1,
            Err(other) => panic!("saturated submit failed with {other}"),
        }
    }
    // With a two-ticket gate and a paused pipeline, the vast majority of
    // the 32 attempts must bounce off the deadline — and at least the
    // first ones through must be admitted.
    assert!(!admitted.is_empty(), "no submission was ever admitted");
    assert!(
        deadlined >= admitted.len(),
        "expected most saturated submissions to deadline, got {deadlined}"
    );

    deployment.resume();
    deployment.drain();
    for (seed, ticket) in admitted {
        let expected = reference.classify_batch(&packets(16, 2, seed), 1);
        assert_eq!(
            ticket.wait().into_vec(),
            expected,
            "admitted ticket diverged after the deadline storm"
        );
    }
    deployment.shutdown();
}

/// Stages arbitrary per-tenant backlogs on a paused deployment with a
/// small fairness window, resumes, drains, and returns the dispatch log
/// plus the per-lane staged row totals.
fn staged_windowed_run(
    weights: &[f64],
    min_shares: &[f64],
    batch_rows: usize,
    chunk_rows: usize,
    batches_per_tenant: usize,
    window_rows: u64,
    workers: usize,
) -> (Vec<(usize, usize)>, u64) {
    let deployment = Deployment::builder()
        .workers(workers)
        .chunk_rows(chunk_rows)
        .queue_depth(weights.len() * batches_per_tenant)
        .fairness_window_rows(window_rows)
        .paused(true)
        .record_dispatch(true)
        .build();
    let ids: Vec<_> = weights
        .iter()
        .zip(min_shares)
        .enumerate()
        .map(|(t, (&weight, &min_share))| {
            deployment
                .add_tenant_with(
                    &format!("tenant{t}"),
                    svm_pipeline(vec![1.0, 0.0], 0.0),
                    None,
                    SchedulePolicy::Weighted { weight, min_share },
                )
                .unwrap()
        })
        .collect();
    let mut tickets = Vec::new();
    for round in 0..batches_per_tenant {
        for &id in &ids {
            tickets.push(
                deployment
                    .submit(TenantBatch::new(id, packets(batch_rows, 2, round as u64)))
                    .unwrap(),
            );
        }
    }
    deployment.resume();
    deployment.drain();
    for ticket in tickets {
        assert!(ticket.is_done());
    }
    let log = deployment.dispatch_log().expect("dispatch recording on");
    deployment.shutdown();
    (log, (batch_rows * batches_per_tenant) as u64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Windowed floor accounting: tenant 0 carries a tiny weight but a
    /// guaranteed floor, the other tenants carry arbitrary weights. Over
    /// every all-lanes-backlogged prefix past warmup, the floored
    /// tenant's observed share must hold its guarantee to within the
    /// window's chunk-granularity resolution — for arbitrary backlog
    /// mixes, worker counts, and window sizes.
    #[test]
    fn prop_windowed_floor_holds_over_backlogged_prefixes(
        raw_weights in proptest::collection::vec(2u32..10, 1..3),
        floor_percent in 12u32..35,
        batches_per_tenant in 6usize..12,
        window_pick in 0usize..3,
        workers in 1usize..3,
    ) {
        let chunk_rows = 8usize;
        let batch_rows = 24usize;
        let window_rows = [512u64, 1024, 2048][window_pick];
        let floor = floor_percent as f64 / 100.0;

        let mut weights = vec![0.05];
        weights.extend(raw_weights.iter().map(|&w| w as f64));
        let mut min_shares = vec![floor];
        min_shares.extend(std::iter::repeat_n(0.0, raw_weights.len()));

        let (log, per_tenant_total) = staged_windowed_run(
            &weights,
            &min_shares,
            batch_rows,
            chunk_rows,
            batches_per_tenant,
            window_rows,
            workers,
        );

        let lanes = weights.len();
        let warmup_rows = (chunk_rows * lanes * 4) as u64;
        let mut served = vec![0u64; lanes];
        let mut total = 0u64;
        let mut checked = 0usize;
        for &(lane, rows) in &log {
            served[lane] += rows as u64;
            total += rows as u64;
            if served.iter().any(|&s| s >= per_tenant_total) {
                // A drained lane forfeits its share to the rest.
                break;
            }
            if total < warmup_rows {
                continue;
            }
            let share = served[0] as f64 / total as f64;
            // The decaying window caps accounting resolution at roughly
            // one chunk per lane per window, on top of the one-chunk
            // quantization any prefix carries.
            let slack = (chunk_rows * lanes) as f64 / (total.min(window_rows) as f64);
            prop_assert!(
                share >= floor - slack,
                "floored tenant share {share:.4} fell below its {floor:.2} \
                 guarantee (slack {slack:.4}, prefix {total} rows, \
                 window {window_rows})"
            );
            checked += 1;
        }
        prop_assert!(checked > 5, "too few backlogged prefixes checked");
    }
}

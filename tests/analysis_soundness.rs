//! Soundness of the static analyzer against the exact runtime semantics.
//!
//! For random models across all five families, random fixed-point
//! formats, and random (arbitrarily out-of-range) inputs:
//!
//! - every intermediate value the saturating scalar replay
//!   ([`CompiledPipeline::trace`]) produces lies inside the interval the
//!   analyzer derived for that stage at lowering time;
//! - every pipeline certified saturation-free observes **zero** clamping
//!   saturating operations in the replay;
//! - the replay verdict equals [`CompiledPipeline::classify`];
//! - the `homunculus-analysis` certificates agree with the runtime's
//!   [`KernelFact`]s they re-surface.
//!
//! [`CompiledPipeline::trace`]: homunculus::runtime::CompiledPipeline::trace
//! [`CompiledPipeline::classify`]: homunculus::runtime::CompiledPipeline::classify
//! [`KernelFact`]: homunculus::runtime::pipeline::KernelFact

use homunculus::analysis::{analyze_model, ModelInput};
use homunculus::backends::model::{
    DnnIr, ForestIr, KMeansIr, LayerParams, ModelIr, SvmIr, TreeIr, TreeNodeIr,
};
use homunculus::ml::bounds::Interval;
use homunculus::ml::mlp::MlpArchitecture;
use homunculus::ml::quantize::FixedPoint;
use homunculus::ml::tensor::Matrix;
use homunculus::runtime::pipeline::KernelFact;
use homunculus::runtime::{Compile, CompiledPipeline, Scratch};
use proptest::prelude::*;

/// The formats the lowering is exercised under: the Taurus word format,
/// a couple of narrow ones (easy to saturate), and a 29-bit one that is
/// too wide for any packed lane (scalar tier).
fn format(idx: usize) -> FixedPoint {
    let (int_bits, frac_bits) = [(3, 12), (7, 8), (2, 4), (12, 16)][idx % 4];
    FixedPoint::new(int_bits, frac_bits).unwrap()
}

/// Weight pools are drawn from `-9.0..9.0` — beyond every format's
/// representable range, so quantization clamps some of them; the
/// analyzer must stay sound through that.
struct Pool {
    values: Vec<f32>,
    next: usize,
}

impl Pool {
    fn new(values: Vec<f32>) -> Self {
        Pool { values, next: 0 }
    }

    fn draw(&mut self) -> f32 {
        let v = self.values[self.next % self.values.len()];
        self.next += 1;
        v
    }
}

/// A complete binary tree of `depth` laid out level by level: internal
/// nodes `0..2^depth - 1`, leaves after them — a valid arena for any
/// feature/threshold assignment.
fn full_tree(depth: usize, n_features: usize, n_classes: usize, pool: &mut Pool) -> TreeIr {
    let internal = (1usize << depth) - 1;
    let total = (1usize << (depth + 1)) - 1;
    let nodes: Vec<TreeNodeIr> = (0..total)
        .map(|i| {
            if i < internal {
                TreeNodeIr::Split {
                    feature: i % n_features,
                    threshold: pool.draw(),
                    left: 2 * i + 1,
                    right: 2 * i + 2,
                }
            } else {
                TreeNodeIr::Leaf {
                    class: i % n_classes,
                }
            }
        })
        .collect();
    TreeIr {
        depth,
        n_features,
        leaves: 1 << depth,
        n_classes: Some(n_classes),
        nodes: Some(nodes),
    }
}

/// Builds one trained model of the chosen family, all parameters drawn
/// from the pool. `a`/`b`/`c` are small dimension seeds.
fn build_model(family: usize, a: usize, b: usize, c: usize, pool: &mut Pool) -> ModelIr {
    match family % 5 {
        0 => {
            let arch = MlpArchitecture::new(a, vec![b], 2 + c % 3);
            let params = arch
                .layer_dims()
                .iter()
                .map(|&(rows, cols)| LayerParams {
                    weights: Matrix::from_fn(rows, cols, |_, _| pool.draw()),
                    bias: (0..cols).map(|_| pool.draw()).collect(),
                })
                .collect();
            ModelIr::Dnn(DnnIr {
                arch,
                params: Some(params),
            })
        }
        1 => {
            let n_classes = 2 + c % 3;
            let planes = if n_classes == 2 { 1 } else { n_classes };
            let weights: Vec<Vec<f32>> = (0..planes)
                .map(|_| (0..a).map(|_| pool.draw()).collect())
                .collect();
            let biases: Vec<f32> = (0..planes).map(|_| pool.draw()).collect();
            ModelIr::Svm(SvmIr {
                n_features: a,
                n_classes,
                planes: Some((weights, biases)),
            })
        }
        2 => {
            let k = 1 + b % 5;
            let centroids: Vec<Vec<f32>> = (0..k)
                .map(|_| (0..a).map(|_| pool.draw()).collect())
                .collect();
            ModelIr::KMeans(KMeansIr {
                k,
                n_features: a,
                centroids: Some(centroids),
            })
        }
        3 => ModelIr::Tree(full_tree(1 + b % 3, a, 2 + c % 3, pool)),
        _ => {
            let n_classes = 2 + c % 3;
            let trees: Vec<TreeIr> = (0..1 + c % 3)
                .map(|_| full_tree(1 + b % 3, a, n_classes, pool))
                .collect();
            ModelIr::Forest(ForestIr {
                n_features: a,
                n_classes,
                trees,
            })
        }
    }
}

/// The analyzer interval a trace stage's values must lie in, when a
/// matching [`KernelFact`] exists. Trace labels suffix the fact labels
/// (`"dense layer 0 pre-activation"` → fact `"dense layer 0"`).
fn stage_intervals<'f>(label: &str, facts: &'f [KernelFact]) -> Option<&'f [Interval]> {
    if let Some(fact_label) = label.strip_suffix(" pre-activation") {
        return facts
            .iter()
            .find(|f| f.label == fact_label)
            .map(|f| f.pre.as_slice());
    }
    if let Some(fact_label) = label.strip_suffix(" activation") {
        return facts
            .iter()
            .find(|f| f.label == fact_label)
            .map(|f| f.post.as_slice());
    }
    let fact_label = match label {
        "svm scores" => "svm planes",
        other => other,
    };
    facts
        .iter()
        .find(|f| f.label == fact_label)
        .map(|f| f.post.as_slice())
}

/// The core soundness oracle: replay the exact saturating scalar
/// semantics and hold every recorded intermediate to the analyzer's
/// predictions.
fn check_soundness(pipeline: &CompiledPipeline, fmt: FixedPoint, features: &[f32]) {
    let facts = pipeline.kernel_facts();
    let trace = pipeline.trace(features);
    let mut scratch = Scratch::new();
    assert_eq!(
        trace.verdict,
        pipeline.classify(features, &mut scratch),
        "trace and classify disagree"
    );
    if pipeline.saturation_certified() {
        assert!(
            !trace.saturated,
            "certified pipeline observed a clamping saturating op"
        );
    }
    for stage in &trace.stages {
        if stage.label == "quantized features" {
            let iv = Interval::quantized(fmt);
            for &v in &stage.values {
                assert!(iv.contains(v), "{}: {v} outside {iv:?}", stage.label);
            }
            continue;
        }
        let Some(intervals) = stage_intervals(&stage.label, facts) else {
            continue;
        };
        assert_eq!(
            intervals.len(),
            stage.values.len(),
            "fact width mismatch at '{}'",
            stage.label
        );
        for (j, (&v, iv)) in stage.values.iter().zip(intervals).enumerate() {
            assert!(
                iv.contains(v),
                "{}[{j}]: value {v} outside predicted {iv:?}",
                stage.label
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    #[test]
    fn prop_runtime_stays_inside_predicted_intervals(
        family in 0usize..5,
        a in 1usize..8,
        b in 1usize..8,
        c in 0usize..9,
        fmt_idx in 0usize..4,
        pool in proptest::collection::vec(-9.0f32..9.0, 40..200),
        rows in proptest::collection::vec(-100.0f32..100.0, 10..60),
    ) {
        let ir = build_model(family, a, b, c, &mut Pool::new(pool));
        let fmt = format(fmt_idx);
        let pipeline = ir.compile(fmt).unwrap();
        let nf = pipeline.n_features();
        for row in rows.chunks(nf.max(1)) {
            let features: Vec<f32> = row.iter().copied().cycle().take(nf).collect();
            check_soundness(&pipeline, fmt, &features);
        }
    }

    #[test]
    fn prop_certificates_mirror_kernel_facts(
        family in 0usize..5,
        a in 1usize..8,
        b in 1usize..8,
        c in 0usize..9,
        fmt_idx in 0usize..4,
        pool in proptest::collection::vec(-9.0f32..9.0, 40..200),
    ) {
        let ir = build_model(family, a, b, c, &mut Pool::new(pool));
        let fmt = format(fmt_idx);
        let pipeline = ir.compile(fmt).unwrap();
        let analysis = analyze_model(&ModelInput {
            name: "prop",
            ir: &ir,
            format: fmt,
            normalizer: None,
            word_bits: None,
        });
        assert!(analysis.analyzed);
        let facts = pipeline.kernel_facts();
        assert_eq!(analysis.certificates.len(), facts.len());
        for (cert, fact) in analysis.certificates.iter().zip(facts) {
            assert_eq!(cert.kernel, fact.label);
            assert_eq!(cert.certified, fact.certified);
            assert_eq!(cert.abs_bound, fact.abs_bound);
        }
        assert_eq!(analysis.saturation_certified(), pipeline.saturation_certified());
    }

    #[test]
    fn prop_extreme_inputs_stay_inside_intervals(
        family in 0usize..5,
        a in 1usize..8,
        b in 1usize..8,
        c in 0usize..9,
        fmt_idx in 0usize..4,
        pool in proptest::collection::vec(-9.0f32..9.0, 40..200),
    ) {
        // Quantization clamps everything — including non-finite floats —
        // into [min_raw, max_raw], so even these inputs are "admissible"
        // and the derived intervals must hold.
        let ir = build_model(family, a, b, c, &mut Pool::new(pool));
        let fmt = format(fmt_idx);
        let pipeline = ir.compile(fmt).unwrap();
        for fill in [f32::MAX, f32::MIN, f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 0.0] {
            let features = vec![fill; pipeline.n_features()];
            check_soundness(&pipeline, fmt, &features);
        }
    }
}

//! Generated data-plane programs carry the analyzer's no-saturation
//! certificates as trailing comments: presence, one line per kernel,
//! and values bit-identical to an independent `analyze_model` run.

use std::sync::OnceLock;

use homunculus::analysis::{analyze_model, ModelInput};
use homunculus::backends::model::ModelIr;
use homunculus::backends::spatial::is_balanced;
use homunculus::core::alchemy::{Algorithm, Metric, ModelSpec, Platform};
use homunculus::core::pipeline::{CompiledArtifact, CompilerOptions};
use homunculus::core::session::Compiler;
use homunculus::datasets::nslkdd::NslKddGenerator;

const MARKER: &str = "// --- static analysis certificates ---";

fn compile(algorithm: Algorithm) -> CompiledArtifact {
    let spec = ModelSpec::builder("ad")
        .optimization_metric(Metric::F1)
        .algorithm(algorithm)
        .data(NslKddGenerator::new(1).generate(400))
        .build()
        .unwrap();
    let mut platform = Platform::taurus();
    platform.schedule(spec).unwrap();
    let options = CompilerOptions::fast().bo_budget(3).seed(0);
    Compiler::new(options)
        .open(&platform)
        .unwrap()
        .compile()
        .unwrap()
}

fn dnn_artifact() -> &'static CompiledArtifact {
    static ARTIFACT: OnceLock<CompiledArtifact> = OnceLock::new();
    ARTIFACT.get_or_init(|| compile(Algorithm::Dnn))
}

/// The exact comment lines `analyze_model` would stamp for a report —
/// recomputed independently of the compile session.
fn expected_lines(artifact: &CompiledArtifact) -> Vec<String> {
    let report = artifact.best();
    let target = Platform::taurus().effective_target();
    let analysis = analyze_model(&ModelInput {
        name: &report.name,
        ir: &report.ir,
        format: report.format,
        normalizer: Some(&report.normalizer),
        word_bits: Some(target.as_target().word_bits()),
    });
    analysis
        .certificates
        .iter()
        .map(|c| {
            format!(
                "// certificate kernel=\"{}\" certified={} abs_bound={} headroom={:.2}",
                c.kernel, c.certified, c.abs_bound, c.headroom,
            )
        })
        .collect()
}

#[test]
fn generated_code_carries_certificate_comments() {
    let artifact = dnn_artifact();
    let code = &artifact.best().code;
    assert!(
        code.contains(MARKER),
        "certificate block missing from generated code:\n{code}"
    );
    let expected = expected_lines(artifact);
    assert!(!expected.is_empty(), "a trained DNN has dense kernels");
    for line in &expected {
        assert!(
            code.lines().any(|l| l == line),
            "missing certificate line {line:?} in:\n{code}"
        );
    }
    // The block sits after the program proper and does not unbalance it.
    assert!(is_balanced(code), "unbalanced code:\n{code}");
    let marker_at = code.find(MARKER).unwrap();
    assert!(is_balanced(&code[..marker_at]), "program truncated early");
    // Every expected line appears exactly once, and nothing else claims
    // to be a certificate.
    let stamped = code
        .lines()
        .filter(|l| l.starts_with("// certificate kernel="))
        .count();
    assert_eq!(stamped, expected.len());
}

#[test]
fn certified_kernels_report_headroom_within_range() {
    let artifact = dnn_artifact();
    let report = artifact.best();
    let target = Platform::taurus().effective_target();
    let analysis = analyze_model(&ModelInput {
        name: &report.name,
        ir: &report.ir,
        format: report.format,
        normalizer: Some(&report.normalizer),
        word_bits: Some(target.as_target().word_bits()),
    });
    for c in &analysis.certificates {
        assert_eq!(
            c.certified,
            c.abs_bound <= i64::from(i32::MAX),
            "certification must match the bound: {c:?}"
        );
        assert!(c.headroom >= 0.0);
        // The comment renders two decimals; a trained small DNN should
        // be comfortably certified, not balanced on the edge.
        if c.certified {
            assert!(c.headroom <= 1.0, "{c:?}");
        }
    }
}

#[test]
fn forest_compiles_end_to_end_with_certificates() {
    // The opt-in fifth family flows through search, training, codegen,
    // and the certificate stamp like any other algorithm.
    let artifact = compile(Algorithm::RandomForest);
    let report = artifact.best();
    assert_eq!(report.algorithm, Algorithm::RandomForest);
    assert!(matches!(report.ir, ModelIr::Forest(_)));
    assert!(report.compiled.is_some(), "forest lowers to the runtime");
    assert!(
        report.code.contains(MARKER),
        "forest code missing certificates:\n{}",
        report.code
    );
}

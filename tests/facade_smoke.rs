//! Compile-time smoke test for the `homunculus` facade: every module path
//! the `examples/` and the docs rely on must resolve through the facade
//! re-exports. Each import below is *used* (not just named) so the paths
//! cannot silently rot into unused-import noise, and the cheap runtime
//! assertions double-check the re-export points at the real crate (same
//! types, same behavior), not a stub.

use homunculus::backends::model::{DnnIr, ModelIr};
use homunculus::backends::target::Target;
use homunculus::backends::taurus::TaurusTarget;
use homunculus::backends::tofino::TofinoTarget;
use homunculus::core::alchemy::{Metric, ModelSpec, Platform};
use homunculus::core::fusion::DEFAULT_OVERLAP_THRESHOLD;
use homunculus::core::pipeline::CompilerOptions;
use homunculus::core::schedule::ScheduleExpr;
use homunculus::dataplane::histogram::{Flowmarker, FlowmarkerConfig};
use homunculus::dataplane::packet::Packet;
use homunculus::datasets::iot::IotTrafficGenerator;
use homunculus::datasets::nslkdd::NslKddGenerator;
use homunculus::datasets::p2p::P2pTrafficGenerator;
use homunculus::ml::metrics::f1_binary;
use homunculus::ml::mlp::MlpArchitecture;
use homunculus::ml::tensor::Matrix;
use homunculus::optimizer::space::{DesignSpace, Parameter};
use homunculus::sim::grid::GridSimulator;
use homunculus::sim::mat::MatSimulator;
use homunculus::sim::pktgen::reaction_time_curve;

#[test]
fn facade_paths_resolve_and_behave() {
    // datasets
    let ds = NslKddGenerator::new(1).generate(50);
    assert_eq!(ds.len(), 50);
    assert!(!IotTrafficGenerator::new(1).generate(10).is_empty());
    assert_eq!(P2pTrafficGenerator::new(1).generate_flows(3).len(), 3);

    // ml
    let m = Matrix::from_fn(2, 2, |r, c| (r + c) as f32);
    assert_eq!(m.rows(), 2);
    assert!(f1_binary(&[0, 1], &[0, 1]).unwrap() > 0.99);
    let arch = MlpArchitecture::new(4, vec![3], 2);
    assert_eq!(arch.depth(), 2);

    // backends: both codegen targets accept a model IR.
    let model = ModelIr::Dnn(DnnIr::from_architecture(&arch));
    assert!(TaurusTarget::default().estimate(&model).is_ok());
    assert!(TofinoTarget::default().estimate(&model).is_ok());

    // dataplane
    let mut marker = Flowmarker::new(FlowmarkerConfig::paper_reduced()).unwrap();
    let mut builder = Packet::builder();
    builder.size_bytes(100).timestamp_ns(1);
    marker.observe(&builder.build());

    // optimizer
    let mut space = DesignSpace::new("smoke");
    space.add("x", Parameter::real(0.0, 1.0)).unwrap();
    assert_eq!(space.len(), 1);

    // sim
    let _ = GridSimulator::new(4, 4, 1.0);
    let _ = MatSimulator::new(4, 2, 1.0);
    let curve = reaction_time_curve(&[4, 8], 100.0, 50.0, |n| {
        (vec![0, 1, 0, 1], vec![0, 1, 0, usize::from(n >= 8)])
    })
    .unwrap();
    assert_eq!(curve.len(), 2);

    // core
    let spec = ModelSpec::builder("smoke")
        .optimization_metric(Metric::F1)
        .data(ds)
        .build()
        .unwrap();
    let _schedule: ScheduleExpr = ScheduleExpr::Leaf(Box::new(spec.clone()));
    let mut platform = Platform::taurus();
    platform.constraints_mut().throughput_gpps(1.0);
    platform.schedule(spec).unwrap();
    let _threshold: f64 = DEFAULT_OVERLAP_THRESHOLD;
    let _ = CompilerOptions::fast();
}

//! Reproducibility: the whole stack is deterministic under a seed.

use homunculus::core::alchemy::{Algorithm, Metric, ModelSpec, Platform};
use homunculus::core::pipeline::{generate_with, CompilerOptions};
use homunculus::datasets::iot::IotTrafficGenerator;
use homunculus::datasets::nslkdd::NslKddGenerator;
use homunculus::datasets::p2p::P2pTrafficGenerator;

fn options(seed: u64) -> CompilerOptions {
    CompilerOptions {
        bo_budget: 6,
        doe_samples: 3,
        train_epochs: 8,
        final_epochs: 12,
        sample_cap: Some(500),
        parallel: true,
        seed,
        time_budget: None,
    }
}

fn compile(seed: u64, data_seed: u64) -> (f64, String) {
    let model = ModelSpec::builder("ad")
        .optimization_metric(Metric::F1)
        .algorithm(Algorithm::Dnn)
        .data(NslKddGenerator::new(data_seed).generate(800))
        .build()
        .unwrap();
    let mut platform = Platform::taurus();
    platform
        .constraints_mut()
        .throughput_gpps(1.0)
        .latency_ns(500.0);
    platform.schedule(model).unwrap();
    let artifact = generate_with(&platform, &options(seed)).unwrap();
    (artifact.best().objective, artifact.best().code.clone())
}

#[test]
fn same_seed_same_artifact() {
    let (obj_a, code_a) = compile(3, 1);
    let (obj_b, code_b) = compile(3, 1);
    assert_eq!(obj_a, obj_b);
    assert_eq!(code_a, code_b);
}

#[test]
fn generators_are_deterministic() {
    assert_eq!(
        NslKddGenerator::new(5).generate(300),
        NslKddGenerator::new(5).generate(300)
    );
    assert_eq!(
        IotTrafficGenerator::new(5).generate(300),
        IotTrafficGenerator::new(5).generate(300)
    );
    assert_eq!(
        P2pTrafficGenerator::new(5).generate_flows(30),
        P2pTrafficGenerator::new(5).generate_flows(30)
    );
}

#[test]
fn different_data_seeds_differ() {
    assert_ne!(
        NslKddGenerator::new(1).generate(300),
        NslKddGenerator::new(2).generate(300)
    );
}

#[test]
fn parallel_and_serial_compilation_agree() {
    // The crossbeam fan-out must not change results (each algorithm run
    // is independently seeded).
    let model = || {
        ModelSpec::builder("ad")
            .optimization_metric(Metric::F1)
            .data(NslKddGenerator::new(4).generate(700))
            .build()
            .unwrap()
    };
    let run = |parallel: bool| {
        let mut platform = Platform::taurus();
        platform
            .constraints_mut()
            .throughput_gpps(1.0)
            .latency_ns(500.0);
        platform.schedule(model()).unwrap();
        let mut o = options(11);
        o.parallel = parallel;
        generate_with(&platform, &o).unwrap()
    };
    let par = run(true);
    let ser = run(false);
    assert_eq!(par.best().objective, ser.best().objective);
    assert_eq!(par.best().algorithm, ser.best().algorithm);
    assert_eq!(par.best().code, ser.best().code);
}

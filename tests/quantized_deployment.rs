//! Deployment-path invariants: the fixed-point weights that reach the
//! data plane must preserve the trained model's decisions, and the
//! design-space JSON interface must stay HyperMapper-shaped.

use homunculus::ml::metrics::accuracy;
use homunculus::ml::mlp::{Dense, Mlp, MlpArchitecture, TrainConfig};
use homunculus::ml::quantize::{quantize_with_report, FixedPoint};
use homunculus::ml::tensor::Matrix;
use homunculus::optimizer::space::{DesignSpace, Parameter};

fn trained_net() -> (Mlp, Matrix, Vec<usize>) {
    let n = 400;
    let x = Matrix::from_fn(n, 7, |r, c| {
        (((r * 31 + c * 17) % 97) as f32 / 97.0) * 2.0 - 1.0
    });
    let y: Vec<usize> = (0..n)
        .map(|i| usize::from(x.row(i)[0] + x.row(i)[3] * 0.5 > 0.0))
        .collect();
    let arch = MlpArchitecture::new(7, vec![16, 8], 2);
    let mut net = Mlp::new(&arch, 3).unwrap();
    net.train(&x, &y, &TrainConfig::default().epochs(40))
        .unwrap();
    (net, x, y)
}

#[test]
fn q3_12_quantization_preserves_decisions() {
    let (net, x, _) = trained_net();
    let q = FixedPoint::taurus_default();

    // Quantize every layer's parameters as codegen does.
    let quantized_layers: Vec<Dense> = net
        .layers()
        .iter()
        .map(|l| Dense {
            weights: q.roundtrip_matrix(&l.weights),
            bias: q.roundtrip_slice(&l.bias),
        })
        .collect();
    let mut deployed = Mlp::new(net.architecture(), 0).unwrap();
    deployed.set_layers(quantized_layers).unwrap();

    let float_pred = net.predict(&x).unwrap();
    let fixed_pred = deployed.predict(&x).unwrap();
    let agreement = accuracy(&float_pred, &fixed_pred).unwrap();
    assert!(
        agreement > 0.99,
        "fixed-point deployment flipped {:.1}% of decisions",
        (1.0 - agreement) * 100.0
    );
}

#[test]
fn quantization_report_accounts_for_every_weight() {
    let (net, _, _) = trained_net();
    let q = FixedPoint::taurus_default();
    let all_weights: Vec<f32> = net
        .layers()
        .iter()
        .flat_map(|l| {
            l.weights
                .as_slice()
                .iter()
                .copied()
                .chain(l.bias.iter().copied())
        })
        .collect();
    let (raw, report) = quantize_with_report(q, &all_weights);
    assert_eq!(raw.len(), net.param_count());
    assert_eq!(report.count, net.param_count());
    assert!(report.max_abs_error <= q.max_error() + 1e-6 || report.saturated > 0);
    // Trained weights of a normalized-input net stay well inside Q3.12.
    assert_eq!(report.saturated, 0, "weights should not saturate Q3.12");
}

#[test]
fn hypermapper_json_interface_is_complete() {
    let mut space = DesignSpace::new("anomaly_detection-dnn");
    space.add("n_layers", Parameter::integer(1, 10)).unwrap();
    space.add("width", Parameter::integer(2, 64)).unwrap();
    space.add("log10_lr", Parameter::real(-3.0, -0.8)).unwrap();
    space
        .add("batch", Parameter::ordinal(vec![16.0, 32.0, 64.0, 128.0]))
        .unwrap();
    space
        .add("act", Parameter::categorical(vec!["relu", "tanh"]))
        .unwrap();

    let json = space.to_hypermapper_json();
    // The fields HyperMapper requires (§4 of the paper: "design-space
    // restrictions ... formed into a JSON configuration file").
    assert_eq!(json["application_name"], "anomaly_detection-dnn");
    assert!(json["optimization_objectives"].is_array());
    assert_eq!(json["models"]["model"], "random_forest");
    assert_eq!(
        json["feasible_output"]["enable_feasible_predictor"],
        serde_json::json!(true)
    );
    let params = json["input_parameters"].as_object().unwrap();
    assert_eq!(params.len(), 5);
    assert_eq!(params["n_layers"]["parameter_type"], "integer");
    assert_eq!(params["log10_lr"]["parameter_type"], "real");
    assert_eq!(params["batch"]["parameter_type"], "ordinal");
    assert_eq!(params["act"]["parameter_type"], "categorical");
    // Round-trips through serde_json text.
    let text = serde_json::to_string_pretty(&json).unwrap();
    let back: serde_json::Value = serde_json::from_str(&text).unwrap();
    assert_eq!(back, json);
}

//! The static verification layer, end to end: a seeded-defect corpus
//! with exact `HA` codes, the `homunculus-analyze` CLI (human and JSON
//! modes, exit codes), the artifact-load validation hook, and the
//! degenerate-normalizer regression through both wire formats.

use std::process::Command;
use std::sync::OnceLock;

use homunculus::analysis::{analyze_model, analyze_models, DiagCode, ModelInput, Severity};
use homunculus::backends::model::{DnnIr, LayerParams, ModelIr, SvmIr};
use homunculus::core::alchemy::{Algorithm, Metric, ModelSpec, Platform};
use homunculus::core::pipeline::{CompiledArtifact, CompilerOptions};
use homunculus::core::session::{CompileEvent, Compiler};
use homunculus::core::CoreError;
use homunculus::datasets::nslkdd::NslKddGenerator;
use homunculus::ml::mlp::MlpArchitecture;
use homunculus::ml::preprocess::Normalizer;
use homunculus::ml::quantize::FixedPoint;
use homunculus::ml::tensor::Matrix;
use homunculus::ml::MlError;
use serde_json::{json, ToJson, Value};

/// One small deterministic compile, shared across every test in this
/// binary (the defect corpus derives from mutations of its document).
fn artifact() -> &'static CompiledArtifact {
    static ARTIFACT: OnceLock<CompiledArtifact> = OnceLock::new();
    ARTIFACT.get_or_init(|| {
        let spec = ModelSpec::builder("anomaly_detection")
            .optimization_metric(Metric::F1)
            .algorithm(Algorithm::Dnn)
            .data(NslKddGenerator::new(1).generate(600))
            .build()
            .unwrap();
        let mut platform = Platform::taurus();
        platform
            .constraints_mut()
            .throughput_gpps(1.0)
            .latency_ns(500.0)
            .grid(16, 16);
        platform.schedule(spec).unwrap();
        let options = CompilerOptions {
            bo_budget: 4,
            doe_samples: 2,
            train_epochs: 8,
            final_epochs: 10,
            sample_cap: Some(400),
            parallel: true,
            seed: 0,
            time_budget: None,
        };
        Compiler::new(options)
            .open(&platform)
            .unwrap()
            .compile()
            .unwrap()
    })
}

/// Runs `homunculus-analyze` over `paths`, returning (exit code, stdout).
fn run_cli(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_homunculus-analyze"))
        .args(args)
        .output()
        .expect("spawn homunculus-analyze");
    (
        out.status.code().expect("exit code"),
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
    )
}

fn tmp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("homunculus_test_{name}"))
}

/// Mutable access into a document object's field (the vendored
/// serde_json has no `IndexMut`; defect seeding goes through the enum).
fn field_mut<'a>(value: &'a mut Value, key: &str) -> &'a mut Value {
    match value {
        Value::Object(map) => map.get_mut(key).expect(key),
        other => panic!("expected object at '{key}', got {other:?}"),
    }
}

fn elem_mut(value: &mut Value, idx: usize) -> &mut Value {
    match value {
        Value::Array(items) => &mut items[idx],
        other => panic!("expected array, got {other:?}"),
    }
}

/// The clean compiled artifact: zero diagnostics of error severity,
/// every kernel certified, CLI exit 0 in both modes, loads pass the
/// validation hook in both wire formats.
#[test]
fn clean_artifact_passes_analyzer_cli_and_load_hook() {
    let artifact = artifact();
    let analysis = artifact.analyze();
    assert!(!analysis.has_errors(), "{}", analysis.render());
    assert!(analysis.saturation_certified());
    assert!(analysis.models.iter().all(|m| m.analyzed));
    artifact.verify().unwrap();

    let json_path = tmp_path("clean.artifact.json");
    let bin_path = tmp_path("clean.artifact.bin");
    artifact.save_json(&json_path).unwrap();
    artifact.save_bin(&bin_path).unwrap();
    CompiledArtifact::load_json(&json_path).unwrap();
    CompiledArtifact::load_bin(&bin_path).unwrap();

    let (code, out) = run_cli(&[json_path.to_str().unwrap(), bin_path.to_str().unwrap()]);
    assert_eq!(code, 0, "CLI failed on a clean artifact:\n{out}");
    assert!(out.contains("certified"), "unexpected CLI output:\n{out}");

    let (code, out) = run_cli(&["--json", json_path.to_str().unwrap()]);
    assert_eq!(code, 0);
    let doc = serde_json::from_str(&out).expect("CLI --json output parses");
    let reports = doc["reports"].as_array().expect("reports array");
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0]["errors"].as_i64(), Some(0));
}

/// Satellite regression: a near-zero std is a typed error naming the
/// offending column, surfaced directly at decode...
#[test]
fn degenerate_normalizer_is_a_typed_error_naming_the_column() {
    let doc = json!({ "mean": [0.0, 1.0, 2.0], "std": [1.0, 1.0, 0.0] });
    let err = Normalizer::from_json(&doc).unwrap_err();
    match err {
        MlError::DegenerateNormalizer { column, std } => {
            assert_eq!(column, 2);
            assert_eq!(std, 0.0);
        }
        other => panic!("expected DegenerateNormalizer, got {other:?}"),
    }
    assert!(err.to_string().contains("column 2"), "{err}");
}

/// ...and through both artifact wire formats: a JSON or HJB1 document
/// carrying a degenerate normalizer is refused at load with the column
/// index in the message, and the lenient CLI path flags it as HA0002.
#[test]
fn degenerate_normalizer_is_refused_through_json_and_bin_load() {
    let mut doc = artifact().to_json();
    {
        let report = elem_mut(field_mut(&mut doc, "reports"), 0);
        let std = field_mut(field_mut(report, "normalizer"), "std");
        *elem_mut(std, 1) = json!(0.0);
    }

    let json_path = tmp_path("degenerate.artifact.json");
    std::fs::write(&json_path, serde_json::to_string_pretty(&doc).unwrap()).unwrap();
    let err = CompiledArtifact::load_json(&json_path).unwrap_err();
    assert!(err.to_string().contains("column 1"), "{err}");

    let bin_path = tmp_path("degenerate.artifact.bin");
    std::fs::write(&bin_path, serde_json::to_vec_binary(doc.clone())).unwrap();
    let err = CompiledArtifact::load_bin(&bin_path).unwrap_err();
    assert!(err.to_string().contains("column 1"), "{err}");

    // The CLI never hard-fails on a decodable-but-defective document: the
    // lenient path turns the same defect into an HA0002 diagnostic.
    for path in [&json_path, &bin_path] {
        let (code, out) = run_cli(&[path.to_str().unwrap()]);
        assert_eq!(code, 1, "defective artifact must exit nonzero");
        assert!(out.contains("HA0002"), "missing HA0002 in:\n{out}");
        assert!(out.contains("column 1"), "missing column in:\n{out}");
    }
}

/// The seeded-defect corpus, analyzer API side: every defect produces
/// its exact `HA` code at the exact severity.
#[test]
fn seeded_defects_produce_exact_codes() {
    let q312 = FixedPoint::taurus_default();

    // HA0001: a NaN weight (non-finite parameters cannot travel through
    // either wire format — both decoders refuse them — so the seed goes
    // through the in-memory IR).
    let ir = ModelIr::Svm(SvmIr {
        n_features: 3,
        n_classes: 2,
        planes: Some((vec![vec![1.0, f32::NAN, 0.5]], vec![0.0])),
    });
    let analysis = analyze_model(&ModelInput {
        name: "nan",
        ir: &ir,
        format: q312,
        normalizer: None,
        word_bits: None,
    });
    assert!(analysis
        .diagnostics
        .iter()
        .any(|d| d.code == DiagCode::NonFiniteParam && d.severity == Severity::Error));

    // HA0003: a plane narrower than the declared feature width.
    let ir = ModelIr::Svm(SvmIr {
        n_features: 4,
        n_classes: 2,
        planes: Some((vec![vec![1.0, 2.0]], vec![0.0])),
    });
    let analysis = analyze_model(&ModelInput {
        name: "width",
        ir: &ir,
        format: q312,
        normalizer: None,
        word_bits: None,
    });
    assert!(analysis
        .diagnostics
        .iter()
        .any(|d| d.code == DiagCode::WidthMismatch && d.severity == Severity::Error));

    // HA0004: Q12.16 needs 29 bits — a warning with no platform in
    // sight (no packed lane), an error against a 16-bit Taurus word.
    let wide = FixedPoint::new(12, 16).unwrap();
    let ir = ModelIr::Svm(SvmIr {
        n_features: 2,
        n_classes: 2,
        planes: Some((vec![vec![1.0, -1.0]], vec![0.0])),
    });
    let advisory = analyze_model(&ModelInput {
        name: "wide",
        ir: &ir,
        format: wide,
        normalizer: None,
        word_bits: None,
    });
    assert!(advisory
        .diagnostics
        .iter()
        .any(|d| d.code == DiagCode::FormatOverflow && d.severity == Severity::Warning));
    let fatal = analyze_model(&ModelInput {
        name: "wide",
        ir: &ir,
        format: wide,
        normalizer: None,
        word_bits: Some(16),
    });
    assert!(fatal
        .diagnostics
        .iter()
        .any(|d| d.code == DiagCode::FormatOverflow && d.severity == Severity::Error));

    // HA0005: feature 1 is inert in every plane.
    let ir = ModelIr::Svm(SvmIr {
        n_features: 3,
        n_classes: 3,
        planes: Some((
            vec![
                vec![1.0, 0.0, 2.0],
                vec![-1.0, 0.0, 0.5],
                vec![0.25, 0.0, -2.0],
            ],
            vec![0.0, 0.0, 0.0],
        )),
    });
    let analysis = analyze_model(&ModelInput {
        name: "dead",
        ir: &ir,
        format: q312,
        normalizer: None,
        word_bits: None,
    });
    assert!(analysis
        .diagnostics
        .iter()
        .any(|d| d.code == DiagCode::DeadFeature
            && d.severity == Severity::Warning
            && d.message.contains("feature 1")));

    // HA0006: a chained stage whose input width matches neither the base
    // feature width nor base + 1 (prior verdict appended).
    let svm = |n_features: usize| {
        ModelIr::Svm(SvmIr {
            n_features,
            n_classes: 2,
            planes: Some((vec![vec![1.0; n_features]], vec![0.0])),
        })
    };
    let (first, second) = (svm(4), svm(9));
    let inputs = [
        ModelInput {
            name: "stage0",
            ir: &first,
            format: q312,
            normalizer: None,
            word_bits: None,
        },
        ModelInput {
            name: "stage1",
            ir: &second,
            format: q312,
            normalizer: None,
            word_bits: None,
        },
    ];
    let chained = analyze_models(&inputs);
    assert!(chained
        .artifact_diagnostics
        .iter()
        .any(|d| d.code == DiagCode::ChainWidthMismatch && d.severity == Severity::Error));

    // HA0007: a dense layer whose worst-case accumulator provably
    // exceeds i32 (each Q3.12 term tops out near 2^18, so ~2^13 terms
    // overflow) — uncertified, but only a warning: saturation is defined
    // behavior.
    let n = 16_384;
    let arch = MlpArchitecture::new(n, vec![], 2);
    let params = arch
        .layer_dims()
        .iter()
        .map(|&(rows, cols)| LayerParams {
            weights: Matrix::filled(rows, cols, 7.9),
            bias: vec![0.0; cols],
        })
        .collect();
    let ir = ModelIr::Dnn(DnnIr {
        arch,
        params: Some(params),
    });
    let analysis = analyze_model(&ModelInput {
        name: "hot",
        ir: &ir,
        format: q312,
        normalizer: None,
        word_bits: None,
    });
    assert!(analysis
        .diagnostics
        .iter()
        .any(|d| d.code == DiagCode::Uncertified && d.severity == Severity::Warning));
    assert!(!analysis.saturation_certified());
}

/// The corpus, CLI side: undecodable and mutated documents come back as
/// diagnostics with a nonzero exit, never a crash.
#[test]
fn corrupt_and_mutated_artifacts_fail_the_cli_with_exact_codes() {
    // HA0000: not an artifact at all.
    let garbage = tmp_path("garbage.artifact.json");
    std::fs::write(&garbage, "{ this is not json").unwrap();
    let (code, out) = run_cli(&[garbage.to_str().unwrap()]);
    assert_eq!(code, 1);
    assert!(out.contains("HA0000"), "missing HA0000 in:\n{out}");

    // HA0000: a bit-corrupted binary document.
    let mut bytes = artifact().to_bin_bytes();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    bytes.truncate(bytes.len() - 7);
    let corrupt = tmp_path("corrupt.artifact.bin");
    std::fs::write(&corrupt, &bytes).unwrap();
    let (code, out) = run_cli(&[corrupt.to_str().unwrap()]);
    assert_eq!(code, 1);
    assert!(out.contains("HA0000"), "missing HA0000 in:\n{out}");

    // HA0000: an unknown format tag.
    let mut doc = artifact().to_json();
    *field_mut(&mut doc, "format") = json!("homunculus.artifact/v0");
    let stale = tmp_path("stale.artifact.json");
    std::fs::write(&stale, serde_json::to_string_pretty(&doc).unwrap()).unwrap();
    let (code, out) = run_cli(&[stale.to_str().unwrap()]);
    assert_eq!(code, 1);
    assert!(out.contains("HA0000"), "missing HA0000 in:\n{out}");

    // HA0003 + refused load: a bias value surgically removed from the
    // trained IR. The load hook must refuse what the CLI flags.
    let mut doc = artifact().to_json();
    {
        let report = elem_mut(field_mut(&mut doc, "reports"), 0);
        let model = field_mut(field_mut(report, "ir"), "model");
        let layer0 = elem_mut(field_mut(model, "params"), 0);
        match field_mut(layer0, "bias") {
            Value::Array(bias) => {
                bias.pop();
            }
            other => panic!("expected bias array, got {other:?}"),
        }
    }
    let clipped = tmp_path("clipped.artifact.json");
    std::fs::write(&clipped, serde_json::to_string_pretty(&doc).unwrap()).unwrap();
    let (code, out) = run_cli(&[clipped.to_str().unwrap()]);
    assert_eq!(code, 1);
    assert!(
        out.contains("HA0003") || out.contains("HA0000"),
        "missing width diagnostic in:\n{out}"
    );
    CompiledArtifact::load_json(&clipped).unwrap_err();

    // The JSON report shape survives defects: reports + failed counters.
    let (code, out) = run_cli(&["--json", garbage.to_str().unwrap()]);
    assert_eq!(code, 1);
    let doc = serde_json::from_str(&out).expect("CLI --json output parses");
    assert_eq!(doc["failed"].as_bool(), Some(true));
}

/// The opt-in compile-session gate: a clean compile passes with the gate
/// on, emits `AnalyzerDiagnostic` events only at warning severity, and
/// produces the same artifact as the ungated session.
#[test]
fn compile_gate_passes_clean_compiles_and_emits_diagnostics() {
    use std::sync::{Arc, Mutex};

    let spec = ModelSpec::builder("anomaly_detection")
        .optimization_metric(Metric::F1)
        .algorithm(Algorithm::Dnn)
        .data(NslKddGenerator::new(1).generate(600))
        .build()
        .unwrap();
    let mut platform = Platform::taurus();
    platform
        .constraints_mut()
        .throughput_gpps(1.0)
        .latency_ns(500.0)
        .grid(16, 16);
    platform.schedule(spec).unwrap();
    let options = CompilerOptions {
        bo_budget: 4,
        doe_samples: 2,
        train_epochs: 8,
        final_epochs: 10,
        sample_cap: Some(400),
        parallel: true,
        seed: 0,
        time_budget: None,
    };

    type SeenDiagnostics = Arc<Mutex<Vec<(Option<String>, Severity)>>>;
    let seen: SeenDiagnostics = Arc::default();
    let sink = Arc::clone(&seen);
    let gated = Compiler::new(options)
        .verify_artifacts(true)
        .observe(Arc::new(move |event: &CompileEvent| {
            if let CompileEvent::AnalyzerDiagnostic { model, diagnostic } = event {
                sink.lock()
                    .unwrap()
                    .push((model.clone(), diagnostic.severity));
            }
        }))
        .open(&platform)
        .unwrap()
        .compile()
        .unwrap();

    let seen = seen.lock().unwrap();
    assert!(
        seen.iter()
            .all(|(_, severity)| *severity == Severity::Warning),
        "gated compile surfaced error diagnostics: {seen:?}"
    );
    // Same models, same verdicts as the ungated baseline compile.
    let baseline = artifact();
    assert_eq!(gated.reports().len(), baseline.reports().len());
    assert_eq!(
        gated.to_json_string().unwrap(),
        baseline.to_json_string().unwrap()
    );

    // The gate is an API error, not a panic, when fed a defective model:
    // exercised here through the load hook's shared verify() path.
    let mut doc = baseline.to_json();
    {
        let report = elem_mut(field_mut(&mut doc, "reports"), 0);
        let std = field_mut(field_mut(report, "normalizer"), "std");
        *elem_mut(std, 0) = json!(f64::from(f32::MIN_POSITIVE) / 1e20);
    }
    let path = tmp_path("gate_defect.artifact.json");
    std::fs::write(&path, serde_json::to_string_pretty(&doc).unwrap()).unwrap();
    match CompiledArtifact::load_json(&path) {
        Err(CoreError::Subsystem(msg)) | Err(CoreError::Analysis(msg)) => {
            assert!(msg.contains("column 0"), "{msg}");
        }
        other => panic!("expected a refusal, got {other:?}"),
    }
}

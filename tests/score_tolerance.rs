//! The analytic `score_tolerance` bound holds *directly* on scores.
//!
//! `tests/compiled_agreement.rs` checks the bound indirectly via argmax
//! (a flip is only legal inside the tolerance band). These property tests
//! assert the stronger claim the bound actually makes: for random models
//! of every score-shaped family, the observed float↔fixed score
//! divergence never exceeds `CompiledPipeline::score_tolerance` — on any
//! input inside the stated bound.
//!
//! Weights, biases, and inputs are kept well inside Q3.12's ±8 range so
//! the bound's no-saturation assumption holds (as it does for normalized
//! traffic and trained-scale weights).

use homunculus::backends::model::{DnnIr, KMeansIr, ModelIr, SvmIr};
use homunculus::ml::mlp::{Activation, Mlp, MlpArchitecture};
use homunculus::ml::quantize::FixedPoint;
use homunculus::runtime::{Compile, Scratch};
use proptest::prelude::*;

fn q() -> FixedPoint {
    FixedPoint::taurus_default()
}

/// Deterministic pseudo-random value in `[-bound, bound]`.
fn value(seed: u64, row: usize, col: usize, bound: f32) -> f32 {
    let mix = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add((row * 31 + col * 7 + 1) as u64)
        .wrapping_mul(0xD1B54A32D192ED03);
    ((mix >> 33) as f32 / (u32::MAX >> 1) as f32 - 1.0) * bound
}

const INPUT_BOUND: f32 = 2.0;

fn inputs(seed: u64, row: usize, dim: usize) -> Vec<f32> {
    (0..dim).map(|c| value(seed, row, c, INPUT_BOUND)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn prop_dnn_scores_stay_inside_tolerance(
        seed in 0u64..1000,
        hidden in 2usize..10,
        depth in 1usize..3,
        activation_pick in 0usize..4,
    ) {
        let activation = [
            Activation::Relu,
            Activation::Linear,
            Activation::Sigmoid,
            Activation::Tanh,
        ][activation_pick];
        let arch = MlpArchitecture::new(4, vec![hidden; depth], 3).with_activation(activation);
        // Fresh (untrained) nets carry small random init weights — the
        // trained-scale regime the bound assumes.
        let net = Mlp::new(&arch, seed).unwrap();
        let pipeline = ModelIr::Dnn(DnnIr::from_mlp(&net)).compile(q()).unwrap();
        let tol = pipeline.score_tolerance(INPUT_BOUND).unwrap();
        prop_assert!(tol.is_finite() && tol > 0.0);
        let mut scratch = Scratch::new();
        for row in 0..12 {
            let features = inputs(seed, row, 4);
            let float = net.logits_row(&features).unwrap();
            let fixed = pipeline.scores(&features, &mut scratch).unwrap();
            for (class, (f, g)) in float.iter().zip(&fixed).enumerate() {
                prop_assert!(
                    (f - g).abs() <= tol,
                    "{activation:?} class {class}: float {f} fixed {g} exceeds tol {tol}"
                );
            }
        }
    }

    #[test]
    fn prop_multiclass_svm_scores_stay_inside_tolerance(
        seed in 0u64..1000,
        n_classes in 3usize..6,
        n_features in 1usize..6,
    ) {
        let weights: Vec<Vec<f32>> = (0..n_classes)
            .map(|p| (0..n_features).map(|c| value(seed, p, c, 1.0)).collect())
            .collect();
        let biases: Vec<f32> = (0..n_classes).map(|p| value(seed ^ 0xB1A5, p, 0, 1.0)).collect();
        let ir = ModelIr::Svm(SvmIr {
            n_features,
            n_classes,
            planes: Some((weights.clone(), biases.clone())),
        });
        let pipeline = ir.compile(q()).unwrap();
        let tol = pipeline.score_tolerance(INPUT_BOUND).unwrap();
        let mut scratch = Scratch::new();
        for row in 0..12 {
            let features = inputs(seed ^ 0x51ED, row, n_features);
            let fixed = pipeline.scores(&features, &mut scratch).unwrap();
            for (plane, (w, b)) in weights.iter().zip(&biases).enumerate() {
                let float: f32 = w.iter().zip(&features).map(|(wi, xi)| wi * xi).sum::<f32>() + b;
                prop_assert!(
                    (float - fixed[plane]).abs() <= tol,
                    "plane {plane}: float {float} fixed {} exceeds tol {tol}",
                    fixed[plane]
                );
            }
        }
    }

    #[test]
    fn prop_binary_svm_score_stays_inside_tolerance(
        seed in 0u64..1000,
        n_features in 1usize..8,
    ) {
        let w: Vec<f32> = (0..n_features).map(|c| value(seed, 0, c, 1.0)).collect();
        let b = value(seed ^ 0xFACE, 0, 0, 1.0);
        let ir = ModelIr::Svm(SvmIr {
            n_features,
            n_classes: 2,
            planes: Some((vec![w.clone()], vec![b])),
        });
        let pipeline = ir.compile(q()).unwrap();
        let tol = pipeline.score_tolerance(INPUT_BOUND).unwrap();
        let mut scratch = Scratch::new();
        for row in 0..12 {
            let features = inputs(seed ^ 0xD00D, row, n_features);
            // Binary scores come back as [-s, s].
            let fixed = pipeline.scores(&features, &mut scratch).unwrap()[1];
            let float: f32 = w.iter().zip(&features).map(|(wi, xi)| wi * xi).sum::<f32>() + b;
            prop_assert!(
                (float - fixed).abs() <= tol,
                "float {float} fixed {fixed} exceeds tol {tol}"
            );
        }
    }

    #[test]
    fn prop_kmeans_negated_distances_stay_inside_tolerance(
        seed in 0u64..1000,
        k in 2usize..6,
        n_features in 1usize..5,
    ) {
        let centroids: Vec<Vec<f32>> = (0..k)
            .map(|i| (0..n_features).map(|c| value(seed, i, c, INPUT_BOUND)).collect())
            .collect();
        let ir = ModelIr::KMeans(KMeansIr {
            k,
            n_features,
            centroids: Some(centroids.clone()),
        });
        let pipeline = ir.compile(q()).unwrap();
        let tol = pipeline.score_tolerance(INPUT_BOUND).unwrap();
        let mut scratch = Scratch::new();
        for row in 0..12 {
            let features = inputs(seed ^ 0xCAFE, row, n_features);
            let fixed = pipeline.scores(&features, &mut scratch).unwrap();
            for (cluster, centroid) in centroids.iter().enumerate() {
                let float: f32 = -centroid
                    .iter()
                    .zip(&features)
                    .map(|(ci, xi)| (xi - ci) * (xi - ci))
                    .sum::<f32>();
                prop_assert!(
                    (float - fixed[cluster]).abs() <= tol,
                    "cluster {cluster}: float {float} fixed {} exceeds tol {tol}",
                    fixed[cluster]
                );
            }
        }
    }

    #[test]
    fn prop_tree_has_no_score_tolerance(seed in 0u64..200) {
        use homunculus::ml::tensor::Matrix;
        use homunculus::ml::tree::{DecisionTreeClassifier, TreeConfig};
        use homunculus::backends::model::TreeIr;

        let x = Matrix::from_fn(40, 2, |r, c| value(seed, r, c, INPUT_BOUND));
        let y: Vec<usize> = (0..40).map(|r| usize::from(value(seed, r, 0, 1.0) > 0.0)).collect();
        let tree = DecisionTreeClassifier::fit(&x, &y, 2, &TreeConfig::default().seed(seed)).unwrap();
        let pipeline = ModelIr::Tree(TreeIr::from_tree(&tree)).compile(q()).unwrap();
        // Trees are verdict-shaped, not score-shaped: no bound to honor.
        prop_assert!(pipeline.score_tolerance(INPUT_BOUND).is_none());
        prop_assert!(pipeline.scores(&[0.0, 0.0], &mut Scratch::new()).is_none());
    }
}

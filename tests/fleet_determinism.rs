//! Fleet-wide bit determinism: a golden verdict checksum pinned across
//! per-switch worker shapes and flow submission order, the chained
//! gating semantics checked against the sequential `replay_path`
//! reference, and multi-model placement via
//! `CompiledArtifact::deploy_models`.

use homunculus::backends::model::{DnnIr, ModelIr};
use homunculus::core::alchemy::{Algorithm, Metric, ModelSpec, Platform};
use homunculus::core::pipeline::CompilerOptions;
use homunculus::core::session::Compiler;
use homunculus::datasets::nslkdd::NslKddGenerator;
use homunculus::fleet::{Fleet, FlowSpec, HopPolicy, RoutingPolicy, Topology};
use homunculus::ml::mlp::{Activation, Mlp, MlpArchitecture};
use homunculus::ml::quantize::FixedPoint;
use homunculus::ml::tensor::Matrix;
use homunculus::runtime::{classify_rows, Compile, Deployment, TenantBatch};
use homunculus::sim::pktgen::{replay_path, LabeledSample};

/// Fleet-wide verdict checksum of the reference workload below. The
/// whole point of the deterministic fleet: this value must never move
/// unless models, flows, topology, or the checksum definition change.
const GOLDEN_CHECKSUM: u64 = 0x1db2_d2cb_e77d_7895;

fn model(inputs: usize, seed: u64) -> ModelIr {
    let arch = MlpArchitecture::new(inputs, vec![12, 6], 2).with_activation(Activation::Sigmoid);
    ModelIr::Dnn(DnnIr::from_mlp(&Mlp::new(&arch, seed).expect("valid arch")))
}

/// Synthetic 7-feature packets, fully determined by (flow, row, col).
fn packets(flow: usize, rows: usize) -> Matrix {
    Matrix::from_fn(rows, 7, |r, c| {
        ((flow * 13 + r * 31 + c * 7) % 17) as f32 / 17.0 - 0.4
    })
}

fn reference_flows(topology: &Topology, count: usize, rows: usize) -> Vec<FlowSpec> {
    let edges = topology.edge_switches();
    (0..count)
        .map(|f| {
            let src = edges[f % edges.len()];
            let dst = edges[(f + 1 + f / edges.len()) % edges.len()];
            FlowSpec::new(f as u64, src, dst, packets(f, rows))
        })
        .collect()
}

fn reference_fleet(workers: usize) -> Fleet {
    Fleet::builder(Topology::leaf_spine(4, 2).expect("valid fabric"))
        .model("gate8", &model(8, 21), FixedPoint::taurus_default(), None)
        .place_everywhere("gate8")
        .workers(workers)
        .build()
        .expect("fleet builds")
}

fn reference_policy() -> RoutingPolicy {
    RoutingPolicy::uniform(HopPolicy::gate("gate8", 1))
}

#[test]
fn golden_checksum_across_worker_shapes() {
    let policy = reference_policy();
    let mut checksums = Vec::new();
    for workers in [1usize, 2, 4] {
        let fleet = reference_fleet(workers);
        let flows = reference_flows(fleet.topology(), 12, 32);
        let report = fleet.run(&flows, &policy).expect("fleet runs");
        checksums.push(report.checksum());
        fleet.shutdown();
    }
    assert!(
        checksums.windows(2).all(|w| w[0] == w[1]),
        "worker shape changed fleet verdicts: {checksums:?}"
    );
    assert_eq!(
        checksums[0], GOLDEN_CHECKSUM,
        "fleet verdict stream drifted from the golden pin \
         (got {:#018x})",
        checksums[0]
    );
}

#[test]
fn submission_order_does_not_change_the_checksum() {
    let policy = reference_policy();
    let fleet = reference_fleet(2);
    let mut flows = reference_flows(fleet.topology(), 12, 32);
    let forward = fleet.run(&flows, &policy).expect("fleet runs");
    flows.reverse();
    let reversed = fleet.run(&flows, &policy).expect("fleet runs");
    fleet.shutdown();
    assert_eq!(forward.checksum(), reversed.checksum());
    assert_eq!(forward.checksum(), GOLDEN_CHECKSUM);
}

/// A gated + re-tagged flow over a linear 3-hop path must agree packet
/// for packet with `sim::pktgen::replay_path`, the hand-computable
/// sequential reference.
#[test]
fn gated_flow_matches_replay_path_reference() {
    let ir = model(8, 21);
    let format = FixedPoint::taurus_default();
    let pipeline = ir.compile(format).expect("ir lowers");

    let fleet = Fleet::builder(Topology::leaf_spine(2, 1).expect("valid fabric"))
        .model("gate8", &ir, format, None)
        .place_everywhere("gate8")
        .workers(2)
        .build()
        .expect("fleet builds");
    let edges = fleet.topology().edge_switches();
    let rows = 48;
    let flow = FlowSpec::new(7, edges[0], edges[1], packets(7, rows));
    let report = fleet
        .run(std::slice::from_ref(&flow), &reference_policy())
        .expect("fleet runs");
    fleet.shutdown();

    let stream: Vec<LabeledSample> = (0..rows)
        .map(|r| LabeledSample {
            features: (0..7).map(|c| flow.packets[(r, c)]).collect(),
            label: 0,
        })
        .collect();
    let reference = replay_path(&stream, 3, Some(1), true, |_, features, tag| {
        let mut row = features.to_vec();
        row.push(tag);
        let x = Matrix::from_rows(&[row]).expect("one row");
        classify_rows(&pipeline, &x)[0]
    })
    .expect("reference replays");

    let outcome = &report.flows[0];
    assert_eq!(outcome.path.len(), 3, "leaf-spine paths have 3 hops");
    assert_eq!(outcome.delivered, reference.delivered);
    assert_eq!(outcome.gated, reference.gated_per_hop.iter().sum::<usize>());
    // Per-packet: the verdict of the last hop each packet reached.
    for row in 0..rows {
        let fleet_final = (0..3).rev().find_map(|hop| outcome.hop_verdicts[hop][row]);
        assert_eq!(
            fleet_final, reference.final_verdicts[row],
            "packet {row} diverged from the sequential reference"
        );
    }
    // Per-hop gating counts, mapped through the path's switches.
    for (hop, &switch) in outcome.path.iter().enumerate() {
        assert_eq!(
            report.gated_rows[switch.index()] as usize,
            reference.gated_per_hop[hop],
            "hop {hop} gating count diverged"
        );
    }
}

/// `deploy_models` places a subset of a compiled artifact's models on
/// one deployment, and every tenant's verdicts agree with the isolated
/// compiled pipeline.
#[test]
fn deploy_models_places_artifact_subset() {
    let a = ModelSpec::builder("first")
        .optimization_metric(Metric::F1)
        .algorithm(Algorithm::Dnn)
        .data(NslKddGenerator::new(2).generate(300))
        .build()
        .unwrap();
    let b = ModelSpec::builder("second")
        .optimization_metric(Metric::F1)
        .algorithm(Algorithm::DecisionTree)
        .data(NslKddGenerator::new(3).generate(300))
        .build()
        .unwrap();
    let mut platform = Platform::taurus();
    platform.schedule(a | b).unwrap();
    let artifact = Compiler::new(CompilerOptions::fast().bo_budget(3).seed(1))
        .open(&platform)
        .unwrap()
        .compile()
        .unwrap();

    let deployment = Deployment::builder().workers(2).build();
    let tenants = artifact
        .deploy_models(&deployment, &["second", "first"])
        .expect("both models place");
    assert_eq!(tenants.len(), 2);

    // Unknown names are rejected with the available set in the error.
    let err = artifact
        .deploy_models(&deployment, &["missing"])
        .expect_err("unknown model");
    assert!(err.to_string().contains("missing"), "{err}");

    let x = NslKddGenerator::new(9).generate(64);
    for (&tenant, name) in tenants.iter().zip(["second", "first"]) {
        let report = artifact.report(name).expect("report exists");
        let normalized = x.normalized(&report.normalizer).expect("normalizes");
        let expected = classify_rows(
            report.compiled.as_ref().expect("lowered"),
            normalized.features(),
        );
        let ticket = deployment
            .submit(TenantBatch::new(tenant, x.features().clone()))
            .expect("submits");
        assert_eq!(ticket.wait().as_slice(), expected.as_slice(), "{name}");
    }
    deployment.shutdown();
}

//! Cross-run determinism, pinned to golden values.
//!
//! `tests/determinism.rs` proves two runs *in the same process* agree;
//! these tests pin the actual values, so a rebuild on another machine — or
//! an accidental change to the vendored PRNG (`vendor/rand`, a frozen
//! xoshiro256++ whose stream is part of this workspace's contract) — fails
//! loudly instead of silently shifting every seeded experiment.

use homunculus::backends::model::{DnnIr, LayerParams, ModelIr, SvmIr};
use homunculus::datasets::nslkdd::NslKddGenerator;
use homunculus::ml::mlp::MlpArchitecture;
use homunculus::ml::quantize::FixedPoint;
use homunculus::ml::tensor::Matrix;
use homunculus::optimizer::space::{DesignSpace, Parameter};
use homunculus::runtime::{
    Compile, Deployment, PipelineServer, Scratch, ServeOptions, TenantBatch,
};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

#[test]
fn stdrng_stream_is_frozen() {
    let mut rng = StdRng::seed_from_u64(42);
    let words: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
    assert_eq!(
        words,
        [
            15021278609987233951,
            5881210131331364753,
            18149643915985481100,
            12933668939759105464,
        ],
        "vendor/rand's xoshiro256++ stream changed; \
         every seeded dataset and search in the workspace just shifted"
    );
}

#[test]
fn uniform_floats_are_frozen() {
    let mut rng = StdRng::seed_from_u64(42);
    let values: Vec<f64> = (0..4).map(|_| rng.gen_range(0.0..1.0)).collect();
    let expected = [
        0.8143051451229099,
        0.3188210400616611,
        0.9838941681774888,
        0.7011355981347556,
    ];
    for (v, e) in values.iter().zip(expected) {
        assert_eq!(*v, e, "gen_range float mapping changed");
    }
}

#[test]
fn nslkdd_generator_fingerprint() {
    let ds = NslKddGenerator::new(42).generate(100);
    let row0: Vec<f32> = ds.features().row(0).to_vec();
    let expected = [
        1.5610657f32,
        0.16666462,
        0.46970788,
        0.07237374,
        2.3346148,
        0.8884795,
        3.5394647,
    ];
    assert_eq!(row0.len(), expected.len());
    for (v, e) in row0.iter().zip(expected) {
        assert_eq!(*v, e, "NslKddGenerator(42) first row drifted");
    }
    assert_eq!(&ds.labels()[..10], &[1, 1, 0, 0, 0, 0, 0, 0, 1, 1]);
}

/// A handcrafted trained DNN IR (rational weights, ReLU — no libm
/// anywhere on the path, only IEEE-exact +,*,/,sqrt and integer ops).
fn handcrafted_dnn_ir() -> ModelIr {
    let arch = MlpArchitecture::new(7, vec![8], 2);
    let dims = arch.layer_dims();
    let params: Vec<LayerParams> = dims
        .iter()
        .enumerate()
        .map(|(layer, &(input, output))| LayerParams {
            weights: Matrix::from_fn(input, output, |r, c| {
                ((layer * 59 + r * 31 + c * 17) % 23) as f32 / 23.0 - 0.5
            }),
            bias: (0..output)
                .map(|j| ((layer * 13 + j * 7) % 11) as f32 / 11.0 - 0.5)
                .collect(),
        })
        .collect();
    ModelIr::Dnn(DnnIr {
        arch,
        params: Some(params),
    })
}

/// A handcrafted binary SVM IR with rational weights over the 7 NSL-KDD
/// features.
fn handcrafted_svm_ir() -> ModelIr {
    ModelIr::Svm(SvmIr {
        n_features: 7,
        n_classes: 2,
        planes: Some((
            vec![(0..7).map(|c| (c as f32 - 3.0) / 4.0).collect()],
            vec![0.25],
        )),
    })
}

#[test]
fn compiled_pipeline_classification_fingerprint() {
    // Lower the handcrafted DNN and classify the frozen NSL-KDD-like
    // stream. The verdict sequence is part of the workspace's contract: a
    // change here means the compiled integer path itself shifted.
    let ds = NslKddGenerator::new(42).generate(200);
    let norm = ds.fit_normalizer();
    let nds = ds.normalized(&norm).unwrap();
    let pipeline = handcrafted_dnn_ir()
        .compile(FixedPoint::taurus_default())
        .unwrap();

    let mut scratch = Scratch::new();
    let verdicts: Vec<usize> = (0..32)
        .map(|i| pipeline.classify(nds.features().row(i), &mut scratch))
        .collect();
    let expected = [
        0usize, 1, 1, 1, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 1, 1, 1, 1, 0, 1,
        1, 1, 1,
    ];
    assert_eq!(
        verdicts,
        expected.to_vec(),
        "compiled integer classification drifted on the frozen stream"
    );
    // Checksum over the whole stream pins the tail too.
    let checksum: usize = (0..nds.len())
        .map(|i| pipeline.classify(nds.features().row(i), &mut scratch) * (i + 1))
        .sum();
    assert_eq!(checksum, 17_777, "compiled verdict checksum drifted");
}

#[test]
fn served_multi_tenant_verdicts_fingerprint() {
    // Two handcrafted tenants serve the frozen normalized stream over a
    // 3-worker pool at 7-row dispatch granularity. Because the serving
    // layer writes into pre-assigned slots, the interleaved per-tenant
    // verdict sequence is bit-wise deterministic no matter how the
    // workers get scheduled — this pins it so dispatch-order
    // nondeterminism can never silently leak into results.
    let ds = NslKddGenerator::new(42).generate(200);
    let norm = ds.fit_normalizer();
    let nds = ds.normalized(&norm).unwrap();
    let format = FixedPoint::taurus_default();

    let mut server = PipelineServer::new();
    let dnn = server
        .register_model("dnn_app", &handcrafted_dnn_ir(), format, None)
        .unwrap();
    let svm = server
        .register_model("svm_app", &handcrafted_svm_ir(), format, None)
        .unwrap();

    let batches = [
        TenantBatch::new(dnn, nds.features().clone()),
        TenantBatch::new(svm, nds.features().clone()),
    ];
    for (workers, chunk) in [(1, 0), (3, 7), (8, 1)] {
        // The deprecated shim stays golden-pinned: bit-identical to the
        // persistent path for as long as it exists.
        #[allow(deprecated)]
        let output = server
            .serve(
                &batches,
                &ServeOptions::default().workers(workers).chunk_rows(chunk),
            )
            .unwrap();
        let expected_dnn = [
            0usize, 1, 1, 1, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 1, 1, 1, 1,
            0, 1, 1, 1, 1,
        ];
        let expected_svm = [
            1usize, 1, 0, 1, 0, 1, 0, 1, 1, 0, 0, 1, 1, 0, 1, 0, 0, 1, 1, 0, 1, 1, 0, 1, 1, 1, 1,
            0, 1, 1, 0, 0,
        ];
        assert_eq!(
            &output.verdicts()[0][..32],
            &expected_dnn,
            "workers={workers} chunk={chunk}: dnn tenant verdicts drifted"
        );
        assert_eq!(
            &output.verdicts()[1][..32],
            &expected_svm,
            "workers={workers} chunk={chunk}: svm tenant verdicts drifted"
        );
        // Position-weighted checksum over the full interleaved output
        // pins the tails of both tenants.
        let checksum: usize = output
            .verdicts()
            .iter()
            .enumerate()
            .map(|(batch, verdicts)| {
                verdicts
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| v * (i + 1) * (batch * 2 + 1))
                    .sum::<usize>()
            })
            .sum();
        assert_eq!(checksum, 50_483, "served verdict checksum drifted");
        // Stats are deterministic too (timing aside).
        assert_eq!(output.stats()[0].packets, 200);
        assert_eq!(output.stats()[1].packets, 200);
        assert_eq!(output.total_packets, 400);
    }
}

#[test]
fn deployed_verdicts_fingerprint_matches_call_at_a_time_path() {
    // The persistent Deployment must be bit-identical to the
    // call-at-a-time `PipelineServer::serve` path for the same tenant
    // batches under any worker count: same handcrafted tenants, same
    // frozen stream, same pinned checksum (50_483, the PR-3 golden
    // value). A drift here means the resident-worker redesign leaked
    // scheduling nondeterminism into results.
    let ds = NslKddGenerator::new(42).generate(200);
    let norm = ds.fit_normalizer();
    let nds = ds.normalized(&norm).unwrap();
    let format = FixedPoint::taurus_default();

    let mut server = PipelineServer::new();
    let dnn = server
        .register_model("dnn_app", &handcrafted_dnn_ir(), format, None)
        .unwrap();
    let svm = server
        .register_model("svm_app", &handcrafted_svm_ir(), format, None)
        .unwrap();
    #[allow(deprecated)]
    let reference = server
        .serve(
            &[
                TenantBatch::new(dnn, nds.features().clone()),
                TenantBatch::new(svm, nds.features().clone()),
            ],
            &ServeOptions::default(),
        )
        .unwrap();

    // Sweep worker counts AND ring-ingress shapes: a 4-slot worker ring
    // with an 8-chunk slab forces constant descriptor recycling and
    // submit-side backoff, which must never leak into verdict bytes.
    for (workers, ring_capacity, chunk_slots) in [
        (1, 64, 4096),
        (2, 64, 4096),
        (4, 64, 4096),
        (2, 4, 8),
        (4, 4, 8),
    ] {
        let deployment = Deployment::builder()
            .workers(workers)
            .chunk_rows(7)
            .ring_capacity(ring_capacity)
            .chunk_slots(chunk_slots)
            .build();
        let dnn = deployment
            .add_model("dnn_app", &handcrafted_dnn_ir(), format, None)
            .unwrap();
        let svm = deployment
            .add_model("svm_app", &handcrafted_svm_ir(), format, None)
            .unwrap();
        let tickets = [
            deployment
                .submit(TenantBatch::new(dnn, nds.features().clone()))
                .unwrap(),
            deployment
                .submit(TenantBatch::new(svm, nds.features().clone()))
                .unwrap(),
        ];
        let deployed: Vec<Vec<usize>> = tickets
            .into_iter()
            .map(|ticket| ticket.wait().into_vec())
            .collect();
        assert_eq!(
            deployed,
            reference.verdicts(),
            "workers={workers} ring={ring_capacity} slots={chunk_slots}: deployed verdicts diverged"
        );
        let checksum: usize = deployed
            .iter()
            .enumerate()
            .map(|(batch, verdicts)| {
                verdicts
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| v * (i + 1) * (batch * 2 + 1))
                    .sum::<usize>()
            })
            .sum();
        assert_eq!(checksum, 50_483, "deployed verdict checksum drifted");
        let snapshot = deployment.stats_snapshot();
        assert_eq!(snapshot.tenants[0].packets, 200);
        assert_eq!(snapshot.tenants[1].packets, 200);
        assert_eq!(snapshot.total_packets(), 400);
        deployment.shutdown();
    }
}

#[test]
fn packed_and_scalar_tiers_pin_the_same_golden_checksums() {
    // The default compile() lowers Q3.12 parameters onto packed i16
    // storage; `from_ir_scalar` keeps the i32 reference tier. Both must
    // reproduce the pinned verdict checksum (17_777 per-pipeline, and
    // 50_483 through the serving layer above) — the packed hot path is a
    // storage/instruction change, never a semantic one.
    use homunculus::ml::quantize::PackedWidth;
    use homunculus::runtime::CompiledPipeline;

    let ds = NslKddGenerator::new(42).generate(200);
    let norm = ds.fit_normalizer();
    let nds = ds.normalized(&norm).unwrap();
    let format = FixedPoint::taurus_default();

    let packed = handcrafted_dnn_ir().compile(format).unwrap();
    assert_eq!(
        packed.packed_width(),
        Some(PackedWidth::I16),
        "Q3.12 must lower onto the packed i16 tier by default"
    );
    let scalar = CompiledPipeline::from_ir_scalar(&handcrafted_dnn_ir(), format).unwrap();
    assert_eq!(scalar.packed_width(), None);

    let mut scratch = Scratch::new();
    for pipeline in [&packed, &scalar] {
        let checksum: usize = (0..nds.len())
            .map(|i| pipeline.classify(nds.features().row(i), &mut scratch) * (i + 1))
            .sum();
        assert_eq!(checksum, 17_777, "verdict checksum drifted on one tier");
    }
    // The batch (structure-of-arrays) path agrees with per-row classify
    // verdict-for-verdict on both tiers.
    let per_row: Vec<usize> = (0..nds.len())
        .map(|i| packed.classify(nds.features().row(i), &mut scratch))
        .collect();
    assert_eq!(packed.classify_batch(nds.features(), 4), per_row);
    assert_eq!(scalar.classify_batch(nds.features(), 4), per_row);
}

#[test]
fn design_space_sampling_fingerprint() {
    let mut space = DesignSpace::new("golden");
    space.add("x", Parameter::real(-1.0, 1.0)).unwrap();
    space.add("n", Parameter::integer(0, 100)).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let config = space.sample(&mut rng);
    assert_eq!(config.real("x"), Some(-0.8892791270433338));
    assert_eq!(config.integer("n"), Some(17));
}

//! Cross-run determinism, pinned to golden values.
//!
//! `tests/determinism.rs` proves two runs *in the same process* agree;
//! these tests pin the actual values, so a rebuild on another machine — or
//! an accidental change to the vendored PRNG (`vendor/rand`, a frozen
//! xoshiro256++ whose stream is part of this workspace's contract) — fails
//! loudly instead of silently shifting every seeded experiment.

use homunculus::backends::model::{DnnIr, LayerParams, ModelIr};
use homunculus::datasets::nslkdd::NslKddGenerator;
use homunculus::ml::mlp::MlpArchitecture;
use homunculus::ml::quantize::FixedPoint;
use homunculus::ml::tensor::Matrix;
use homunculus::optimizer::space::{DesignSpace, Parameter};
use homunculus::runtime::{Compile, Scratch};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

#[test]
fn stdrng_stream_is_frozen() {
    let mut rng = StdRng::seed_from_u64(42);
    let words: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
    assert_eq!(
        words,
        [
            15021278609987233951,
            5881210131331364753,
            18149643915985481100,
            12933668939759105464,
        ],
        "vendor/rand's xoshiro256++ stream changed; \
         every seeded dataset and search in the workspace just shifted"
    );
}

#[test]
fn uniform_floats_are_frozen() {
    let mut rng = StdRng::seed_from_u64(42);
    let values: Vec<f64> = (0..4).map(|_| rng.gen_range(0.0..1.0)).collect();
    let expected = [
        0.8143051451229099,
        0.3188210400616611,
        0.9838941681774888,
        0.7011355981347556,
    ];
    for (v, e) in values.iter().zip(expected) {
        assert_eq!(*v, e, "gen_range float mapping changed");
    }
}

#[test]
fn nslkdd_generator_fingerprint() {
    let ds = NslKddGenerator::new(42).generate(100);
    let row0: Vec<f32> = ds.features().row(0).to_vec();
    let expected = [
        1.5610657f32,
        0.16666462,
        0.46970788,
        0.07237374,
        2.3346148,
        0.8884795,
        3.5394647,
    ];
    assert_eq!(row0.len(), expected.len());
    for (v, e) in row0.iter().zip(expected) {
        assert_eq!(*v, e, "NslKddGenerator(42) first row drifted");
    }
    assert_eq!(&ds.labels()[..10], &[1, 1, 0, 0, 0, 0, 0, 0, 1, 1]);
}

#[test]
fn compiled_pipeline_classification_fingerprint() {
    // Lower a handcrafted DNN (rational weights, ReLU — no libm anywhere
    // on the path, only IEEE-exact +,*,/,sqrt and integer ops) and
    // classify the frozen NSL-KDD-like stream. The verdict sequence is
    // part of the workspace's contract: a change here means the compiled
    // integer path itself shifted.
    let ds = NslKddGenerator::new(42).generate(200);
    let norm = ds.fit_normalizer();
    let nds = ds.normalized(&norm).unwrap();
    let arch = MlpArchitecture::new(7, vec![8], 2);
    let dims = arch.layer_dims();
    let params: Vec<LayerParams> = dims
        .iter()
        .enumerate()
        .map(|(layer, &(input, output))| LayerParams {
            weights: Matrix::from_fn(input, output, |r, c| {
                ((layer * 59 + r * 31 + c * 17) % 23) as f32 / 23.0 - 0.5
            }),
            bias: (0..output)
                .map(|j| ((layer * 13 + j * 7) % 11) as f32 / 11.0 - 0.5)
                .collect(),
        })
        .collect();
    let ir = ModelIr::Dnn(DnnIr {
        arch,
        params: Some(params),
    });
    let pipeline = ir.compile(FixedPoint::taurus_default()).unwrap();

    let mut scratch = Scratch::new();
    let verdicts: Vec<usize> = (0..32)
        .map(|i| pipeline.classify(nds.features().row(i), &mut scratch))
        .collect();
    let expected = [
        0usize, 1, 1, 1, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 1, 1, 1, 1, 0, 1,
        1, 1, 1,
    ];
    assert_eq!(
        verdicts,
        expected.to_vec(),
        "compiled integer classification drifted on the frozen stream"
    );
    // Checksum over the whole stream pins the tail too.
    let checksum: usize = (0..nds.len())
        .map(|i| pipeline.classify(nds.features().row(i), &mut scratch) * (i + 1))
        .sum();
    assert_eq!(checksum, 17_777, "compiled verdict checksum drifted");
}

#[test]
fn design_space_sampling_fingerprint() {
    let mut space = DesignSpace::new("golden");
    space.add("x", Parameter::real(-1.0, 1.0)).unwrap();
    space.add("n", Parameter::integer(0, 100)).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let config = space.sample(&mut rng);
    assert_eq!(config.real("x"), Some(-0.8892791270433338));
    assert_eq!(config.integer("n"), Some(17));
}

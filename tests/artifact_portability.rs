//! Portable compile artifacts: save → load → serve, bit-identically.
//!
//! The session redesign's "compile once, serve forever" contract: a
//! [`CompiledArtifact`] written with `save_json` and reloaded with
//! `load_json` must drive `build_deployment` with **bit-identical
//! verdicts** to the in-process artifact, under any worker count. The
//! golden half pins the same contract on the frozen handcrafted tenants:
//! their IRs round-trip through the `ModelIr` JSON form and must still
//! reproduce the serving checksum `50_483` pinned since PR 3.

use homunculus::backends::model::{DnnIr, LayerParams, ModelIr, SvmIr};
use homunculus::core::alchemy::{Algorithm, Metric, ModelSpec, Platform};
use homunculus::core::pipeline::{CompiledArtifact, CompilerOptions};
use homunculus::core::session::Compiler;
use homunculus::datasets::nslkdd::NslKddGenerator;
use homunculus::ml::mlp::MlpArchitecture;
use homunculus::ml::quantize::FixedPoint;
use homunculus::ml::tensor::Matrix;
use homunculus::runtime::{Deployment, TenantBatch};
use serde_json::ToJson;

/// A deterministic small AD compile (same knobs as the core tests).
fn compile_ad() -> CompiledArtifact {
    let spec = ModelSpec::builder("anomaly_detection")
        .optimization_metric(Metric::F1)
        .algorithm(Algorithm::Dnn)
        .data(NslKddGenerator::new(1).generate(700))
        .build()
        .unwrap();
    let mut platform = Platform::taurus();
    platform
        .constraints_mut()
        .throughput_gpps(1.0)
        .latency_ns(500.0)
        .grid(16, 16);
    platform.schedule(spec).unwrap();
    let options = CompilerOptions {
        bo_budget: 6,
        doe_samples: 3,
        train_epochs: 10,
        final_epochs: 20,
        sample_cap: Some(500),
        parallel: true,
        seed: 0,
        time_budget: None,
    };
    Compiler::new(options)
        .open(&platform)
        .unwrap()
        .compile()
        .unwrap()
}

/// Serves the frozen NSL-KDD stream through a deployment built from
/// `artifact` with `workers` resident threads; returns per-tenant
/// verdicts in schedule order.
fn serve_frozen_stream(artifact: &CompiledArtifact, workers: usize) -> Vec<Vec<usize>> {
    let stream = NslKddGenerator::new(42).generate(200);
    let deployment = artifact
        .build_deployment(Deployment::builder().workers(workers).chunk_rows(7))
        .unwrap();
    let tickets: Vec<_> = artifact
        .reports()
        .iter()
        .map(|report| {
            let tenant = deployment.tenant_id(&report.name).unwrap();
            deployment
                .submit(TenantBatch::new(tenant, stream.features().clone()))
                .unwrap()
        })
        .collect();
    let verdicts = tickets
        .into_iter()
        .map(|ticket| ticket.wait().into_vec())
        .collect();
    deployment.shutdown();
    verdicts
}

#[test]
fn saved_artifact_reloads_and_serves_bit_identically() {
    let artifact = compile_ad();
    let path = std::env::temp_dir().join("homunculus_portability_test.artifact.json");
    artifact.save_json(&path).unwrap();
    let reloaded = CompiledArtifact::load_json(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // The decoded state is equal field by field...
    assert_eq!(reloaded.best().ir, artifact.best().ir);
    assert_eq!(reloaded.best().normalizer, artifact.best().normalizer);
    assert_eq!(reloaded.best().objective, artifact.best().objective);
    assert_eq!(reloaded.best().history, artifact.best().history);
    assert_eq!(reloaded.code(), artifact.code());

    // ...and the serving behaviour is bit-identical across pool shapes.
    for workers in [1, 2, 4] {
        assert_eq!(
            serve_frozen_stream(&artifact, workers),
            serve_frozen_stream(&reloaded, workers),
            "workers={workers}: reloaded artifact diverged from the in-process one"
        );
    }
}

#[test]
fn double_roundtrip_is_stable() {
    // JSON -> artifact -> JSON must be a fixed point: no drift on
    // repeated save/load cycles (floats print in shortest
    // round-trippable form, so the second encode is byte-identical).
    let artifact = compile_ad();
    let once = artifact.to_json_string().unwrap();
    let twice = CompiledArtifact::from_json_str(&once)
        .unwrap()
        .to_json_string()
        .unwrap();
    assert_eq!(
        once, twice,
        "artifact JSON is not a serialization fixed point"
    );
}

/// The handcrafted trained DNN IR from `golden_determinism.rs` (rational
/// weights, ReLU — no libm anywhere on the path).
fn handcrafted_dnn_ir() -> ModelIr {
    let arch = MlpArchitecture::new(7, vec![8], 2);
    let dims = arch.layer_dims();
    let params: Vec<LayerParams> = dims
        .iter()
        .enumerate()
        .map(|(layer, &(input, output))| LayerParams {
            weights: Matrix::from_fn(input, output, |r, c| {
                ((layer * 59 + r * 31 + c * 17) % 23) as f32 / 23.0 - 0.5
            }),
            bias: (0..output)
                .map(|j| ((layer * 13 + j * 7) % 11) as f32 / 11.0 - 0.5)
                .collect(),
        })
        .collect();
    ModelIr::Dnn(DnnIr {
        arch,
        params: Some(params),
    })
}

/// The handcrafted binary SVM IR from `golden_determinism.rs`.
fn handcrafted_svm_ir() -> ModelIr {
    ModelIr::Svm(SvmIr {
        n_features: 7,
        n_classes: 2,
        planes: Some((
            vec![(0..7).map(|c| (c as f32 - 3.0) / 4.0).collect()],
            vec![0.25],
        )),
    })
}

#[test]
fn golden_serving_checksum_survives_ir_json_roundtrip() {
    // The PR-3 golden: two handcrafted tenants over the frozen stream,
    // position-weighted checksum 50_483. Here both IRs take a detour
    // through their portable JSON form before deployment — the checksum
    // must not move by a single bit, under 1/2/4 workers.
    let ds = NslKddGenerator::new(42).generate(200);
    let norm = ds.fit_normalizer();
    let nds = ds.normalized(&norm).unwrap();
    let format = FixedPoint::taurus_default();

    let roundtrip = |ir: &ModelIr| -> ModelIr {
        let text = serde_json::to_string(&ir.to_json()).unwrap();
        ModelIr::from_json(&serde_json::from_str(&text).unwrap()).unwrap()
    };
    let dnn_ir = roundtrip(&handcrafted_dnn_ir());
    let svm_ir = roundtrip(&handcrafted_svm_ir());
    assert_eq!(dnn_ir, handcrafted_dnn_ir(), "dnn IR drifted through JSON");
    assert_eq!(svm_ir, handcrafted_svm_ir(), "svm IR drifted through JSON");

    for workers in [1, 2, 4] {
        let deployment = Deployment::builder().workers(workers).chunk_rows(7).build();
        let dnn = deployment
            .add_model("dnn_app", &dnn_ir, format, None)
            .unwrap();
        let svm = deployment
            .add_model("svm_app", &svm_ir, format, None)
            .unwrap();
        let tickets = [
            deployment
                .submit(TenantBatch::new(dnn, nds.features().clone()))
                .unwrap(),
            deployment
                .submit(TenantBatch::new(svm, nds.features().clone()))
                .unwrap(),
        ];
        let verdicts: Vec<Vec<usize>> = tickets
            .into_iter()
            .map(|ticket| ticket.wait().into_vec())
            .collect();
        let checksum: usize = verdicts
            .iter()
            .enumerate()
            .map(|(batch, verdicts)| {
                verdicts
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| v * (i + 1) * (batch * 2 + 1))
                    .sum::<usize>()
            })
            .sum();
        assert_eq!(
            checksum, 50_483,
            "workers={workers}: golden serving checksum drifted through the IR JSON roundtrip"
        );
        deployment.shutdown();
    }
}

#[test]
fn partial_artifact_roundtrips_with_its_flag() {
    // A cancelled session's partial artifact persists as partial and
    // still serves after reload.
    let spec = ModelSpec::builder("ad")
        .optimization_metric(Metric::F1)
        .algorithm(Algorithm::Dnn)
        .data(NslKddGenerator::new(1).generate(500))
        .build()
        .unwrap();
    let mut platform = Platform::taurus();
    platform
        .constraints_mut()
        .throughput_gpps(1.0)
        .latency_ns(500.0)
        .grid(16, 16);
    platform.schedule(spec).unwrap();
    let compiler = Compiler::new(CompilerOptions {
        bo_budget: 6,
        doe_samples: 3,
        train_epochs: 8,
        final_epochs: 12,
        sample_cap: Some(400),
        parallel: true,
        seed: 0,
        time_budget: None,
    });
    compiler.cancel_token().cancel();
    let artifact = compiler.open(&platform).unwrap().compile().unwrap();
    assert!(artifact.is_partial());

    let reloaded = CompiledArtifact::from_json_str(&artifact.to_json_string().unwrap()).unwrap();
    assert!(reloaded.is_partial(), "partial flag lost in the JSON form");
    assert_eq!(
        serve_frozen_stream(&artifact, 2),
        serve_frozen_stream(&reloaded, 2)
    );
}

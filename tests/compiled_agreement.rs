//! Float ↔ fixed agreement: the compiled integer pipeline must reproduce
//! the float reference model's argmax within the tolerance derived from
//! the fixed-point format's `max_error`, for every model family.
//!
//! The disagreement criterion is per family:
//! - score-shaped models (DNN, SVM, KMeans): predictions must match
//!   unless the float decision margin is inside
//!   `CompiledPipeline::score_tolerance` (twice it, since two scores can
//!   each drift by the bound);
//! - decision trees: predictions must match exactly whenever every
//!   visited split has a margin wider than the quantization step.

use homunculus::backends::model::{DnnIr, KMeansIr, ModelIr, SvmIr, TreeIr, TreeNodeIr};
use homunculus::ml::kmeans::{KMeans, KMeansConfig};
use homunculus::ml::mlp::{Activation, Mlp, MlpArchitecture, TrainConfig};
use homunculus::ml::quantize::FixedPoint;
use homunculus::ml::svm::{LinearSvm, SvmConfig};
use homunculus::ml::tensor::{argmax, Matrix};
use homunculus::ml::tree::{DecisionTreeClassifier, TreeConfig};
use homunculus::runtime::{Compile, Scratch};
use proptest::prelude::*;

fn q() -> FixedPoint {
    FixedPoint::taurus_default()
}

/// Deterministic pseudo-random feature in `[-bound, bound]`.
fn feature(seed: u64, row: usize, col: usize, bound: f32) -> f32 {
    let mix = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add((row * 31 + col * 7 + 1) as u64)
        .wrapping_mul(0xD1B54A32D192ED03);
    ((mix >> 33) as f32 / (u32::MAX >> 1) as f32 - 1.0) * bound
}

/// Margin between the best and second-best score.
fn margin(scores: &[f32]) -> f32 {
    let mut best = f32::NEG_INFINITY;
    let mut second = f32::NEG_INFINITY;
    for &s in scores {
        if s > best {
            second = best;
            best = s;
        } else if s > second {
            second = s;
        }
    }
    best - second
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_dnn_argmax_agrees_within_tolerance(
        seed in 0u64..500,
        hidden in 2usize..10,
        activation_pick in 0usize..4,
    ) {
        let activation = [
            Activation::Relu,
            Activation::Linear,
            Activation::Sigmoid,
            Activation::Tanh,
        ][activation_pick];
        let arch = MlpArchitecture::new(4, vec![hidden], 3).with_activation(activation);
        let net = Mlp::new(&arch, seed).unwrap();
        let pipeline = ModelIr::Dnn(DnnIr::from_mlp(&net)).compile(q()).unwrap();
        let tol = pipeline.score_tolerance(2.0).unwrap();
        let mut scratch = Scratch::new();
        for row in 0..16 {
            let features: Vec<f32> = (0..4).map(|c| feature(seed, row, c, 2.0)).collect();
            let float = net.logits_row(&features).unwrap();
            let fixed = pipeline.classify(&features, &mut scratch);
            if argmax(&float) != fixed {
                prop_assert!(
                    margin(&float) <= 2.0 * tol,
                    "{activation:?}: argmax flipped with margin {} > 2*tol {}",
                    margin(&float),
                    2.0 * tol
                );
            }
        }
    }

    #[test]
    fn prop_svm_argmax_agrees_within_tolerance(
        seed in 0u64..500,
        n_classes in 2usize..5,
    ) {
        // Train a quick SVM on separable synthetic clusters.
        let n = 30 * n_classes;
        let x = Matrix::from_fn(n, 3, |r, c| {
            (r % n_classes) as f32 * 2.0 - 2.0 + feature(seed, r, c, 0.4)
        });
        let y: Vec<usize> = (0..n).map(|r| r % n_classes).collect();
        let svm = LinearSvm::fit(&x, &y, n_classes, &SvmConfig::default().epochs(15).seed(seed)).unwrap();
        let pipeline = ModelIr::Svm(SvmIr::from_svm(&svm)).compile(q()).unwrap();
        let tol = pipeline.score_tolerance(4.0).unwrap();
        let mut scratch = Scratch::new();
        for row in 0..16 {
            let features: Vec<f32> = (0..3).map(|c| feature(seed ^ 0xABCD, row, c, 3.0)).collect();
            let float_pred = svm.predict_row(&features).unwrap();
            let fixed_pred = pipeline.classify(&features, &mut scratch);
            if float_pred != fixed_pred {
                let scores = svm.decision_row(&features).unwrap();
                let m = if n_classes == 2 { scores[0].abs() } else { margin(&scores) };
                prop_assert!(m <= 2.0 * tol, "flipped with margin {m} > 2*tol {}", 2.0 * tol);
            }
        }
    }

    #[test]
    fn prop_kmeans_argmin_agrees_within_tolerance(
        seed in 0u64..500,
        k in 2usize..6,
    ) {
        let n = 20 * k;
        let x = Matrix::from_fn(n, 2, |r, c| {
            (r % k) as f32 * 1.5 - 3.0 + feature(seed, r, c, 0.3)
        });
        let model = KMeans::fit(&x, &KMeansConfig::new(k).seed(seed)).unwrap();
        let pipeline = ModelIr::KMeans(KMeansIr::from_kmeans(&model, 2)).compile(q()).unwrap();
        let tol = pipeline.score_tolerance(4.0).unwrap();
        let mut scratch = Scratch::new();
        for row in 0..16 {
            let features: Vec<f32> = (0..2).map(|c| feature(seed ^ 0x5A5A, row, c, 3.5)).collect();
            let float_pred = model.predict_row(&features);
            let fixed_pred = pipeline.classify(&features, &mut scratch);
            if float_pred != fixed_pred {
                // Distances (negated = scores); flip only legal inside band.
                let scores: Vec<f32> = model
                    .centroids()
                    .iter()
                    .map(|c| {
                        -features
                            .iter()
                            .zip(c)
                            .map(|(a, b)| (a - b) * (a - b))
                            .sum::<f32>()
                    })
                    .collect();
                let m = margin(&scores);
                prop_assert!(m <= 2.0 * tol, "flipped with margin {m} > 2*tol {}", 2.0 * tol);
            }
        }
    }

    #[test]
    fn prop_tree_agrees_when_split_margins_are_wide(
        seed in 0u64..500,
        depth in 1usize..6,
    ) {
        let x = Matrix::from_fn(60, 3, |r, c| feature(seed, r, c, 3.0));
        let y: Vec<usize> = (0..60).map(|r| usize::from(feature(seed, r, 0, 3.0) > 0.0)).collect();
        let tree = DecisionTreeClassifier::fit(
            &x,
            &y,
            2,
            &TreeConfig::default().max_depth(depth).seed(seed),
        )
        .unwrap();
        let ir = TreeIr::from_tree(&tree);
        let pipeline = ModelIr::Tree(ir.clone()).compile(q()).unwrap();
        let nodes = ir.nodes.as_ref().unwrap();
        // Disagreement is only legal when some visited split sits within
        // the quantization band of the feature value.
        let band = 2.0 * q().max_error();
        let mut scratch = Scratch::new();
        for row in 0..16 {
            let features: Vec<f32> = (0..3).map(|c| feature(seed ^ 0xF00D, row, c, 3.0)).collect();
            // Walk the float tree, tracking the tightest split margin.
            let mut index = 0usize;
            let mut tightest = f32::INFINITY;
            let float_pred = loop {
                match nodes[index] {
                    TreeNodeIr::Leaf { class } => break class,
                    TreeNodeIr::Split { feature, threshold, left, right } => {
                        tightest = tightest.min((features[feature] - threshold).abs());
                        index = if features[feature] <= threshold { left } else { right };
                    }
                }
            };
            let fixed_pred = pipeline.classify(&features, &mut scratch);
            if tightest > band {
                prop_assert_eq!(
                    float_pred,
                    fixed_pred,
                    "tree flipped with tightest split margin {} > band {}",
                    tightest,
                    band
                );
            }
        }
    }
}

#[test]
fn trained_ad_model_agreement_is_high() {
    // End-to-end statistical check: a trained binary classifier's
    // compiled twin agrees on almost every held-out row.
    let x = Matrix::from_fn(400, 7, |r, c| feature(11, r, c, 1.5));
    let y: Vec<usize> = (0..400)
        .map(|r| usize::from(feature(11, r, 0, 1.5) + 0.5 * feature(11, r, 3, 1.5) > 0.0))
        .collect();
    let arch = MlpArchitecture::new(7, vec![16, 8], 2);
    let mut net = Mlp::new(&arch, 3).unwrap();
    net.train(&x, &y, &TrainConfig::default().epochs(40))
        .unwrap();
    let pipeline = ModelIr::Dnn(DnnIr::from_mlp(&net)).compile(q()).unwrap();

    let float = net.predict(&x).unwrap();
    let fixed = homunculus::runtime::classify_rows(&pipeline, &x);
    let agree = float.iter().zip(&fixed).filter(|(a, b)| a == b).count();
    assert!(
        agree as f64 / x.rows() as f64 > 0.99,
        "compiled deployment flipped {}/{} decisions",
        x.rows() - agree,
        x.rows()
    );
}

//! Portable session checkpoints: save → load → resume, bit-identically.
//!
//! The compile-as-a-service contract: a [`Searched`] stage persisted as a
//! `homunculus.checkpoint/v1` document (JSON or the compact `HJB1` binary
//! form) and resumed by a **fresh** [`Compiler`] in this process must
//! finish the compile bit-identically to the run that was never
//! interrupted — same winner, same artifact bytes, same served verdicts on
//! the frozen stream. Corrupted or foreign checkpoints must fail with the
//! typed [`CoreError::Checkpoint`] error, never a panic. The golden half
//! pins the PR-3 serving checksum `50_483` through the binary wire format.

use homunculus::backends::model::{DnnIr, LayerParams, ModelIr, SvmIr};
use homunculus::core::alchemy::{Algorithm, Metric, ModelSpec, Platform};
use homunculus::core::pipeline::{CompiledArtifact, CompilerOptions};
use homunculus::core::session::{CompileEvent, Compiler};
use homunculus::core::CoreError;
use homunculus::datasets::nslkdd::NslKddGenerator;
use homunculus::ml::mlp::MlpArchitecture;
use homunculus::ml::quantize::FixedPoint;
use homunculus::ml::tensor::Matrix;
use homunculus::runtime::{Deployment, TenantBatch};
use serde_json::ToJson;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The two-model schedule (`ad_a >> ad_b`) used throughout: small enough
/// to search in test time, big enough to exercise the model-level fan-out.
fn two_model_platform() -> Platform {
    let a = ModelSpec::builder("ad_a")
        .optimization_metric(Metric::F1)
        .algorithm(Algorithm::Dnn)
        .data(NslKddGenerator::new(1).generate(500))
        .build()
        .unwrap();
    let b = ModelSpec::builder("ad_b")
        .optimization_metric(Metric::F1)
        .algorithm(Algorithm::Dnn)
        .data(NslKddGenerator::new(2).generate(500))
        .build()
        .unwrap();
    let mut platform = Platform::taurus();
    platform
        .constraints_mut()
        .throughput_gpps(1.0)
        .latency_ns(500.0)
        .grid(16, 16);
    platform.schedule(a >> b).unwrap();
    platform
}

fn tiny_options() -> CompilerOptions {
    CompilerOptions {
        bo_budget: 6,
        doe_samples: 3,
        train_epochs: 8,
        final_epochs: 12,
        sample_cap: Some(400),
        parallel: true,
        seed: 0,
        time_budget: None,
    }
}

/// Serves the frozen NSL-KDD stream through a deployment built from
/// `artifact`; returns per-tenant verdicts in schedule order.
fn serve_frozen_stream(artifact: &CompiledArtifact, workers: usize) -> Vec<Vec<usize>> {
    let stream = NslKddGenerator::new(42).generate(200);
    let deployment = artifact
        .build_deployment(Deployment::builder().workers(workers).chunk_rows(7))
        .unwrap();
    let tickets: Vec<_> = artifact
        .reports()
        .iter()
        .map(|report| {
            let tenant = deployment.tenant_id(&report.name).unwrap();
            deployment
                .submit(TenantBatch::new(tenant, stream.features().clone()))
                .unwrap()
        })
        .collect();
    let verdicts = tickets
        .into_iter()
        .map(|ticket| ticket.wait().into_vec())
        .collect();
    deployment.shutdown();
    verdicts
}

/// Runs an interrupted search (cancel after `cancel_after` BO
/// evaluations) and returns the checkpoint file it wrote.
fn interrupted_checkpoint(platform: &Platform, binary: bool, stem: &str) -> std::path::PathBuf {
    let compiler = Compiler::new(tiny_options());
    let token = compiler.cancel_token();
    let seen = Arc::new(AtomicUsize::new(0));
    let observer = {
        let seen = seen.clone();
        move |event: &CompileEvent| {
            if matches!(event, CompileEvent::CandidateEvaluated { .. })
                && seen.fetch_add(1, Ordering::Relaxed) + 1 >= 2
            {
                token.cancel();
            }
        }
    };
    let truncated = compiler
        .observe(Arc::new(observer))
        .open(platform)
        .unwrap()
        .search()
        .unwrap();
    let ext = if binary { "bin" } else { "json" };
    let path = std::env::temp_dir().join(format!("homunculus_{stem}.checkpoint.{ext}"));
    if binary {
        truncated.save_checkpoint_bin(&path).unwrap();
    } else {
        truncated.save_checkpoint(&path).unwrap();
    }
    path
}

#[test]
fn resumed_compile_is_bit_identical_to_uninterrupted() {
    let platform = two_model_platform();

    // Reference: the run that was never interrupted.
    let reference = Compiler::new(tiny_options())
        .open(&platform)
        .unwrap()
        .search()
        .unwrap();
    let reference_checkpoint = reference.checkpoint_json();
    let reference_artifact = reference
        .train()
        .unwrap()
        .check()
        .unwrap()
        .codegen()
        .unwrap();

    // Interrupt, persist, resume in a fresh Compiler — with deliberately
    // different options, which resume must ignore in favour of the
    // checkpoint's own.
    let path = interrupted_checkpoint(&platform, false, "portability_json");
    let resumed = Compiler::new(CompilerOptions::default())
        .resume(&platform, &path)
        .unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(
        resumed.checkpoint_json(),
        reference_checkpoint,
        "resumed search state diverged from the uninterrupted run"
    );
    let resumed_artifact = resumed.train().unwrap().check().unwrap().codegen().unwrap();
    assert_eq!(
        resumed_artifact.to_json_string().unwrap(),
        reference_artifact.to_json_string().unwrap(),
        "artifact compiled through a checkpoint detour diverged"
    );
    // Same winner, and the serving behaviour is bit-identical too.
    assert_eq!(resumed_artifact.best().ir, reference_artifact.best().ir);
    assert_eq!(
        serve_frozen_stream(&resumed_artifact, 2),
        serve_frozen_stream(&reference_artifact, 2),
        "resumed artifact served different verdicts"
    );
}

#[test]
fn binary_checkpoint_resumes_identically_to_json_one() {
    let platform = two_model_platform();
    let json_path = interrupted_checkpoint(&platform, false, "portability_pair_a");
    let bin_path = interrupted_checkpoint(&platform, true, "portability_pair_b");
    let json_bytes = std::fs::metadata(&json_path).unwrap().len();
    let bin_bytes = std::fs::metadata(&bin_path).unwrap().len();
    assert!(
        bin_bytes < json_bytes,
        "binary checkpoint ({bin_bytes} B) must undercut JSON ({json_bytes} B)"
    );

    let from_json = Compiler::new(tiny_options())
        .resume(&platform, &json_path)
        .unwrap();
    let from_bin = Compiler::new(tiny_options())
        .resume(&platform, &bin_path)
        .unwrap();
    std::fs::remove_file(&json_path).ok();
    std::fs::remove_file(&bin_path).ok();
    assert_eq!(
        from_json.checkpoint_json(),
        from_bin.checkpoint_json(),
        "the two checkpoint encodings resumed to different states"
    );
}

#[test]
fn corrupt_and_foreign_checkpoints_fail_typed_without_panicking() {
    let platform = two_model_platform();
    let dir = std::env::temp_dir();

    let expect_checkpoint_error = |bytes: &[u8], label: &str| {
        let path = dir.join(format!("homunculus_bad_checkpoint_{label}"));
        std::fs::write(&path, bytes).unwrap();
        let result = Compiler::new(tiny_options()).resume(&platform, &path);
        std::fs::remove_file(&path).ok();
        match result {
            Err(CoreError::Checkpoint(_)) => {}
            other => panic!(
                "{label}: expected CoreError::Checkpoint, got {:?}",
                other.err()
            ),
        }
    };

    // Garbage bytes: neither valid JSON nor a binary document.
    expect_checkpoint_error(b"\xff\xfe not a checkpoint", "garbage");

    // A real checkpoint with its format version bumped.
    let good_path = interrupted_checkpoint(&platform, false, "portability_tamper");
    let text = std::fs::read_to_string(&good_path).unwrap();
    std::fs::remove_file(&good_path).ok();
    expect_checkpoint_error(
        text.replace("homunculus.checkpoint/v1", "homunculus.checkpoint/v9")
            .as_bytes(),
        "wrong_version",
    );

    // A truncated binary document.
    let bin_path = interrupted_checkpoint(&platform, true, "portability_truncate");
    let bin = std::fs::read(&bin_path).unwrap();
    std::fs::remove_file(&bin_path).ok();
    expect_checkpoint_error(&bin[..bin.len() / 2], "truncated");

    // A checkpoint for a different platform (one model vs two).
    let foreign_spec = ModelSpec::builder("other_app")
        .optimization_metric(Metric::F1)
        .algorithm(Algorithm::Dnn)
        .data(NslKddGenerator::new(3).generate(500))
        .build()
        .unwrap();
    let mut foreign = Platform::taurus();
    foreign
        .constraints_mut()
        .throughput_gpps(1.0)
        .latency_ns(500.0)
        .grid(16, 16);
    foreign.schedule(foreign_spec).unwrap();
    let foreign_path = interrupted_checkpoint(&foreign, false, "portability_foreign");
    let foreign_bytes = std::fs::read(&foreign_path).unwrap();
    std::fs::remove_file(&foreign_path).ok();
    expect_checkpoint_error(&foreign_bytes, "foreign_platform");
}

#[test]
fn binary_artifact_roundtrips_through_build_deployment() {
    let platform = two_model_platform();
    let artifact = Compiler::new(tiny_options())
        .open(&platform)
        .unwrap()
        .compile()
        .unwrap();
    let path = std::env::temp_dir().join("homunculus_portability_test.artifact.bin");
    artifact.save_bin(&path).unwrap();
    let bin_bytes = std::fs::metadata(&path).unwrap().len();
    let json_bytes = artifact.to_json_string().unwrap().len() as u64;
    assert!(
        bin_bytes < json_bytes,
        "binary artifact ({bin_bytes} B) must undercut JSON ({json_bytes} B)"
    );
    let reloaded = CompiledArtifact::load_bin(&path).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(reloaded.best().ir, artifact.best().ir);
    assert_eq!(reloaded.code(), artifact.code());
    for workers in [1, 4] {
        assert_eq!(
            serve_frozen_stream(&reloaded, workers),
            serve_frozen_stream(&artifact, workers),
            "workers={workers}: binary-reloaded artifact diverged"
        );
    }
}

/// The handcrafted trained DNN IR from `golden_determinism.rs`.
fn handcrafted_dnn_ir() -> ModelIr {
    let arch = MlpArchitecture::new(7, vec![8], 2);
    let dims = arch.layer_dims();
    let params: Vec<LayerParams> = dims
        .iter()
        .enumerate()
        .map(|(layer, &(input, output))| LayerParams {
            weights: Matrix::from_fn(input, output, |r, c| {
                ((layer * 59 + r * 31 + c * 17) % 23) as f32 / 23.0 - 0.5
            }),
            bias: (0..output)
                .map(|j| ((layer * 13 + j * 7) % 11) as f32 / 11.0 - 0.5)
                .collect(),
        })
        .collect();
    ModelIr::Dnn(DnnIr {
        arch,
        params: Some(params),
    })
}

/// The handcrafted binary SVM IR from `golden_determinism.rs`.
fn handcrafted_svm_ir() -> ModelIr {
    ModelIr::Svm(SvmIr {
        n_features: 7,
        n_classes: 2,
        planes: Some((
            vec![(0..7).map(|c| (c as f32 - 3.0) / 4.0).collect()],
            vec![0.25],
        )),
    })
}

#[test]
fn golden_serving_checksum_survives_binary_wire_format() {
    // The PR-3 golden (50_483) through the compact binary wire format:
    // both handcrafted IRs take a detour through `to_vec_binary` /
    // `from_slice_binary` before deployment. f32 payloads are encoded
    // bit-exactly, so the checksum must not move.
    let ds = NslKddGenerator::new(42).generate(200);
    let norm = ds.fit_normalizer();
    let nds = ds.normalized(&norm).unwrap();
    let format = FixedPoint::taurus_default();

    let roundtrip = |ir: &ModelIr| -> ModelIr {
        let bytes = serde_json::to_vec_binary(ir.to_json());
        assert!(serde_json::sniff_binary(&bytes), "missing HJB1 magic");
        ModelIr::from_json(&serde_json::from_slice_binary(&bytes).unwrap()).unwrap()
    };
    let dnn_ir = roundtrip(&handcrafted_dnn_ir());
    let svm_ir = roundtrip(&handcrafted_svm_ir());
    assert_eq!(dnn_ir, handcrafted_dnn_ir(), "dnn IR drifted through HJB1");
    assert_eq!(svm_ir, handcrafted_svm_ir(), "svm IR drifted through HJB1");

    for workers in [1, 4] {
        let deployment = Deployment::builder().workers(workers).chunk_rows(7).build();
        let dnn = deployment
            .add_model("dnn_app", &dnn_ir, format, None)
            .unwrap();
        let svm = deployment
            .add_model("svm_app", &svm_ir, format, None)
            .unwrap();
        let tickets = [
            deployment
                .submit(TenantBatch::new(dnn, nds.features().clone()))
                .unwrap(),
            deployment
                .submit(TenantBatch::new(svm, nds.features().clone()))
                .unwrap(),
        ];
        let verdicts: Vec<Vec<usize>> = tickets
            .into_iter()
            .map(|ticket| ticket.wait().into_vec())
            .collect();
        let checksum: usize = verdicts
            .iter()
            .enumerate()
            .map(|(batch, verdicts)| {
                verdicts
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| v * (i + 1) * (batch * 2 + 1))
                    .sum::<usize>()
            })
            .sum();
        assert_eq!(
            checksum, 50_483,
            "workers={workers}: golden serving checksum drifted through the binary wire format"
        );
        deployment.shutdown();
    }
}

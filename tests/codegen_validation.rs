//! Structural validation of generated Spatial and P4 across backends.

use homunculus::backends::model::{DnnIr, KMeansIr, ModelIr, SvmIr};
use homunculus::backends::spatial::is_balanced;
use homunculus::backends::target::Target;
use homunculus::backends::taurus::TaurusTarget;
use homunculus::backends::tofino::TofinoTarget;
use homunculus::ml::mlp::{Mlp, MlpArchitecture, TrainConfig};
use homunculus::ml::svm::{LinearSvm, SvmConfig};
use homunculus::ml::tensor::Matrix;

fn trained_dnn(input: usize, hidden: Vec<usize>) -> ModelIr {
    let arch = MlpArchitecture::new(input, hidden, 2);
    let mut net = Mlp::new(&arch, 1).unwrap();
    let x = Matrix::from_fn(32, input, |r, c| ((r * 3 + c) % 7) as f32 / 7.0);
    let y: Vec<usize> = (0..32).map(|i| i % 2).collect();
    net.train(&x, &y, &TrainConfig::default().epochs(3))
        .unwrap();
    ModelIr::Dnn(DnnIr::from_mlp(&net))
}

#[test]
fn spatial_dnn_has_layer_structure() {
    let taurus = TaurusTarget::default();
    let model = trained_dnn(7, vec![16, 4]);
    let code = taurus.generate_code(&model, "test_pipeline").unwrap();
    assert!(is_balanced(&code), "unbalanced code:\n{code}");
    assert!(code.contains("object TestPipeline"));
    // 3 weight layers -> 3 dot-product reduces.
    assert_eq!(code.matches("Reduce(Reg[T]").count(), 3);
    // Double-buffered inter-layer stores.
    assert!(code.contains(".buffer"));
    // Fixed-point type is the Taurus Q3.12.
    assert!(code.contains("FixPt[TRUE, _3, _12]"));
}

#[test]
fn spatial_weight_count_scales_with_architecture() {
    let taurus = TaurusTarget::default();
    let small = taurus.generate_code(&trained_dnn(7, vec![4]), "s").unwrap();
    let large = taurus
        .generate_code(&trained_dnn(7, vec![32, 16]), "l")
        .unwrap();
    assert!(
        large.matches(".to[T]").count() > small.matches(".to[T]").count(),
        "bigger net embeds more literals"
    );
}

#[test]
fn p4_kmeans_table_count_matches_k() {
    let tofino = TofinoTarget::default();
    for k in 1..=5 {
        let model = ModelIr::KMeans(KMeansIr {
            k,
            n_features: 7,
            centroids: Some(vec![vec![0.1; 7]; k]),
        });
        let code = tofino.generate_code(&model, "tc").unwrap();
        assert_eq!(
            code.matches("table cluster_").count(),
            k,
            "k={k} should emit {k} tables"
        );
        assert!(is_balanced(&code));
        assert!(code.contains("parser IngressParser"));
        assert!(code.contains("control IngressDeparser"));
    }
}

#[test]
fn p4_svm_from_trained_model() {
    let x = Matrix::from_rows(&[
        vec![-2.0, 0.3, 1.0],
        vec![-1.0, -0.3, 0.5],
        vec![2.0, 0.1, -0.5],
        vec![1.0, -0.1, -1.0],
    ])
    .unwrap();
    let svm = LinearSvm::fit(&x, &[0, 0, 1, 1], 2, &SvmConfig::default()).unwrap();
    let model = ModelIr::Svm(SvmIr::from_svm(&svm));
    let tofino = TofinoTarget::default();
    let code = tofino.generate_code(&model, "svm_pipe").unwrap();
    assert_eq!(code.matches("table feature_").count(), 3);
    assert!(code.contains("meta.feature0"));
    assert!(is_balanced(&code));
}

#[test]
fn generated_code_embeds_pipeline_name() {
    let taurus = TaurusTarget::default();
    let model = trained_dnn(7, vec![8]);
    for name in ["anomaly_detection", "my-app", "x9"] {
        let code = taurus.generate_code(&model, name).unwrap();
        assert!(code.contains(&format!("pipeline: {name}")));
    }
}

#[test]
fn untrained_models_refuse_codegen() {
    let taurus = TaurusTarget::default();
    let shape_only = ModelIr::Dnn(DnnIr::from_architecture(&MlpArchitecture::new(
        7,
        vec![8],
        2,
    )));
    assert!(taurus.generate_code(&shape_only, "x").is_err());
    let tofino = TofinoTarget::default();
    let km = ModelIr::KMeans(KMeansIr::from_shape(3, 7));
    assert!(tofino.generate_code(&km, "x").is_err());
}
